//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the exact trait surface the simulator uses: [`RngCore`],
//! [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`, `fill`),
//! and [`seq::SliceRandom::shuffle`]. Distribution quality matches the
//! needs of a discrete-event simulation (uniform draws from a
//! cryptographic-quality ChaCha stream — see the sibling `rand_chacha`
//! stub); it makes no attempt to be bit-compatible with upstream `rand`.

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The raw generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same idea as
    /// upstream; the exact stream differs, which is fine — every consumer
    /// in this workspace only relies on determinism, not on specific
    /// values).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
