//! The [`Standard`] distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for a primitive type.
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift uniform mapping; bias is < 2^-64 × span,
                // irrelevant for simulation draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}
