//! Vendored stand-in for the `criterion` crate.
//!
//! Supports the subset of the API this workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, `iter`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated-loop timer
//! instead of criterion's statistics machinery.
//!
//! Honors `CRITERION_QUICK=1` (or a `--quick`-ish fast path when run
//! under `cargo test`) by shrinking measurement time.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration work attributed to the measurement, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured routine.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
    measure_for: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: find an iteration count that runs ≥ measure_for.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for || iters >= 1 << 30 {
                self.measured = Some((elapsed, iters));
                return;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = self.measure_for.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * scale * 1.2).ceil() as u64).max(iters + 1)
            };
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; this harness has no sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measured: None,
            measure_for: self.criterion.measure_for,
        };
        f(&mut b);
        match b.measured {
            Some((elapsed, iters)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                let rate = self.throughput.map(|t| match t {
                    Throughput::Bytes(bytes) => {
                        let gib = bytes as f64 / ns * 1e9 / (1u64 << 30) as f64;
                        format!("  {gib:9.3} GiB/s")
                    }
                    Throughput::Elements(n) => {
                        let me = n as f64 / ns * 1e9 / 1e6;
                        format!("  {me:9.3} Melem/s")
                    }
                });
                println!(
                    "{full:<52} {:>12}/iter{}",
                    format_ns(ns),
                    rate.unwrap_or_default()
                );
            }
            None => println!("{full:<52} (no measurement: iter was never called)"),
        }
    }

    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.3} s", ns / 1e9)
    }
}

/// The harness entry object.
pub struct Criterion {
    filter: Option<String>,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // cargo also injects `--bench`. Under `cargo test` (`--test`) the
        // run only asserts that benches execute, so measure almost nothing.
        let mut filter = None;
        let mut quick = std::env::var_os("CRITERION_QUICK").is_some();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--bench" => {}
                "--test" => quick = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            filter,
            measure_for: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(120)
            },
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.id.clone());
        group.bench_function("run", f);
        group.finish();
    }
}

/// Re-export for `b.iter(|| black_box(...))`-style code that imports it
/// from criterion rather than std.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
