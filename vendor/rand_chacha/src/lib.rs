//! A real ChaCha8 stream generator behind the vendored `rand` stub traits.
//!
//! Implements the ChaCha quarter-round core (D. J. Bernstein) with 8
//! rounds and a 64-bit block counter. Not bit-compatible with the
//! upstream `rand_chacha` crate (different seed expansion and word
//! ordering are possible) — the workspace only requires determinism in
//! the seed, which this provides.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) as seeded.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered output of the current block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 → exhausted.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..4 {
            // A double round: 4 column rounds then 4 diagonal rounds.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: mean of 4096 u8 draws is near 127.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut sum = 0u64;
        for _ in 0..4096 {
            sum += (rng.next_u32() & 0xff) as u64;
        }
        let mean = sum as f64 / 4096.0;
        assert!((mean - 127.5).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
