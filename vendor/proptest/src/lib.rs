//! Vendored mini property-testing shim exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `any::<T>()`, integer-range strategies, `prop_map`,
//! `proptest::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the underlying `assert!`;
//! * cases are generated from a ChaCha8 stream seeded by the test's
//!   name, so runs are fully deterministic;
//! * `prop_assume!` skips the case without replacement draws.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Expands property functions into `#[test]` functions running `cases`
/// deterministic samples each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                // The closure gives `prop_assume!` an early exit without
                // aborting the whole test.
                let run_case = || {
                    let _ = &case;
                    $body
                };
                run_case();
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts inside a property (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}
