//! Value-generation strategies.

use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from the deterministic case RNG.
pub trait Strategy {
    type Value;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()`: the full uniform domain of a primitive type.
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen()
            }
        }
    )*};
}

any_impl!(u8, u16, u32, u64, usize, i32, i64, bool, f64);

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_impl!(u8, u16, u32, u64, usize);

/// Tuples of strategies generate tuples of values.
macro_rules! tuple_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate<RR: RngCore + ?Sized>(&self, rng: &mut RR) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_impl!(A);
tuple_impl!(A, B);
tuple_impl!(A, B, C);
tuple_impl!(A, B, C, D);

/// A constant strategy (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}
