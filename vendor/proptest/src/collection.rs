//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::{Rng, RngCore};
use std::ops::Range;

/// Accepted sizes for [`vec()`]: a fixed length or a range of lengths.
pub trait SizeRange {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize;
}

impl SizeRange for usize {
    fn sample<R: RngCore + ?Sized>(&self, _rng: &mut R) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(self.clone())
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// `proptest::collection::vec(element_strategy, len)`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
