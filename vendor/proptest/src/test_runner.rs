//! Test configuration and the deterministic per-test RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Subset of proptest's config: only the case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG derived from the fully-qualified test name (FNV-1a),
/// so every run of a given test replays the same cases.
pub fn rng_for(test_name: &str) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}
