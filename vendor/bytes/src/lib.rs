//! Vendored stub of the `bytes` crate: [`Bytes`], a cheaply clonable,
//! immutable, shared byte buffer, and [`BytesMut`], its uniquely owned
//! mutable counterpart.
//!
//! The pair mirrors the real crate's ownership protocol: a buffer is
//! built in a [`BytesMut`] (exclusive, resizable), [frozen](BytesMut::freeze)
//! into an immutable [`Bytes`] that any number of holders share by
//! refcount bump, and — once every clone is dropped — reclaimed via
//! [`Bytes::try_into_mut`] without reallocating. That last step is what
//! lets a buffer pool recycle packet buffers across simulator frames:
//! `try_into_mut` succeeds only when the caller holds the *sole*
//! reference, so a recycled buffer can never alias a live packet.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `Clone` is a refcount
/// bump; the bytes are shared, never copied.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer (allocates a refcount block, not byte storage).
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Reclaims the buffer for mutation **iff** this is the only
    /// reference, preserving both the refcount block and the byte
    /// storage; otherwise returns the untouched `Bytes` as the error.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        if Arc::strong_count(&self.0) == 1 {
            Ok(BytesMut(self.0))
        } else {
            Err(self)
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.0, f)
    }
}

/// A uniquely owned, mutable byte buffer that [freezes](Self::freeze)
/// into a [`Bytes`] without copying.
///
/// Invariant: the inner refcount is always exactly 1 — every constructor
/// starts from a fresh or sole-referenced block, and freezing consumes
/// `self` — so mutable access can never observe a shared buffer.
#[derive(Default)]
pub struct BytesMut(Arc<Vec<u8>>);

impl BytesMut {
    /// An empty mutable buffer.
    pub fn new() -> Self {
        BytesMut(Arc::new(Vec::new()))
    }

    /// An empty mutable buffer with `cap` bytes of storage pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Arc::new(Vec::with_capacity(cap)))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Capacity of the underlying storage, in bytes.
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    /// Drops the contents, keeping the storage.
    pub fn clear(&mut self) {
        self.vec_mut().clear();
    }

    /// Resizes to `len` bytes, filling new space with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.vec_mut().resize(len, fill);
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec_mut().extend_from_slice(data);
    }

    /// Freezes into an immutable shared [`Bytes`] — a move, not a copy.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    fn vec_mut(&mut self) -> &mut Vec<u8> {
        // The uniqueness invariant makes get_mut infallible.
        Arc::get_mut(&mut self.0).expect("BytesMut invariant: refcount 1")
    }
}

impl Clone for BytesMut {
    /// Deep copy: a `BytesMut` is uniquely owned, so cloning must produce
    /// an independent buffer (a refcount bump would break the invariant).
    fn clone(&self) -> Self {
        BytesMut(Arc::new(self.0.as_ref().clone()))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec_mut()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        self.vec_mut()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.0, f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes.iter().take(32) {
        if b.is_ascii_graphic() || b == b' ' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    if bytes.len() > 32 {
        write!(f, "…({} bytes)", bytes.len())?;
    }
    write!(f, "\"")
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn freeze_and_reclaim_round_trip() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(b"hello");
        let cap = m.capacity();
        let b = m.freeze();
        assert_eq!(&b[..], b"hello");
        let clone = b.clone();
        // Shared: reclaim must refuse.
        let b = b.try_into_mut().expect_err("shared buffer reclaimed");
        drop(clone);
        // Sole owner again: reclaim succeeds and keeps the storage.
        let mut m = b.try_into_mut().expect("unique buffer refused");
        assert_eq!(m.capacity(), cap);
        m.clear();
        m.resize(3, 7);
        assert_eq!(&m[..], &[7, 7, 7]);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
    }
}
