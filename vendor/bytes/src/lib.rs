//! Vendored stub of the `bytes` crate: just [`Bytes`], a cheaply
//! clonable, immutable, shared byte buffer (reference-counted slice).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.0.len() > 32 {
            write!(f, "…({} bytes)", self.0.len())?;
        }
        write!(f, "\"")
    }
}
