//! Umbrella crate for the MORE reproduction.
//!
//! Re-exports the member crates under stable names so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`gf256`] — GF(2⁸) arithmetic with the paper's 64 KiB lookup table.
//! * [`rlnc`] — random linear network coding (encoder, tracker, decoder).
//! * [`topology`] — mesh topologies and the 20-node testbed generator.
//! * [`metrics`] — ETX/EOTX metrics and the Chapter-5 flow algorithms.
//! * [`sim`] — the deterministic discrete-event 802.11 simulator.
//! * [`more`] — the MORE protocol (the paper's contribution).
//! * [`baselines`] — Srcr and ExOR, the protocols MORE is compared against.
//! * [`scenario`] — the composable scenario builder and pluggable
//!   protocol registry (declare topology + traffic + protocols + sweeps,
//!   run the grid in parallel, read structured records).

#![forbid(unsafe_code)]

pub use baselines;
pub use gf256;
pub use mesh_metrics as metrics;
pub use mesh_sim as sim;
pub use mesh_topology as topology;
pub use more_core as more;
pub use more_scenario as scenario;
pub use rlnc;
