//! Cross-crate property tests tying the Chapter-5 theory to the topology
//! generators: the invariants hold on arbitrary generated meshes, not just
//! the unit tests' hand-built examples.

use more_repro::metrics::etx::LinkCost;
use more_repro::metrics::flow::FlowSolution;
use more_repro::metrics::{EotxTable, EtxTable, ForwarderPlan, PlanConfig};
use more_repro::topology::{generate, NodeId};
use proptest::prelude::*;

fn order_for(topo: &more_repro::topology::Topology, metric: &[f64], src: usize) -> Vec<NodeId> {
    let key = |i: usize| (metric[i], i);
    let mut v: Vec<usize> = (0..topo.n())
        .filter(|&i| i == src || (metric[i].is_finite() && key(i) < key(src)))
        .collect();
    v.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite metrics"));
    v.into_iter().map(NodeId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EOTX ≤ ETX on random meshes: opportunism never hurts.
    #[test]
    fn eotx_never_exceeds_etx(seed in 0u64..500, dst in 0usize..12) {
        let topo = generate::random_mesh(12, 70.0, 45.0, seed);
        let etx = EtxTable::compute(&topo, NodeId(dst), LinkCost::Forward);
        let eotx = EotxTable::compute(&topo, NodeId(dst));
        for i in topo.nodes() {
            prop_assert!(
                eotx.dist(i) <= etx.dist(i) + 1e-6,
                "EOTX {} > ETX {} at {i} (seed {seed})",
                eotx.dist(i), etx.dist(i)
            );
        }
    }

    /// Bellman–Ford and Dijkstra EOTX agree on random meshes.
    #[test]
    fn eotx_algorithms_agree(seed in 0u64..500) {
        let topo = generate::random_mesh(10, 60.0, 40.0, seed);
        let dst = NodeId(0);
        let a = EotxTable::compute(&topo, dst);
        let b = EotxTable::compute_bellman_ford(&topo, dst);
        for i in topo.nodes() {
            let (x, y) = (a.dist(i), b.dist(i));
            if x.is_infinite() && y.is_infinite() { continue; }
            prop_assert!((x - y).abs() < 1e-6, "{i}: {x} vs {y} (seed {seed})");
        }
    }

    /// Algorithm 1 delivers the unit flow and its credits balance, on
    /// arbitrary meshes and pair choices.
    #[test]
    fn plans_deliver_unit_flow(seed in 0u64..500, s in 0usize..12, d in 0usize..12) {
        prop_assume!(s != d);
        let topo = generate::random_mesh(12, 70.0, 45.0, seed);
        let etx = EtxTable::compute(&topo, NodeId(d), LinkCost::Forward);
        prop_assume!(etx.dist(NodeId(s)).is_finite());
        let plan = ForwarderPlan::compute(
            &topo, NodeId(s), NodeId(d), etx.distances(), &PlanConfig::default());
        prop_assert!(
            (plan.load[d] - 1.0).abs() < 1e-6,
            "delivered load {} (seed {seed}, {s}->{d})",
            plan.load[d]
        );
        // Credits are finite and non-negative.
        for f in plan.forwarders() {
            prop_assert!(plan.tx_credit[f.0].is_finite());
            prop_assert!(plan.tx_credit[f.0] >= 0.0);
        }
    }

    /// The min-cost flow conserves and matches the source's EOTX when the
    /// EOTX order is used (§5.6.2) on random meshes.
    #[test]
    fn flow_solution_invariants(seed in 0u64..500, s in 1usize..10) {
        let topo = generate::random_mesh(10, 60.0, 40.0, seed);
        let dst = NodeId(0);
        let eotx = EotxTable::compute(&topo, dst);
        prop_assume!(eotx.dist(NodeId(s)).is_finite());
        let order = order_for(&topo, eotx.distances(), s);
        let sol = FlowSolution::compute(&topo, &order, NodeId(s));
        prop_assert!(sol.conserves(NodeId(s), dst, 1e-6));
        prop_assert!(sol.satisfies_cost_constraints(&topo, 1e-9));
        prop_assert!(
            (sol.total_cost() - eotx.dist(NodeId(s))).abs() < 1e-6,
            "Σz = {} vs EOTX {} (seed {seed})",
            sol.total_cost(), eotx.dist(NodeId(s))
        );
    }

    /// The ETX-vs-EOTX gap is ≥ 1 (EOTX order is optimal) everywhere.
    #[test]
    fn gap_at_least_one(seed in 0u64..200, s in 0usize..10, d in 0usize..10) {
        prop_assume!(s != d);
        let topo = generate::random_mesh(10, 60.0, 40.0, seed);
        let etx = EtxTable::compute(&topo, NodeId(d), LinkCost::Forward);
        prop_assume!(etx.dist(NodeId(s)).is_finite());
        let g = more_repro::metrics::gap::pair_gap(&topo, NodeId(s), NodeId(d));
        prop_assert!(g >= 1.0 - 1e-6, "gap {g} < 1 (seed {seed} {s}->{d})");
    }
}
