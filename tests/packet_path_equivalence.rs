//! Packet-path equivalence: the zero-copy packet memory model (refcounted
//! payload buffers, flat coded-packet layout, buffer pooling, batched
//! delivery) must emit **byte-identical** `RunRecord` JSON to the
//! pre-rewrite engine, captured in `tests/golden/packet_path_run.json`
//! before any of it existed.
//!
//! Same pattern as `tests/channel_equivalence.rs`: the 2-flow coded MORE
//! scenario with `track_payloads` exercises the whole packet path —
//! source encode, forwarder pre-coding, destination decode, per-receiver
//! delivery, payload verification — so a single reordered RNG draw, a
//! buffer reused while still referenced, or a changed delivery order in
//! the batched medium pass would shift every downstream number.
//!
//! Regenerate (only when an *intentional* engine change lands) with:
//! `UPDATE_GOLDEN=1 cargo test --test packet_path_equivalence`.

use more_repro::more::MoreConfig;
use more_repro::scenario::{record, MoreFactory, Scenario, TrafficSpec};
use more_repro::topology::NodeId;

/// The golden scenario: two concurrent coded flows crossing the 20-node
/// testbed, real payloads carried and verified end-to-end.
fn run_packet_path_scenario() -> String {
    let coded = MoreFactory::named(
        "MORE-coded",
        MoreConfig {
            track_payloads: true,
            packet_bytes: 256,
            ..MoreConfig::default()
        },
    );
    let builder = Scenario::named("packet_path")
        .testbed(1)
        .traffic(TrafficSpec::Concurrent(vec![
            (NodeId(0), NodeId(19)),
            (NodeId(5), NodeId(12)),
        ]))
        .register(coded)
        .k(8)
        .packets(32)
        .deadline(180)
        .seeds([1, 3]);
    record::to_json(&builder.run())
}

#[test]
fn zero_copy_path_reproduces_the_pre_rewrite_run_byte_for_byte() {
    let json = run_packet_path_scenario();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/packet_path_run.json"
        );
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = include_str!("golden/packet_path_run.json");
    assert_eq!(
        json, golden,
        "the zero-copy packet path diverged from the pre-rewrite engine"
    );
}

#[test]
fn repeated_runs_share_buffers_but_stay_identical() {
    // Back-to-back runs on one thread reuse pooled buffers from the
    // previous run; recycling must be invisible to the simulation.
    let a = run_packet_path_scenario();
    let b = run_packet_path_scenario();
    assert_eq!(a, b, "pooled-buffer reuse changed a deterministic run");
}
