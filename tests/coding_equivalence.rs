//! End-to-end kernel equivalence: the same 2-flow MORE scenario, same
//! seed, must produce **byte-identical** `RunRecord` JSON whether the
//! coding arithmetic runs on the scalar byte-at-a-time kernels or the wide
//! (SIMD/SWAR) kernels.
//!
//! This is the whole-system counterpart of the per-kernel proptests in
//! `crates/gf256/tests/kernel_equivalence.rs`: payload coding is enabled
//! (`track_payloads`), so source encode, forwarder pre-coding, and
//! destination decode all run over the selected kernel family, and the
//! destination asserts each decoded batch against the original file.

use more_repro::gf256::slice_ops::{set_kernel, Kernel};
use more_repro::more::MoreConfig;
use more_repro::scenario::{record, MoreFactory, Scenario, TrafficSpec};
use more_repro::topology::NodeId;

fn run_coded_scenario() -> String {
    let coded = MoreFactory::named(
        "MORE-coded",
        MoreConfig {
            track_payloads: true,
            packet_bytes: 256,
            ..MoreConfig::default()
        },
    );
    let records = Scenario::named("coding_equivalence")
        .testbed(1)
        .traffic(TrafficSpec::Concurrent(vec![
            (NodeId(0), NodeId(19)),
            (NodeId(5), NodeId(12)),
        ]))
        .register(coded)
        .k(8)
        .packets(32)
        .deadline(180)
        .seeds([1])
        .run();
    record::to_json(&records)
}

#[test]
fn scalar_and_wide_kernels_produce_identical_run_records() {
    set_kernel(Kernel::Scalar);
    let scalar_json = run_coded_scenario();

    set_kernel(Kernel::Wide);
    let wide_json = run_coded_scenario();

    set_kernel(Kernel::Auto);

    // Byte-identical, not merely equivalent: kernels change speed only.
    assert_eq!(
        scalar_json, wide_json,
        "scalar and wide kernels diverged on an end-to-end MORE run"
    );

    // And the run actually exercised the coded path end to end.
    assert!(scalar_json.contains("\"protocol\": \"MORE-coded\""));
    assert!(scalar_json.contains("\"completed\": true"));
}
