//! Integration tests for the scenario builder API and the pluggable
//! protocol registry — exercised from *outside* the bench and scenario
//! crates, exactly as a downstream user would.

use more_repro::scenario::{
    record, BuildError, ExpConfig, FlowSpec, ProtocolFactory, Scenario, Sweep, TopologySpec,
    TrafficSpec,
};
use more_repro::sim::{Ctx, Erased, ErasedFlowAgent, Frame, NodeAgent, OutFrame, TxOutcome};
use more_repro::sim::{FlowAgent, FlowProgressView, Time};
use more_repro::topology::{generate, NodeId, Topology};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Round-trip determinism: same builder + same seed ⇒ identical records.
// ---------------------------------------------------------------------

fn build_scenario() -> more_repro::scenario::ScenarioBuilder {
    Scenario::named("roundtrip")
        .testbed(3)
        .traffic(TrafficSpec::RandomPairs { count: 4, seed: 11 })
        .protocols(["Srcr", "ExOR", "MORE", "Srcr-autorate"])
        .sweep(Sweep::K(vec![16, 32]))
        .packets(48)
        .deadline(120)
        .seeds([5, 6])
}

#[test]
fn same_builder_and_seed_give_identical_records() {
    let a = build_scenario().run();
    let b = build_scenario().run();
    assert_eq!(a.len(), 4 * 2 * 2 * 4, "protocols × sweep × seeds × pairs");
    assert_eq!(a, b, "scenario runs must be pure functions of their spec");
    // Serialized forms are therefore byte-identical too.
    assert_eq!(record::to_json(&a), record::to_json(&b));
    assert_eq!(record::to_csv(&a), record::to_csv(&b));
    // And a different seed changes results.
    let c = build_scenario().seeds([7, 8]).run();
    assert_ne!(a, c, "different seeds should not replay identically");
}

#[test]
fn sweep_coordinates_are_recorded() {
    let records = build_scenario().run();
    assert!(records.iter().all(|r| r.param == Some("k")));
    let ks: std::collections::BTreeSet<u64> = records
        .iter()
        .map(|r| r.value.expect("swept") as u64)
        .collect();
    assert_eq!(ks.into_iter().collect::<Vec<_>>(), vec![16, 32]);
}

// ---------------------------------------------------------------------
// A user-defined protocol, registered from outside the bench crate.
// ---------------------------------------------------------------------

/// A deliberately naive protocol: every node broadcasts every packet it
/// knows `repeats` times; the destination counts distinct packets. No
/// routing, no metric, no feedback — the dumbest thing that moves data
/// over a lossy chain, and therefore a good smoke test that arbitrary
/// [`NodeAgent`]s plug into the registry.
struct FloodAgent {
    repeats: u32,
    flows: Vec<FloodFlow>,
    n_nodes: usize,
}

struct FloodFlow {
    dst: NodeId,
    total: usize,
    /// Per node: (seq, remaining broadcasts) queue.
    pending: Vec<Vec<(u32, u32)>>,
    /// Per node: which seqs it has seen (dedup).
    seen: Vec<Vec<bool>>,
    delivered: usize,
    completed_at: Option<Time>,
}

impl FloodAgent {
    fn new(topo: &Topology, repeats: u32) -> Self {
        FloodAgent {
            repeats,
            flows: Vec::new(),
            n_nodes: topo.n(),
        }
    }

    fn add_flow(&mut self, src: NodeId, dst: NodeId, total: usize) {
        let mut pending = vec![Vec::new(); self.n_nodes];
        let mut seen = vec![vec![false; total]; self.n_nodes];
        pending[src.0] = (0..total as u32).map(|s| (s, self.repeats)).collect();
        seen[src.0].fill(true);
        self.flows.push(FloodFlow {
            dst,
            total,
            pending,
            seen,
            delivered: 0,
            completed_at: None,
        });
    }
}

#[derive(Clone, Copy, Debug)]
struct FloodPayload {
    flow: usize,
    seq: u32,
}

impl NodeAgent for FloodAgent {
    type Payload = FloodPayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<FloodPayload>, ctx: &mut Ctx<'_>) {
        let FloodPayload { flow, seq } = frame.payload;
        let f = &mut self.flows[flow];
        if f.seen[node.0][seq as usize] {
            return;
        }
        f.seen[node.0][seq as usize] = true;
        if node == f.dst {
            f.delivered += 1;
            if f.delivered == f.total {
                f.completed_at = Some(ctx.now());
            }
        } else {
            // Forwarders rebroadcast what they heard.
            f.pending[node.0].push((seq, self.repeats));
            ctx.mark_backlogged(node);
        }
    }

    fn on_tx_done(&mut self, node: NodeId, _outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        if self.flows.iter().any(|f| !f.pending[node.0].is_empty()) {
            ctx.mark_backlogged(node);
        }
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<FloodPayload>> {
        for (fi, f) in self.flows.iter_mut().enumerate() {
            if let Some((seq, left)) = f.pending[node.0].last_mut() {
                let payload = FloodPayload {
                    flow: fi,
                    seq: *seq,
                };
                *left -= 1;
                if *left == 0 {
                    f.pending[node.0].pop();
                }
                return Some(OutFrame {
                    dst: None,
                    bytes: 1500,
                    bitrate: None,
                    flow: Some(fi as u32 + 1),
                    payload,
                });
            }
        }
        None
    }
}

impl FlowAgent for FloodAgent {
    fn flows_done(&self) -> bool {
        self.flows.iter().all(|f| f.delivered == f.total)
    }

    fn flow_progress(&self, index: usize) -> FlowProgressView {
        let f = &self.flows[index];
        FlowProgressView {
            delivered: f.delivered,
            completed_at: f.completed_at,
            done: f.delivered == f.total,
        }
    }
}

/// The factory a downstream user writes: ~20 lines, no bench internals.
struct FloodFactory {
    repeats: u32,
}

impl ProtocolFactory for FloodFactory {
    fn name(&self) -> &str {
        "Flood"
    }

    fn build(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        _cfg: &ExpConfig,
    ) -> Result<Box<dyn ErasedFlowAgent>, BuildError> {
        let mut agent = FloodAgent::new(topo, self.repeats);
        for f in flows {
            if f.is_multicast() {
                return Err(BuildError::Unsupported("Flood is unicast-only".into()));
            }
            agent.add_flow(f.src, f.dst(), f.packets);
        }
        Ok(Box::new(Erased(agent)))
    }
}

/// Acceptance: a custom user-defined factory runs end-to-end on a 3-node
/// chain *alongside* MORE/ExOR/Srcr, same topology and seed, with no
/// edits inside the bench or scenario crates.
#[test]
fn custom_protocol_runs_alongside_builtins_on_a_chain() {
    // 3-node chain: 0 -> 1 -> 2 with good adjacent links and a weak skip.
    let chain = Arc::new(generate::line(2, 0.95, 0.3, 25.0));
    let records = Scenario::named("custom_protocol")
        .topology(TopologySpec::Fixed(chain))
        .pair(NodeId(0), NodeId(2))
        .protocols(["Srcr", "ExOR", "MORE"])
        .register(FloodFactory { repeats: 6 })
        .packets(16)
        .deadline(120)
        .seeds([9])
        .run();

    assert_eq!(records.len(), 4, "three built-ins plus the custom protocol");
    for r in &records {
        assert_eq!(r.seed, 9, "{}: same seed for every protocol", r.protocol);
        assert_eq!(r.topology, "line2", "{}: same topology", r.protocol);
        assert!(
            r.all_completed(),
            "{} failed to move 16 packets over the chain: {r:?}",
            r.protocol
        );
        assert_eq!(r.flows[0].delivered, 16, "{}", r.protocol);
        assert!(r.flows[0].throughput_pps > 1.0, "{}", r.protocol);
    }
    // The naive flood pays for its ignorance in transmissions: it must
    // cost at least as many as MORE on the same job.
    let tx = |p: &str| {
        records
            .iter()
            .find(|r| r.protocol == p)
            .expect("ran")
            .total_tx
    };
    assert!(
        tx("Flood") > tx("MORE"),
        "flooding ({}) should out-transmit MORE ({})",
        tx("Flood"),
        tx("MORE")
    );
}

/// The registry rejects what a protocol cannot express, at build time.
#[test]
fn unsupported_traffic_surfaces_as_an_error() {
    let err = Scenario::named("multicast_on_srcr")
        .testbed(1)
        .traffic(TrafficSpec::Multicast {
            src: NodeId(0),
            dsts: vec![NodeId(5), NodeId(9)],
        })
        .protocol("Srcr")
        .packets(16)
        .try_run()
        .expect_err("Srcr cannot multicast");
    assert!(matches!(err, BuildError::Unsupported(_)));
}

/// Multicast through the same builder works for MORE (coded broadcast is
/// destination-count agnostic).
#[test]
fn multicast_scenario_runs_on_more() {
    let records = Scenario::named("multicast_more")
        .testbed(1)
        .traffic(TrafficSpec::Multicast {
            src: NodeId(0),
            dsts: vec![NodeId(7), NodeId(12)],
        })
        .protocol("MORE")
        .packets(32)
        .deadline(240)
        .seeds([4])
        .run();
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert!(r.all_completed(), "multicast incomplete: {r:?}");
    // Both destinations got the whole transfer.
    assert_eq!(r.flows[0].delivered, 2 * 32);
}
