//! End-to-end integration: every protocol moves real files across
//! simulated meshes, correctly and deterministically.

use more_repro::baselines::{ExorAgent, ExorConfig, SrcrAgent, SrcrConfig};
use more_repro::more::{MoreAgent, MoreConfig};
use more_repro::sim::{Bitrate, SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId, Topology};

fn more_run(topo: &Topology, s: usize, d: usize, packets: usize, seed: u64) -> (bool, usize, u64) {
    let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
    let fi = agent.add_flow(1, NodeId(s), NodeId(d), packets);
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, seed);
    sim.kick(NodeId(s));
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    let p = sim.agent.progress(fi);
    (p.done, p.delivered_packets, sim.stats.total_tx())
}

#[test]
fn more_completes_on_every_topology_family() {
    let cases: Vec<(Topology, usize, usize)> = vec![
        (generate::motivating_symmetric(), 0, 2),
        (generate::line(3, 0.7, 0.3, 25.0), 0, 3),
        (generate::grid(4, 3, 0.8, 0.3, 22.0), 0, 11),
        (generate::testbed(2), 5, 14),
        (generate::random_mesh(12, 80.0, 50.0, 3), 0, 11),
    ];
    for (topo, s, d) in cases {
        let (done, delivered, _) = more_run(&topo, s, d, 64, 1);
        assert!(done, "MORE stuck on {}", topo.name);
        assert_eq!(delivered, 64, "wrong delivery on {}", topo.name);
    }
}

#[test]
fn more_payload_integrity_over_lossy_multihop() {
    // track_payloads makes the destination assert decoded bytes == file.
    let topo = generate::testbed(4);
    let cfg = MoreConfig {
        k: 16,
        packet_bytes: 512,
        track_payloads: true,
        ..MoreConfig::default()
    };
    let mut agent = MoreAgent::new(topo.clone(), cfg);
    let fi = agent.add_flow(1, NodeId(0), NodeId(19), 48);
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 11);
    sim.kick(NodeId(0));
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    assert!(sim.agent.progress(fi).done);
    assert_eq!(sim.agent.progress(fi).delivered_packets, 48);
}

#[test]
fn exor_and_srcr_complete_on_the_testbed() {
    let topo = generate::testbed(2);
    // ExOR
    let mut ea = ExorAgent::new(topo.clone(), ExorConfig::default());
    let efi = ea.add_flow(1, NodeId(5), NodeId(14), 64);
    ea.start(efi);
    let mut esim = Simulator::new(topo.clone(), SimConfig::default(), ea, 2);
    esim.kick(NodeId(5));
    esim.run_until(600 * SEC, |a: &ExorAgent| a.all_done());
    assert!(esim.agent.progress(efi).done, "ExOR stuck");
    assert_eq!(esim.agent.progress(efi).delivered, 64);
    // Srcr
    let mut sa = SrcrAgent::new(topo.clone(), SrcrConfig::default(), Bitrate::B5_5);
    let sfi = sa.add_flow(1, NodeId(5), NodeId(14), 64);
    let mut ssim = Simulator::new(topo, SimConfig::default(), sa, 2);
    ssim.kick(NodeId(5));
    ssim.run_until(600 * SEC, |a: &SrcrAgent| a.all_done());
    let p = ssim.agent.progress(sfi);
    assert!(p.done, "Srcr stuck");
    assert_eq!(p.delivered + p.dropped, 64);
}

#[test]
fn identical_seeds_give_identical_runs() {
    let topo = generate::testbed(3);
    let a = more_run(&topo, 0, 19, 64, 77);
    let b = more_run(&topo, 0, 19, 64, 77);
    assert_eq!(a, b, "same seed must reproduce exactly");
    let c = more_run(&topo, 0, 19, 64, 78);
    assert_ne!(a.2, c.2, "different seeds should differ in tx counts");
}

#[test]
fn stopping_rule_silences_the_network() {
    let topo = generate::testbed(1);
    let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
    let fi = agent.add_flow(1, NodeId(2), NodeId(17), 64);
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 5);
    sim.kick(NodeId(2));
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    assert!(sim.agent.progress(fi).done);
    let tx_at_done = sim.stats.total_tx();
    let t = sim.now();
    sim.run_until(t + 5 * SEC, |_| false);
    assert!(
        sim.stats.total_tx() - tx_at_done <= 2,
        "network kept talking after the flow finished"
    );
}

#[test]
fn concurrent_flows_all_protocols() {
    let topo = generate::testbed(1);
    let flows = [(NodeId(0), NodeId(19)), (NodeId(7), NodeId(12))];

    let mut ma = MoreAgent::new(topo.clone(), MoreConfig::default());
    for (i, &(s, d)) in flows.iter().enumerate() {
        ma.add_flow(i as u32 + 1, s, d, 32);
    }
    let mut msim = Simulator::new(topo.clone(), SimConfig::default(), ma, 3);
    for &(s, _) in &flows {
        msim.kick(s);
    }
    msim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    for i in 0..flows.len() {
        assert!(msim.agent.progress(i).done, "MORE flow {i} stuck");
    }

    let mut ea = ExorAgent::new(topo.clone(), ExorConfig::default());
    for (i, &(s, d)) in flows.iter().enumerate() {
        let fi = ea.add_flow(i as u32 + 1, s, d, 32);
        ea.start(fi);
    }
    let mut esim = Simulator::new(topo, SimConfig::default(), ea, 3);
    for &(s, _) in &flows {
        esim.kick(s);
    }
    esim.run_until(900 * SEC, |a: &ExorAgent| a.all_done());
    for i in 0..flows.len() {
        assert!(esim.agent.progress(i).done, "ExOR flow {i} stuck");
    }
}

#[test]
fn batch_sizes_all_work() {
    let topo = generate::line(2, 0.8, 0.2, 25.0);
    for k in [1usize, 8, 32, 128] {
        let cfg = MoreConfig {
            k,
            ..MoreConfig::default()
        };
        let mut agent = MoreAgent::new(topo.clone(), cfg);
        let fi = agent.add_flow(1, NodeId(0), NodeId(2), 2 * k + k / 2 + 1);
        let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 4);
        sim.kick(NodeId(0));
        sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
        assert!(sim.agent.progress(fi).done, "K={k} stuck");
        assert_eq!(sim.agent.progress(fi).delivered_packets, 2 * k + k / 2 + 1);
    }
}
