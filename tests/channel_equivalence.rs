//! Channel-API equivalence: the redesigned loss layer, run with the
//! default [`ChannelSpec::Static`], must emit **byte-identical**
//! `RunRecord` JSON to the pre-redesign engine (captured in
//! `tests/golden/channel_static_run.json` before `ChannelModel` existed).
//!
//! This is the same pattern as `tests/coding_equivalence.rs`: the 2-flow
//! coded MORE scenario exercises the whole stack — CSMA/CA, collisions,
//! capture, per-receiver losses, RLNC encode/decode — so a single changed
//! RNG draw or reordered branch in the channel plumbing would shift every
//! downstream number. Bursty channels must instead be deterministic per
//! seed and visibly different from static air.

use more_repro::more::MoreConfig;
use more_repro::scenario::{record, ChannelSpec, MoreFactory, Scenario, TrafficSpec};
use more_repro::topology::NodeId;

/// The golden scenario, on the channel the builder is told about
/// (`None` = builder default, which must be the static channel).
fn run_coded_scenario(channel: Option<ChannelSpec>) -> String {
    let coded = MoreFactory::named(
        "MORE-coded",
        MoreConfig {
            track_payloads: true,
            packet_bytes: 256,
            ..MoreConfig::default()
        },
    );
    let mut builder = Scenario::named("channel_equivalence")
        .testbed(1)
        .traffic(TrafficSpec::Concurrent(vec![
            (NodeId(0), NodeId(19)),
            (NodeId(5), NodeId(12)),
        ]))
        .register(coded)
        .k(8)
        .packets(32)
        .deadline(180)
        .seeds([1]);
    if let Some(spec) = channel {
        builder = builder.channel(spec);
    }
    record::to_json(&builder.run())
}

#[test]
fn static_channel_reproduces_the_pre_redesign_run_byte_for_byte() {
    let golden = include_str!("golden/channel_static_run.json");
    let default_json = run_coded_scenario(None);
    assert_eq!(
        default_json, golden,
        "the default channel diverged from the pre-redesign engine"
    );
    // Saying `Static` explicitly is the same as saying nothing.
    assert_eq!(run_coded_scenario(Some(ChannelSpec::Static)), default_json);
}

#[test]
fn bursty_channel_is_deterministic_per_seed_and_distinct_from_static() {
    let spec = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
    let a = run_coded_scenario(Some(spec.clone()));
    let b = run_coded_scenario(Some(spec));
    assert_eq!(a, b, "same seed + same channel must replay exactly");
    assert_ne!(
        a,
        run_coded_scenario(None),
        "bursty air must change the run"
    );
    // And the channel is surfaced in the output.
    assert!(a.contains("\"channel\": \"ge("), "channel key missing: {a}");
}
