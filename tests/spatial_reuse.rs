//! The headline behavioural difference: MORE exploits spatial reuse; ExOR's
//! scheduler forbids it (thesis §4.2.3, Fig 4-4).

use more_repro::baselines::{ExorAgent, ExorConfig};
use more_repro::more::{MoreAgent, MoreConfig};
use more_repro::sim::{SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId};

/// 4-hop line, 30 m spacing: hops 1 and 4 are out of carrier-sense range
/// of each other, so a MAC-independent protocol can run them in parallel.
fn line4() -> more_repro::topology::Topology {
    generate::line(4, 0.85, 0.12, 30.0)
}

fn more_overlap(seed: u64) -> (f64, f64) {
    let topo = line4();
    let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
    let fi = agent.add_flow(1, NodeId(0), NodeId(4), 192);
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
    sim.kick(NodeId(0));
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    assert!(sim.agent.progress(fi).done, "MORE line flow stuck");
    let overlap = sim.stats.concurrent_airtime as f64 / sim.stats.total_airtime() as f64;
    let secs = sim.agent.progress(fi).completed_at.expect("done") as f64 / SEC as f64;
    (overlap, 192.0 / secs)
}

fn exor_overlap(seed: u64) -> (f64, f64) {
    let topo = line4();
    let mut agent = ExorAgent::new(topo.clone(), ExorConfig::default());
    let fi = agent.add_flow(1, NodeId(0), NodeId(4), 192);
    agent.start(fi);
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
    sim.kick(NodeId(0));
    sim.run_until(900 * SEC, |a: &ExorAgent| a.all_done());
    assert!(sim.agent.progress(fi).done, "ExOR line flow stuck");
    let overlap = sim.stats.concurrent_airtime as f64 / sim.stats.total_airtime() as f64;
    let secs = sim.agent.progress(fi).completed_at.expect("done") as f64 / SEC as f64;
    (overlap, 192.0 / secs)
}

#[test]
fn more_overlaps_airtime_exor_serializes() {
    let mut more_ov = Vec::new();
    let mut exor_ov = Vec::new();
    for seed in 1..=5u64 {
        more_ov.push(more_overlap(seed).0);
        exor_ov.push(exor_overlap(seed).0);
    }
    let more_med = median(&mut more_ov);
    let exor_med = median(&mut exor_ov);
    assert!(
        more_med > 0.05,
        "MORE should overlap on a 4-hop line: {more_med:.3}"
    );
    assert!(
        exor_med < more_med / 2.0,
        "ExOR must serialize: ExOR {exor_med:.3} vs MORE {more_med:.3}"
    );
}

#[test]
fn more_beats_exor_on_spatial_reuse_paths() {
    let mut more_t = Vec::new();
    let mut exor_t = Vec::new();
    for seed in 1..=5u64 {
        more_t.push(more_overlap(seed).1);
        exor_t.push(exor_overlap(seed).1);
    }
    let m = median(&mut more_t);
    let e = median(&mut exor_t);
    // The paper reports ≈1.5x on its testbed's reuse paths; on this
    // synthetic line the measured median gain is ≈1.2x. Assert the
    // direction with margin rather than the exact factor.
    assert!(
        m > 1.08 * e,
        "MORE should clearly win with spatial reuse: MORE {m:.1} vs ExOR {e:.1} pkt/s"
    );
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v[v.len() / 2]
}
