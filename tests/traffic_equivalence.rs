//! Traffic-API equivalence: the redesigned workload layer, run with the
//! legacy static [`TrafficSpec`] variants, must emit **byte-identical**
//! `RunRecord` JSON to the pre-redesign engine (captured in
//! `tests/golden/traffic_static_run.json` before `TrafficModel` existed).
//!
//! Same pattern as `tests/channel_equivalence.rs`: every legacy variant —
//! single pair, pair list, random pairs, concurrent, seed-dependent
//! random concurrent, multicast — now expands through the
//! `TrafficModel`/`StaticModel` trait path and the simulator's traffic
//! queue plumbing, so a single shifted RNG draw, reordered kick, or leaked
//! JSON key would move every downstream byte. Dynamic models must instead
//! be deterministic per seed and visibly different from the static runs.

use more_repro::scenario::{record, Scenario, TrafficModelSpec, TrafficSpec};
use more_repro::topology::NodeId;

/// Every legacy variant, exactly as captured by the pre-redesign
/// generator (same scenarios, protocols, seeds, and parameters).
fn legacy_variants() -> Vec<(&'static str, TrafficSpec, Vec<&'static str>)> {
    vec![
        (
            "single_pair",
            TrafficSpec::SinglePair {
                src: NodeId(0),
                dst: NodeId(19),
            },
            vec!["MORE", "Srcr"],
        ),
        (
            "each_pair",
            TrafficSpec::EachPair(vec![(NodeId(0), NodeId(19)), (NodeId(5), NodeId(12))]),
            vec!["MORE"],
        ),
        (
            "random_pairs",
            TrafficSpec::RandomPairs { count: 2, seed: 7 },
            vec!["Srcr"],
        ),
        (
            "concurrent",
            TrafficSpec::Concurrent(vec![(NodeId(0), NodeId(19)), (NodeId(5), NodeId(12))]),
            vec!["MORE", "ExOR"],
        ),
        (
            "random_concurrent",
            TrafficSpec::RandomConcurrent {
                n_flows: 3,
                seed_offset: 1000,
                distinct_sources: true,
            },
            vec!["MORE"],
        ),
        (
            "multicast",
            TrafficSpec::Multicast {
                src: NodeId(0),
                dsts: vec![NodeId(5), NodeId(9)],
            },
            vec!["MORE"],
        ),
    ]
}

/// Runs every legacy variant; `via_model` says the spec explicitly
/// through `.traffic_model(TrafficModelSpec::Static(..))` instead of the
/// `.traffic(..)` shorthand — both must be the same path.
fn run_all_variants(via_model: bool) -> String {
    let mut records = Vec::new();
    for (name, traffic, protocols) in legacy_variants() {
        let mut builder = Scenario::named(format!("traffic_equivalence/{name}"))
            .testbed(1)
            .protocols(protocols)
            .seeds([1, 2])
            .k(8)
            .packets(16)
            .deadline(120);
        builder = if via_model {
            builder.traffic_model(TrafficModelSpec::Static(traffic))
        } else {
            builder.traffic(traffic)
        };
        records.extend(builder.run());
    }
    record::to_json(&records)
}

#[test]
fn every_legacy_variant_reproduces_the_pre_redesign_run_byte_for_byte() {
    let golden = include_str!("golden/traffic_static_run.json");
    let json = run_all_variants(false);
    assert_eq!(
        json, golden,
        "the static trait path diverged from the pre-redesign engine"
    );
    // Saying `TrafficModelSpec::Static` explicitly is the same path.
    assert_eq!(run_all_variants(true), json);
}

#[test]
fn dynamic_model_is_deterministic_per_seed_and_distinct_from_static() {
    let run = |seed: u64| {
        record::to_json(
            &Scenario::named("traffic_equivalence/poisson")
                .testbed(1)
                .traffic_model(TrafficModelSpec::Poisson {
                    rate_per_s: 0.2,
                    mean_hold_s: 15.0,
                    max_active: 3,
                })
                .protocol("MORE")
                .seeds([seed])
                .k(8)
                .packets(16)
                .deadline(120)
                .run(),
        )
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same seed + same model must replay exactly");
    assert_ne!(a, run(2), "different seeds must see different arrivals");
    // Dynamic runs surface the per-flow lifecycle keys…
    assert!(
        a.contains("\"started_at_s\""),
        "lifecycle keys missing: {a}"
    );
    // …which static runs must never carry (byte-compat).
    assert!(!run_all_variants(false).contains("\"started_at_s\""));
}
