//! The determinism contract, proven across worker counts: a run is a
//! pure function of `(topology, agent, seed, channel)`, so the same
//! scenario grid must serialize to byte-identical RunRecord JSON no
//! matter how many executor threads shard it — and no matter how many
//! times it is repeated in one process (the `xtask analyze`
//! hash-container lints guard the source-level side of this contract).

use more_repro::scenario::sink::Collect;
use more_repro::scenario::{Scenario, ScenarioBuilder, TrafficSpec};

/// A grid big enough to shard unevenly across 8 workers: 2 protocols ×
/// 3 seeds × 2 flow draws = 12 cells.
fn grid(name: &str) -> ScenarioBuilder {
    Scenario::named(name)
        .testbed(3)
        .traffic(TrafficSpec::RandomPairs { count: 2, seed: 11 })
        .protocols(["MORE", "Srcr"])
        .seeds([1, 2, 3])
        .k(8)
        .packets(16)
        .deadline(120)
}

fn json_with_threads(name: &str, threads: usize) -> String {
    let mut collect = Collect::new();
    grid(name)
        .threads(threads)
        .try_run_with_sink(&mut collect)
        .expect("grid run");
    collect.to_json()
}

#[test]
fn one_and_eight_workers_serialize_byte_identical_records() {
    let single = json_with_threads("xthread", 1);
    let sharded = json_with_threads("xthread", 8);
    assert!(
        single.contains("\"protocol\""),
        "sanity: records were produced"
    );
    assert_eq!(
        single, sharded,
        "RunRecord JSON must not depend on the worker count"
    );
}

#[test]
fn repeated_runs_serialize_byte_identical_records() {
    // The double-run proof behind the BTreeMap migrations: nothing in
    // the engine (hash seeds, allocation order, wall clock) leaks into
    // the records across process-internal repetitions.
    let first = json_with_threads("rerun", 4);
    let second = json_with_threads("rerun", 4);
    assert_eq!(first, second, "same grid twice must give the same bytes");
}
