//! Queue-subsystem equivalence: the engine run with the default
//! [`QueueSpec::Unbounded`] must emit **byte-identical** `RunRecord` JSON
//! to the pre-queue engine (captured in
//! `tests/golden/queue_default_run.json` before the queueing layer
//! existed).
//!
//! Same pattern as `tests/channel_equivalence.rs`: the 2-flow coded MORE
//! scenario plus the Srcr and ExOR baselines exercise every agent whose
//! transmit path was rebuilt around the queue pump (pop-at-poll
//! outstanding FIFOs), so a single extra poll, re-queued frame, or RNG
//! draw would shift every downstream number. Bounded disciplines must
//! instead be deterministic per seed, diverge across seeds, and surface
//! the `queue` key in the output.

use more_repro::more::MoreConfig;
use more_repro::scenario::{record, MoreFactory, QueueSpec, Scenario, TrafficSpec};
use more_repro::topology::NodeId;

/// The golden scenario, on the queue discipline the builder is told
/// about (`None` = builder default, which must be the unbounded legacy
/// path).
fn run_coded_scenario(queue: Option<QueueSpec>, seed: u64) -> String {
    let coded = MoreFactory::named(
        "MORE-coded",
        MoreConfig {
            track_payloads: true,
            packet_bytes: 256,
            ..MoreConfig::default()
        },
    );
    let mut builder = Scenario::named("queue_equivalence")
        .testbed(1)
        .traffic(TrafficSpec::Concurrent(vec![
            (NodeId(0), NodeId(19)),
            (NodeId(5), NodeId(12)),
        ]))
        .register(coded)
        .protocols(["Srcr", "ExOR"])
        .k(8)
        .packets(32)
        .deadline(180)
        .seeds([seed]);
    if let Some(spec) = queue {
        builder = builder.queue(spec);
    }
    record::to_json(&builder.run())
}

#[test]
fn unbounded_queue_reproduces_the_pre_queue_run_byte_for_byte() {
    let golden = include_str!("golden/queue_default_run.json");
    let default_json = run_coded_scenario(None, 1);
    assert_eq!(
        default_json, golden,
        "the default (unbounded) path diverged from the pre-queue engine"
    );
    // Saying `Unbounded` explicitly is the same as saying nothing.
    assert_eq!(
        run_coded_scenario(Some(QueueSpec::Unbounded), 1),
        default_json
    );
}

#[test]
fn bounded_disciplines_are_deterministic_and_distinct() {
    let unbounded = run_coded_scenario(None, 1);
    for spec in [
        QueueSpec::drop_tail(4),
        QueueSpec::red(8),
        QueueSpec::choke(8),
    ] {
        let a = run_coded_scenario(Some(spec.clone()), 1);
        let b = run_coded_scenario(Some(spec.clone()), 1);
        assert_eq!(
            a,
            b,
            "{}: same seed + same queue must replay exactly",
            spec.label()
        );
        assert_ne!(
            a,
            unbounded,
            "{}: a 4–8 frame queue under 2 concurrent coded flows must \
             change the run",
            spec.label()
        );
        // Divergence across seeds: the run is a function of the seed,
        // not only of the discipline.
        assert_ne!(
            a,
            run_coded_scenario(Some(spec.clone()), 2),
            "{}: different seeds must not replay identically",
            spec.label()
        );
        // And the discipline is surfaced in the output.
        let key = format!("\"queue\": \"{}\"", spec.label());
        assert!(a.contains(&key), "queue key missing: {key} not in {a}");
        assert!(a.contains("\"fairness\": "), "fairness key missing");
    }
}
