//! Allocation-budget harness: the regression gate for the zero-copy
//! packet path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! builds a fixed 2-flow coded MORE run (setup excluded), counts every
//! heap allocation made *during the simulation loop*, and asserts the
//! allocations-per-delivered-packet ratio stays under a committed
//! ceiling. Any future change that re-introduces per-receiver payload
//! clones, nested coded-packet assembly, or per-frame buffer churn trips
//! this gate long before it shows up in a profile.
//!
//! This file must stay its own test binary: the counting allocator is
//! process-global and would add noise (and a tiny cost) to every other
//! suite. CI runs it as a dedicated job.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use more_repro::more::{MoreAgent, MoreConfig};
use more_repro::sim::{SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId};

/// Counts allocation *events* (alloc + realloc), not bytes: the packet
/// path's cost model is "how many times does a frame touch the
/// allocator", which is what pooling and flat layout reduce.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on layout,
// alignment, or the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; the counter bump has no
    // effect on the returned pointer or layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller guarantees `layout` is valid.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`, forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller guarantees `ptr` came from
        // this allocator with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`; counting is
    // side-effect-free.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller guarantees the realloc
        // preconditions.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events per delivered packet the committed packet path is
/// allowed to spend. The pre-rewrite engine measured ~144.5; the
/// zero-copy path (refcounted flat packets, pooled buffers, reused
/// engine scratch) measures ~3.8. The ceiling locks in a ≥ 14×
/// reduction while leaving headroom for platform jitter.
const CEILING: f64 = 10.0;

/// The fixed scenario: two concurrent coded flows with verified payloads
/// crossing the 20-node testbed — the same shape as the golden
/// byte-identity run in `tests/packet_path_equivalence.rs`.
fn measured_run() -> (u64, usize) {
    let topo = generate::testbed(1);
    let cfg = MoreConfig {
        k: 8,
        packet_bytes: 256,
        track_payloads: true,
        ..MoreConfig::default()
    };
    let mut agent = MoreAgent::new(topo.clone(), cfg);
    let f1 = agent.add_flow(1, NodeId(0), NodeId(19), 32);
    let f2 = agent.add_flow(2, NodeId(5), NodeId(12), 32);
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 1);
    sim.kick(NodeId(0));
    sim.kick(NodeId(5));

    // Everything above — topology, ETX plans, agent state, event queue —
    // is setup; the budget covers only the simulation loop.
    let before = ALLOCS.load(Ordering::Relaxed);
    sim.run_until(180 * SEC, |a: &MoreAgent| a.all_done());
    let spent = ALLOCS.load(Ordering::Relaxed) - before;

    let delivered =
        sim.agent.progress(f1).delivered_packets + sim.agent.progress(f2).delivered_packets;
    (spent, delivered)
}

#[test]
fn packet_path_stays_under_allocation_budget() {
    // First run warms thread-local buffer pools and lazy statics; the
    // second run is the steady state the budget is committed against.
    let (_, warm_delivered) = measured_run();
    assert!(warm_delivered > 0, "warmup run delivered nothing");
    let (allocs, delivered) = measured_run();
    assert_eq!(delivered, 64, "scenario must complete both flows");

    let per_packet = allocs as f64 / delivered as f64;
    eprintln!("alloc_budget: {allocs} allocation events / {delivered} delivered packets = {per_packet:.1} per packet (ceiling {CEILING})");
    assert!(
        per_packet < CEILING,
        "packet path spends {per_packet:.1} allocation events per delivered \
         packet, over the committed ceiling of {CEILING} — a hot-loop \
         allocation crept back in"
    );
}
