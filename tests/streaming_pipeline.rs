//! The streaming results pipeline, end to end: sink equivalence against
//! the legacy collect-then-serialize path, bounded-memory aggregation,
//! kill-and-resume determinism (manifest + torn-tail trim), executor
//! ordering/panic behavior at scale, and the results-math edge cases the
//! redesign fixed (zero-width active windows, misbehaving custom
//! schedules).

use more_repro::scenario::sink::{Aggregate, Collect, CsvAppend, JsonLines, RunSink, Tee};
use more_repro::scenario::{
    exec, record, BuildError, FlowEvent, FlowSpec, Scenario, ScenarioBuilder, TrafficModel,
    TrafficModelSpec, TrafficSpec,
};
use more_repro::sim::{Time, SEC};
use more_repro::topology::{NodeId, Topology};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// A fresh scratch directory under the target-adjacent temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("more_streaming_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The golden scenario the equivalence tests run: small but exercises
/// protocols × seeds × several traffic indices.
fn golden(name: &str) -> ScenarioBuilder {
    Scenario::named(name)
        .testbed(1)
        .traffic(TrafficSpec::RandomPairs { count: 2, seed: 7 })
        .protocols(["MORE", "Srcr"])
        .seeds([1, 2])
        .k(8)
        .packets(16)
        .deadline(120)
}

#[test]
fn file_sinks_are_byte_identical_to_the_legacy_serializers() {
    // The "before" path: materialize, then serialize.
    let records = golden("sink_equivalence").run();
    assert_eq!(records.len(), 2 * 2 * 2);
    let legacy_json = record::to_json(&records);
    let legacy_csv = record::to_csv(&records);

    // The "after" path: stream into Collect + JsonLines + CsvAppend at
    // once through a Tee of borrowed sinks.
    let dir = scratch("equivalence");
    let jsonl_path = dir.join("runs.jsonl");
    let csv_path = dir.join("runs.csv");
    let mut collect = Collect::new();
    let mut jsonl = JsonLines::create(jsonl_path.to_str().unwrap()).unwrap();
    let mut csv = CsvAppend::create(csv_path.to_str().unwrap()).unwrap();
    let summary = {
        let mut tee = Tee::new()
            .with(&mut collect)
            .with(&mut jsonl)
            .with(&mut csv);
        golden("sink_equivalence")
            .try_run_with_sink(&mut tee)
            .expect("streamed run")
    };
    assert_eq!(summary.records, records.len());
    assert_eq!(summary.cells_skipped, 0);

    // Collect reproduces the legacy records (and therefore bytes).
    assert_eq!(collect.records(), &records[..]);
    assert_eq!(collect.to_json(), legacy_json);

    // The CSV file is byte-identical to the legacy serializer.
    let csv_file = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(csv_file, legacy_csv);

    // Each JSONL line is byte-identical to the matching array element of
    // the legacy JSON (so the whole array reassembles exactly).
    let jsonl_file = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = jsonl_file.lines().collect();
    assert_eq!(lines.len(), records.len());
    for (line, r) in lines.iter().zip(&records) {
        assert_eq!(*line, r.to_json_line());
    }
    let reassembled = format!(
        "[\n{}\n]\n",
        lines
            .iter()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    assert_eq!(reassembled, legacy_json);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregate_summarizes_without_holding_records() {
    let records = golden("aggregate").run();
    let mut agg = Aggregate::new();
    let summary = golden("aggregate")
        .threads(2)
        .try_run_with_sink(&mut agg)
        .expect("aggregate run");
    assert_eq!(agg.held(), 0, "Aggregate must never hold raw records");
    assert!(
        summary.records_high_water < summary.records,
        "streaming high-water {} must undercut the {}-record grid",
        summary.records_high_water,
        summary.records
    );
    // The folded means match a recomputation over the materialized runs.
    let summaries = agg.summaries();
    assert_eq!(summaries.len(), 2, "one cell per protocol");
    for s in &summaries {
        let flows: Vec<f64> = records
            .iter()
            .filter(|r| r.protocol == s.protocol)
            .flat_map(|r| r.throughputs())
            .collect();
        assert_eq!(s.flows, flows.len());
        let mean = flows.iter().sum::<f64>() / flows.len() as f64;
        assert!((s.mean_throughput_pps - mean).abs() < 1e-9, "{s:?}");
        assert!(s.min_throughput_pps <= s.p50_throughput_pps + 1e-9);
        assert!(s.p50_throughput_pps <= s.max_throughput_pps + 1e-9);
    }
    // The JSON summary parses.
    let parsed = more_repro::topology::json::parse(&agg.summary_json()).expect("valid JSON");
    assert_eq!(parsed.as_arr().unwrap().len(), 2);
}

/// A sink wrapper that fails its Nth `record` call — the in-process
/// stand-in for a mid-sweep `SIGTERM`.
struct FailAfter<S> {
    inner: S,
    remaining: usize,
}

impl<S: RunSink> RunSink for FailAfter<S> {
    fn record(&mut self, r: &record::RunRecord) -> io::Result<()> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected mid-sweep failure"));
        }
        self.remaining -= 1;
        self.inner.record(r)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
    fn held(&self) -> usize {
        self.inner.held()
    }
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        self.inner.offsets()
    }
    fn rewind_to(&mut self, offsets: &std::collections::BTreeMap<String, u64>) -> io::Result<()> {
        self.inner.rewind_to(offsets)
    }
}

#[test]
fn killed_sweep_resumes_byte_identical_to_an_uninterrupted_run() {
    // Reference: one uninterrupted checkpointed run.
    let dir_a = scratch("resume_a");
    let jsonl_a = dir_a.join("runs.jsonl");
    let csv_a = dir_a.join("runs.csv");
    {
        let mut tee = Tee::new()
            .with(JsonLines::append(jsonl_a.to_str().unwrap()).unwrap())
            .with(CsvAppend::append(csv_a.to_str().unwrap()).unwrap());
        golden("resume")
            .checkpoint(dir_a.to_str().unwrap())
            .try_run_with_sink(&mut tee)
            .expect("uninterrupted run");
    }

    // Interrupted: the sink dies after 3 records, mid-grid.
    let dir_b = scratch("resume_b");
    let jsonl_b = dir_b.join("runs.jsonl");
    let csv_b = dir_b.join("runs.csv");
    {
        let mut failing = FailAfter {
            inner: Tee::new()
                .with(JsonLines::append(jsonl_b.to_str().unwrap()).unwrap())
                .with(CsvAppend::append(csv_b.to_str().unwrap()).unwrap()),
            remaining: 3,
        };
        let err = golden("resume")
            .checkpoint(dir_b.to_str().unwrap())
            .try_run_with_sink(&mut failing)
            .expect_err("injected failure must surface");
        assert!(matches!(err, BuildError::Sink(_)), "{err}");
    }
    // Simulate the torn tail a hard kill can leave past the last
    // durable checkpoint.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&jsonl_b)
            .unwrap();
        write!(f, "{{\"truncated mid-wri").unwrap();
    }

    // Resume with fresh append-mode sinks: completed cells are skipped,
    // the torn tail is trimmed, the rest appends.
    let summary = {
        let mut tee = Tee::new()
            .with(JsonLines::append(jsonl_b.to_str().unwrap()).unwrap())
            .with(CsvAppend::append(csv_b.to_str().unwrap()).unwrap());
        golden("resume")
            .checkpoint(dir_b.to_str().unwrap())
            .try_run_with_sink(&mut tee)
            .expect("resumed run")
    };
    assert!(
        summary.cells_skipped > 0,
        "resume must skip checkpointed cells: {summary:?}"
    );
    assert!(summary.cells_run > 0, "something was left to do");

    let a = std::fs::read_to_string(&jsonl_a).unwrap();
    let b = std::fs::read_to_string(&jsonl_b).unwrap();
    assert_eq!(a, b, "JSONL must be byte-identical after kill + resume");
    let a = std::fs::read_to_string(&csv_a).unwrap();
    let b = std::fs::read_to_string(&csv_b).unwrap();
    assert_eq!(a, b, "CSV must be byte-identical after kill + resume");

    // A reconfigured sweep must refuse the stale manifest — whether the
    // grid shape changed (extra seed) or only a parameter the cell keys
    // cannot see (packets).
    for reconfigured in [
        golden("resume").seeds([1, 2, 3]),
        golden("resume").packets(32),
    ] {
        let err = {
            let mut tee = Tee::new()
                .with(JsonLines::append(jsonl_b.to_str().unwrap()).unwrap())
                .with(CsvAppend::append(csv_b.to_str().unwrap()).unwrap());
            reconfigured
                .checkpoint(dir_b.to_str().unwrap())
                .try_run_with_sink(&mut tee)
                .expect_err("scenario changed under the manifest")
        };
        match err {
            BuildError::Sink(msg) => assert!(msg.contains("manifest"), "{msg}"),
            other => panic!("expected Sink error, got {other}"),
        }
    }

    // Resuming into an in-memory sink would silently miss the completed
    // prefix; the engine must refuse.
    let err = golden("resume")
        .checkpoint(dir_b.to_str().unwrap())
        .try_run()
        .expect_err("Collect cannot resume a checkpointed sweep");
    match err {
        BuildError::Sink(msg) => assert!(msg.contains("in-memory"), "{msg}"),
        other => panic!("expected Sink error, got {other}"),
    }

    // A truncating reopen (`create` instead of `append`) leaves the file
    // shorter than its checkpointed offset; zero-extending it would
    // corrupt the output, so the resume must refuse.
    let err = {
        let mut sink = JsonLines::create(jsonl_b.to_str().unwrap()).unwrap();
        golden("resume")
            .checkpoint(dir_b.to_str().unwrap())
            .try_run_with_sink(&mut sink)
            .expect_err("truncated file vs manifest offset")
    };
    match err {
        BuildError::Sink(msg) => assert!(msg.contains("append"), "{msg}"),
        other => panic!("expected Sink error, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn progress_callback_sees_records_in_grid_order() {
    use std::sync::Mutex;
    let seen: Arc<Mutex<Vec<(String, u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let records = golden("progress")
        .threads(2)
        .on_run_complete(move |r, p| {
            let mut s = seen2.lock().unwrap();
            assert_eq!(p.records, s.len() + 1, "records counter must increment");
            assert_eq!(p.cells_total, 4);
            s.push((r.protocol.clone(), r.seed, r.traffic_index));
        })
        .run();
    let seen = seen.lock().unwrap();
    let expected: Vec<(String, u64, usize)> = records
        .iter()
        .map(|r| (r.protocol.clone(), r.seed, r.traffic_index))
        .collect();
    assert_eq!(*seen, expected, "callback order must match grid order");
}

#[test]
fn par_map_at_10k_items_preserves_order_across_thread_counts() {
    for threads in [1, 3, 8, 32] {
        let out = exec::par_map((0..10_000).collect(), threads, |&x: &u64| x * x);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64, "threads={threads} index={i}");
        }
    }
}

#[test]
#[should_panic(expected = "scoped thread panicked")]
fn par_map_at_10k_items_propagates_worker_panics() {
    let _ = exec::par_map((0..10_000).collect(), 8, |&x: &u64| {
        assert!(x != 9_137, "poisoned item");
        x
    });
}

/// A custom workload whose schedule is handed in verbatim.
struct FixedSchedule(Vec<FlowEvent>);

impl TrafficModel for FixedSchedule {
    fn schedules(
        &self,
        _topo: &Topology,
        _run_seed: u64,
        _packets: usize,
        _horizon: Time,
    ) -> Vec<Vec<FlowEvent>> {
        vec![self.0.clone()]
    }
}

fn custom(events: Vec<FlowEvent>) -> TrafficModelSpec {
    TrafficModelSpec::Custom(Arc::new(FixedSchedule(events)))
}

fn line_builder(name: &str, traffic: TrafficModelSpec) -> ScenarioBuilder {
    Scenario::named(name)
        .topology(more_repro::scenario::TopologySpec::Line {
            hops: 2,
            p_adj: 0.9,
            skip_decay: 0.3,
            spacing: 25.0,
        })
        .traffic_model(traffic)
        .protocol("MORE")
        .packets(8)
        .deadline(60)
}

#[test]
fn zero_width_active_window_reports_finite_zero_throughput() {
    // One normal flow from t = 0 plus a flow that starts and stops at
    // the same instant — a Poisson arrival squeezed against the horizon
    // edge. The zero-width window used to risk a 0-width division whose
    // non-finite throughput poisons NaN-intolerant stats downstream.
    let flow = |src, dst| FlowSpec::unicast(NodeId(src), NodeId(dst), 8);
    let records = line_builder(
        "zero_width",
        custom(vec![
            FlowEvent::Start {
                flow: flow(0, 2),
                at: 0,
            },
            FlowEvent::Start {
                flow: flow(1, 2),
                at: 10 * SEC,
            },
            FlowEvent::Stop {
                flow: 1,
                at: 10 * SEC,
            },
        ]),
    )
    .run();
    assert_eq!(records.len(), 1);
    let flows = &records[0].flows;
    assert_eq!(flows.len(), 2);
    assert!(flows[0].completed, "the real flow runs normally: {flows:?}");
    let ghost = &flows[1];
    assert_eq!(ghost.delivered, 0, "never-active flow moved nothing");
    assert_eq!(ghost.throughput_pps, 0.0, "zero, not NaN/inf: {ghost:?}");
    assert!(ghost.throughput_pps.is_finite());
    // The historical failure mode: sorting throughputs through
    // partial_cmp (how bench::stats orders every metric) must not see a
    // NaN.
    let mut tputs: Vec<f64> = records.iter().flat_map(|r| r.throughputs()).collect();
    tputs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
}

#[test]
fn misbehaving_custom_schedules_error_instead_of_panicking() {
    let flow = || FlowSpec::unicast(NodeId(0), NodeId(2), 8);
    // Stop for a flow that never started.
    let err = line_builder(
        "stop_unknown",
        custom(vec![
            FlowEvent::Start {
                flow: flow(),
                at: 0,
            },
            FlowEvent::Stop {
                flow: 7,
                at: 2 * SEC,
            },
        ]),
    )
    .try_run()
    .expect_err("unknown flow index");
    assert!(matches!(err, BuildError::InvalidSchedule(_)), "{err}");

    // Stop ordered before its Start.
    let err = line_builder(
        "stop_before_start",
        custom(vec![
            FlowEvent::Stop { flow: 0, at: 0 },
            FlowEvent::Start {
                flow: flow(),
                at: SEC,
            },
        ]),
    )
    .try_run()
    .expect_err("Stop precedes Start");
    assert!(matches!(err, BuildError::InvalidSchedule(_)), "{err}");

    // Events past the run horizon (deadline is 60 s).
    let err = line_builder(
        "past_horizon",
        custom(vec![FlowEvent::Start {
            flow: flow(),
            at: 61 * SEC,
        }]),
    )
    .try_run()
    .expect_err("event beyond horizon");
    assert!(matches!(err, BuildError::InvalidSchedule(_)), "{err}");

    // An unsorted event list.
    let err = line_builder(
        "unsorted",
        custom(vec![
            FlowEvent::Start {
                flow: flow(),
                at: 2 * SEC,
            },
            FlowEvent::Start {
                flow: flow(),
                at: SEC,
            },
        ]),
    )
    .try_run()
    .expect_err("unsorted events");
    assert!(matches!(err, BuildError::InvalidSchedule(_)), "{err}");
}
