//! Sparse-topology equivalence: the CSR neighbor-set representation must
//! be observationally identical to the historical dense delivery matrix,
//! for every built-in generator and for arbitrary matrices.
//!
//! Three layers of guarantee:
//!
//! * **Round trip exactness** — `Topology::from_matrix` → CSR →
//!   [`Topology::matrix`] reproduces the input matrix bit-for-bit (f64
//!   `to_bits` equality, not epsilon comparison), so no consumer can
//!   observe the storage change through the dense API.
//! * **Golden bytes** — the generators' JSON output is pinned in
//!   `tests/golden/topology_*.json`; a changed link weight, reordered
//!   row, or float-formatting drift in either serialized form fails here
//!   before it can silently shift the run-level goldens.
//! * **Property coverage** — proptest feeds arbitrary small delivery
//!   matrices through the CSR constructor and both JSON forms.
//!
//! Regenerate goldens (after an *intentional* change) with
//! `UPDATE_GOLDEN=1 cargo test --test sparse_equivalence`.

use more_repro::topology::{generate, NodeId, Topology};
use proptest::prelude::*;

/// Every built-in generator, at sizes small enough to sweep pairwise.
fn generator_zoo() -> Vec<Topology> {
    vec![
        generate::motivating(),
        generate::motivating_symmetric(),
        generate::line(4, 0.85, 0.2, 25.0),
        generate::diamond(4, 0.5),
        generate::diamond_symmetricized(4, 0.5),
        generate::grid(4, 3, 0.8, 0.5, 30.0),
        generate::testbed(1),
        generate::testbed_sized(12, 3),
        generate::random_mesh(24, 120.0, 80.0, 7),
        generate::city_mesh(200, 1),
    ]
}

/// Bitwise equality for dense matrices — `0.1 + eps` drift must fail.
fn assert_matrix_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {i} length");
        for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: entry [{i}][{j}] {x} vs {y}"
            );
        }
    }
}

#[test]
fn from_matrix_round_trip_is_bit_exact_for_every_generator() {
    for topo in generator_zoo() {
        let dense = topo.matrix();
        let rebuilt = Topology::from_matrix(topo.name.clone(), dense.clone());
        assert_eq!(rebuilt.n(), topo.n(), "{}: node count", topo.name);
        assert_eq!(
            rebuilt.link_count(),
            topo.link_count(),
            "{}: link count",
            topo.name
        );
        assert_matrix_bits_eq(&rebuilt.matrix(), &dense, &topo.name);
        // The CSR link lists agree element-wise, in the same sorted order.
        let a: Vec<_> = topo.links().collect();
        let b: Vec<_> = rebuilt.links().collect();
        assert_eq!(a, b, "{}: link list", topo.name);
    }
}

#[test]
fn dense_accessors_agree_with_the_matrix_view() {
    for topo in generator_zoo() {
        let dense = topo.matrix();
        for i in topo.nodes() {
            for j in topo.nodes() {
                assert_eq!(
                    topo.delivery(i, j).to_bits(),
                    dense[i.0][j.0].to_bits(),
                    "{}: delivery({i}, {j})",
                    topo.name
                );
            }
            // The sorted out-row is exactly the non-zero cells of row i.
            let row: Vec<(NodeId, f64)> = topo.neighbors_out(i).collect();
            let expect: Vec<(NodeId, f64)> = dense[i.0]
                .iter()
                .enumerate()
                .filter(|(_, p)| **p > 0.0)
                .map(|(j, p)| (NodeId(j), *p))
                .collect();
            assert_eq!(row, expect, "{}: out-row {i}", topo.name);
        }
    }
}

#[test]
fn both_json_forms_round_trip_byte_identically() {
    for topo in generator_zoo() {
        let dense = topo.to_json();
        let sparse = topo.to_json_sparse();
        let from_dense = Topology::from_json(&dense)
            .unwrap_or_else(|e| panic!("{}: dense parse: {e:?}", topo.name));
        let from_sparse = Topology::from_json(&sparse)
            .unwrap_or_else(|e| panic!("{}: sparse parse: {e:?}", topo.name));
        // Either parse must re-serialize to the same bytes in either
        // form: the two encodings carry identical information.
        assert_eq!(from_dense.to_json(), dense, "{}: dense→dense", topo.name);
        assert_eq!(
            from_dense.to_json_sparse(),
            sparse,
            "{}: dense→sparse",
            topo.name
        );
        assert_eq!(from_sparse.to_json(), dense, "{}: sparse→dense", topo.name);
        assert_eq!(
            from_sparse.to_json_sparse(),
            sparse,
            "{}: sparse→sparse",
            topo.name
        );
    }
}

/// Compares (or, under `UPDATE_GOLDEN=1`, rewrites) a golden file.
fn check_golden(rel: &str, golden: &str, actual: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = format!("{}/tests/{rel}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("updated {path}");
        return;
    }
    assert_eq!(
        actual, golden,
        "{rel} diverged — if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test sparse_equivalence"
    );
}

#[test]
fn diamond_dense_json_matches_golden_bytes() {
    check_golden(
        "golden/topology_diamond4.json",
        include_str!("golden/topology_diamond4.json"),
        &generate::diamond(4, 0.5).to_json(),
    );
}

#[test]
fn testbed_sparse_json_matches_golden_bytes() {
    check_golden(
        "golden/topology_testbed1.json",
        include_str!("golden/topology_testbed1.json"),
        &generate::testbed(1).to_json_sparse(),
    );
}

/// Builds an arbitrary sparse delivery matrix from raw proptest words:
/// zero diagonal, ~60% zero cells, the rest uniform in `(0, 1]` with a
/// full 53-bit mantissa (so formatting shortcuts can't hide drift).
fn matrix_from_words(n: usize, words: &[u64]) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let w = words[i * n + j];
                    if i == j || w % 5 < 3 {
                        0.0
                    } else {
                        ((w >> 11) as f64 + 1.0) / (1u64 << 53) as f64
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// from_matrix → CSR → matrix() is the identity, bit for bit.
    #[test]
    fn csr_round_trip_is_exact_on_arbitrary_matrices(
        n in 1usize..8,
        words in collection::vec(any::<u64>(), 64),
    ) {
        let m = matrix_from_words(n, &words);
        let topo = Topology::from_matrix("prop", m.clone());
        let back = topo.matrix();
        for (i, (ra, rb)) in m.iter().zip(&back).enumerate() {
            for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "entry [{}][{}]", i, j);
            }
        }
        // Link count is exactly the number of non-zero cells.
        let nonzero = m.iter().flatten().filter(|p| **p > 0.0).count();
        prop_assert_eq!(topo.link_count(), nonzero);
    }

    /// Both JSON encodings survive a parse → re-serialize cycle on
    /// arbitrary matrices (float formatting included).
    #[test]
    fn json_forms_round_trip_on_arbitrary_matrices(
        n in 1usize..8,
        words in collection::vec(any::<u64>(), 64),
    ) {
        let topo = Topology::from_matrix("prop", matrix_from_words(n, &words));
        let dense = topo.to_json();
        let sparse = topo.to_json_sparse();
        let from_dense = Topology::from_json(&dense).expect("dense parse");
        let from_sparse = Topology::from_json(&sparse).expect("sparse parse");
        prop_assert_eq!(from_dense.to_json_sparse(), sparse.clone());
        prop_assert_eq!(from_sparse.to_json(), dense);
        prop_assert_eq!(from_sparse.to_json_sparse(), sparse);
    }
}
