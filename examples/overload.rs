//! DropTail vs CHOKe when offered load passes saturation.
//!
//! The paper's transfers are closed-loop: each source stops when its
//! batch is delivered, so queues never build. This example pushes the
//! other regime — Poisson flow arrivals faster than the mesh can drain —
//! through the queueing subsystem, comparing a plain DropTail transmit
//! queue against CHOKe's flow-matched drops under MORE and Srcr, with
//! Jain's fairness index surfaced in every record. The two disciplines
//! pick different victims, and the index shows how much that choice
//! matters: under Srcr's one-packet-at-a-time sources they behave almost
//! identically, while under MORE's rateless coder (which refills the
//! queue as fast as it drains) CHOKe's self-matching throttles the
//! dominant flow hard — far fewer total drops, and a very different
//! split of the medium. A per-node transmit queue in a mesh is *not* the
//! shared wired bottleneck CHOKe was designed for: most queues carry one
//! flow, so matching hits that flow's own frames rather than an unfair
//! competitor's.
//!
//! Streams `results/overload.jsonl` + `.csv` while the grids run and
//! prints a fairness table.
//!
//! ```sh
//! cargo run --release --example overload
//! ```

use more_repro::scenario::sink::{Collect, CsvAppend, JsonLines, Tee};
use more_repro::scenario::{QueueSpec, RunRecord, Scenario, Sweep, TrafficModelSpec};
use std::fmt::Write as _;

const JSONL_PATH: &str = "results/overload.jsonl";
const CSV_PATH: &str = "results/overload.csv";

/// Arrival rates (flows/s): the first is comfortable, the last is well
/// past what a 20-node 802.11b mesh drains with 8-frame queues.
const LOADS: [f64; 2] = [0.1, 0.5];

fn run_discipline(queue: QueueSpec, collect: &mut Collect, fresh: bool) {
    // Append so both disciplines land in one file pair; the first run
    // claims the files.
    let jsonl = if fresh {
        JsonLines::create(JSONL_PATH)
    } else {
        JsonLines::append(JSONL_PATH)
    }
    .unwrap_or_else(|e| panic!("open {JSONL_PATH}: {e}"));
    let csv = if fresh {
        CsvAppend::create(CSV_PATH)
    } else {
        CsvAppend::append(CSV_PATH)
    }
    .unwrap_or_else(|e| panic!("open {CSV_PATH}: {e}"));
    let mut sink = Tee::new().with(collect).with(jsonl).with(csv);
    Scenario::named("overload")
        .testbed(1)
        .traffic_model(TrafficModelSpec::Poisson {
            rate_per_s: LOADS[0],
            mean_hold_s: 30.0,
            max_active: 4,
        })
        .protocols(["MORE", "Srcr"])
        .sweep(Sweep::Load(LOADS.to_vec()))
        .queue(queue)
        .seeds(1..=2)
        .k(8)
        .packets(64)
        .deadline(60)
        .run_with_sink(&mut sink);
}

fn main() {
    let disciplines = [QueueSpec::drop_tail(8), QueueSpec::choke(8)];

    let mut collect = Collect::new();
    for (i, q) in disciplines.iter().enumerate() {
        run_discipline(q.clone(), &mut collect, i == 0);
    }
    let records = collect.into_records();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Jain's fairness index (mean over 2 seeds) at each offered load:\n"
    );
    let _ = writeln!(
        out,
        "  {:<6} {:<10} {:>16} {:>16} {:>12}",
        "proto", "load f/s", "droptail(cap=8)", "choke(cap=8)", "drops dt/ch"
    );
    for proto in ["MORE", "Srcr"] {
        for &load in &LOADS {
            let sel = |q: &QueueSpec| -> Vec<&RunRecord> {
                records
                    .iter()
                    .filter(|r| {
                        r.protocol == proto && r.value == Some(load) && r.queue == q.label()
                    })
                    .collect()
            };
            let fairness = |rs: &[&RunRecord]| -> f64 {
                rs.iter().map(|r| r.fairness).sum::<f64>() / rs.len().max(1) as f64
            };
            let drops = |rs: &[&RunRecord]| -> u64 { rs.iter().map(|r| r.queue_drops).sum() };
            let (dt, ch) = (sel(&disciplines[0]), sel(&disciplines[1]));
            let _ = writeln!(
                out,
                "  {proto:<6} {load:<10} {:>16.3} {:>16.3} {:>6}/{}",
                fairness(&dt),
                fairness(&ch),
                drops(&dt),
                drops(&ch),
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(same arrival process per cell: fairness differences come from\n what the queue chooses to drop, not from what the air delivers)"
    );
    print!("{out}");

    println!("records streamed to {JSONL_PATH} and {CSV_PATH}");
}
