//! MORE vs Srcr under dynamic Poisson flow arrivals — the offered-load
//! curve the paper never drew.
//!
//! The paper's workloads are static: every flow exists from t = 0 and
//! runs to completion. Real meshes see churn — transfers arrive, hold,
//! and depart. This example sweeps the Poisson arrival rate
//! ([`Sweep::Load`]) over the testbed and plots offered load against
//! per-flow delivered throughput for MORE and Srcr: at low load both
//! protocols serve every flow, and as arrivals pack the air the curves
//! separate and then collapse — the classic congestion-collapse figure,
//! with identical arrival processes per rate point so the comparison is
//! fair.
//!
//! Streams `results/dynamic_arrivals.jsonl` + `.csv` while the sweep
//! runs and prints the paths.
//!
//! ```sh
//! cargo run --release --example dynamic_arrivals
//! ```

use more_repro::scenario::sink::{Collect, CsvAppend, JsonLines, Tee};
use more_repro::scenario::{RunRecord, Scenario, Sweep, TrafficModelSpec};
use std::fmt::Write as _;

const JSONL_PATH: &str = "results/dynamic_arrivals.jsonl";
const CSV_PATH: &str = "results/dynamic_arrivals.csv";

const RATES: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

fn main() {
    // Flows hold ~20 s (or finish earlier), at most 4 share the air; the
    // Load sweep replaces the arrival rate per point. Results stream to
    // JSONL + CSV as each grid cell completes; Collect keeps a copy for
    // the offered-load table.
    let mut collect = Collect::new();
    {
        let jsonl =
            JsonLines::create(JSONL_PATH).unwrap_or_else(|e| panic!("open {JSONL_PATH}: {e}"));
        let csv = CsvAppend::create(CSV_PATH).unwrap_or_else(|e| panic!("open {CSV_PATH}: {e}"));
        let mut sink = Tee::new().with(&mut collect).with(jsonl).with(csv);
        Scenario::named("dynamic_arrivals")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Poisson {
                rate_per_s: RATES[0],
                mean_hold_s: 20.0,
                max_active: 4,
            })
            .protocols(["MORE", "Srcr"])
            .sweep(Sweep::Load(RATES.to_vec()))
            .seeds(1..=2)
            .packets(96)
            .k(16)
            .deadline(120)
            .run_with_sink(&mut sink);
    }
    let records = collect.into_records();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "offered load vs mean per-flow throughput (packets/s), testbed × 2 seeds:\n"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>10} {:>10}",
        "rate (1/s)", "flows", "MORE", "Srcr"
    );
    for &rate in &RATES {
        let at = |proto: &str| -> (usize, f64) {
            let rs: Vec<&RunRecord> = records
                .iter()
                .filter(|r| r.protocol == proto && r.value == Some(rate))
                .collect();
            let flows: usize = rs.iter().map(|r| r.flows.len()).sum();
            let tput = rs.iter().map(|r| r.mean_throughput()).sum::<f64>() / rs.len().max(1) as f64;
            (flows, tput)
        };
        let (n, more) = at("MORE");
        let (_, srcr) = at("Srcr");
        let _ = writeln!(out, "  {rate:<12} {n:>8} {more:>10.1} {srcr:>10.1}");
    }
    let _ = writeln!(
        out,
        "\n(each rate point replays the same arrival process for both\n protocols; per-flow arrival/departure/latency is in the CSV)"
    );
    print!("{out}");

    println!("records streamed to {JSONL_PATH} and {CSV_PATH}");
}
