//! MORE vs Srcr vs ExOR when the air turns bursty.
//!
//! The paper evaluates all three protocols on a static channel: every
//! link keeps one delivery probability forever (§5.3.1). Real meshes see
//! bursts — a link that is perfect for a second and dead for the next 50
//! ms. This example runs the same testbed transfer under the static
//! channel and under a Gilbert–Elliott channel *matched to the same mean
//! loss* (good-state scale 1.25 × / bad-state outage, stationary mean =
//! the static matrix), so any throughput change is caused by loss
//! *correlation*, not loss *rate*.
//!
//! Writes `results/bursty_links.json` + `.csv` and prints the paths.
//!
//! ```sh
//! cargo run --release --example bursty_links
//! ```

use more_repro::scenario::{record, ChannelSpec, RunRecord, Scenario, Sweep, TrafficSpec};
use std::fmt::Write as _;

const JSON_PATH: &str = "results/bursty_links.json";
const CSV_PATH: &str = "results/bursty_links.csv";

fn main() {
    // Outages average 50 ms (to_good 0.2 per 10 ms epoch) and strike 20%
    // of the time; bursty_matched solves the good-state scale so each
    // link's mean delivery still equals the static matrix.
    let bursty = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
    let channels = vec![ChannelSpec::Static, bursty];

    let records = Scenario::named("bursty_links")
        .testbed(1)
        .traffic(TrafficSpec::RandomPairs { count: 4, seed: 7 })
        .protocols(["MORE", "Srcr", "ExOR"])
        .sweep(Sweep::Channel(channels.clone()))
        .seeds(1..=2)
        .packets(48)
        .deadline(120)
        .run();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "mean throughput (packets/s) over {} random testbed pairs × 2 seeds:\n",
        4
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>10} {:>10} {:>8}",
        "protocol", "static", "bursty", "ratio"
    );
    for proto in ["MORE", "Srcr", "ExOR"] {
        let mean = |chan: &ChannelSpec| -> f64 {
            let rs: Vec<&RunRecord> = records
                .iter()
                .filter(|r| r.protocol == proto && r.channel == chan.label())
                .collect();
            rs.iter().map(|r| r.mean_throughput()).sum::<f64>() / rs.len() as f64
        };
        let stat = mean(&channels[0]);
        let ge = mean(&channels[1]);
        let _ = writeln!(
            out,
            "  {proto:<8} {stat:>10.1} {ge:>10.1} {:>8.2}",
            ge / stat
        );
    }
    let _ = writeln!(
        out,
        "\n(matched mean loss: throughput differences come from burst\n correlation, the regime the paper's static model cannot express)"
    );
    print!("{out}");

    record::write_json(JSON_PATH, &records).unwrap_or_else(|e| panic!("write {JSON_PATH}: {e}"));
    record::write_csv(CSV_PATH, &records).unwrap_or_else(|e| panic!("write {CSV_PATH}: {e}"));
    println!("records written to {JSON_PATH} and {CSV_PATH}");
}
