//! MORE vs Srcr vs ExOR when the air turns bursty.
//!
//! The paper evaluates all three protocols on a static channel: every
//! link keeps one delivery probability forever (§5.3.1). Real meshes see
//! bursts — a link that is perfect for a second and dead for the next 50
//! ms. This example runs the same testbed transfer under the static
//! channel and under a Gilbert–Elliott channel *matched to the same mean
//! loss* (good-state scale 1.25 × / bad-state outage, stationary mean =
//! the static matrix), so any throughput change is caused by loss
//! *correlation*, not loss *rate*.
//!
//! Streams `results/bursty_links.jsonl` + `.csv` while the grid runs
//! and prints the paths.
//!
//! ```sh
//! cargo run --release --example bursty_links
//! ```

use more_repro::scenario::sink::{Collect, CsvAppend, JsonLines, Tee};
use more_repro::scenario::{ChannelSpec, RunRecord, Scenario, Sweep, TrafficSpec};
use std::fmt::Write as _;

const JSONL_PATH: &str = "results/bursty_links.jsonl";
const CSV_PATH: &str = "results/bursty_links.csv";

fn main() {
    // Outages average 50 ms (to_good 0.2 per 10 ms epoch) and strike 20%
    // of the time; bursty_matched solves the good-state scale so each
    // link's mean delivery still equals the static matrix.
    let bursty = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
    let channels = vec![ChannelSpec::Static, bursty];

    // Stream to disk while the grid runs; Collect keeps a copy for the
    // summary table.
    let mut collect = Collect::new();
    {
        let jsonl =
            JsonLines::create(JSONL_PATH).unwrap_or_else(|e| panic!("open {JSONL_PATH}: {e}"));
        let csv = CsvAppend::create(CSV_PATH).unwrap_or_else(|e| panic!("open {CSV_PATH}: {e}"));
        let mut sink = Tee::new().with(&mut collect).with(jsonl).with(csv);
        Scenario::named("bursty_links")
            .testbed(1)
            .traffic(TrafficSpec::RandomPairs { count: 4, seed: 7 })
            .protocols(["MORE", "Srcr", "ExOR"])
            .sweep(Sweep::Channel(channels.clone()))
            .seeds(1..=2)
            .packets(48)
            .deadline(120)
            .run_with_sink(&mut sink);
    }
    let records = collect.into_records();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "mean throughput (packets/s) over {} random testbed pairs × 2 seeds:\n",
        4
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>10} {:>10} {:>8}",
        "protocol", "static", "bursty", "ratio"
    );
    for proto in ["MORE", "Srcr", "ExOR"] {
        let mean = |chan: &ChannelSpec| -> f64 {
            let rs: Vec<&RunRecord> = records
                .iter()
                .filter(|r| r.protocol == proto && r.channel == chan.label())
                .collect();
            rs.iter().map(|r| r.mean_throughput()).sum::<f64>() / rs.len() as f64
        };
        let stat = mean(&channels[0]);
        let ge = mean(&channels[1]);
        let _ = writeln!(
            out,
            "  {proto:<8} {stat:>10.1} {ge:>10.1} {:>8.2}",
            ge / stat
        );
    }
    let _ = writeln!(
        out,
        "\n(matched mean loss: throughput differences come from burst\n correlation, the regime the paper's static model cannot express)"
    );
    print!("{out}");

    println!("records streamed to {JSONL_PATH} and {CSV_PATH}");
}
