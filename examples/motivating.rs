//! The Fig 1-1 motivating example, in code.
//!
//! The source sends 2 packets. The destination overhears p2; the relay R
//! receives both. Without coordination R might waste a transmission on
//! p2 — but a *coded* packet `c1·p1 + c2·p2` lets the destination recover
//! whatever it misses, no matter which packet that is.
//!
//! ```sh
//! cargo run --release --example motivating
//! ```

use more_repro::rlnc::{CodeVector, CodedPacket, Decoder, SourceEncoder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // Two native packets at the source.
    let p1 = b"When a node transmits, there is always a chance...".to_vec();
    let p2 = b"...that a node closer to the destination overhears".to_vec();
    let len = p1.len().max(p2.len());
    let pad = |mut v: Vec<u8>| {
        v.resize(len, b' ');
        v
    };
    let natives = vec![pad(p1), pad(p2)];
    let enc = SourceEncoder::new(natives.clone()).unwrap();

    // The broadcast: destination happened to catch only p2.
    let dst_heard = enc.encode_with(CodeVector::unit(2, 1));
    let mut dst = Decoder::new(2, len);
    dst.receive(&dst_heard);
    println!("destination rank after overhearing p2: {}/2", dst.rank());

    // R heard both, but does NOT know what the destination holds. It
    // sends one random combination c1·p1 + c2·p2.
    let relay_packet: CodedPacket = enc.encode(&mut rng);
    println!(
        "relay broadcasts one coded packet with vector {:?}",
        relay_packet.vector()
    );

    // That single packet completes the transfer regardless of which
    // native the destination already has.
    dst.receive(&relay_packet);
    assert!(dst.is_complete());
    let decoded = dst.take_natives().unwrap();
    assert_eq!(decoded, natives);
    println!("destination decoded both packets:");
    for (i, p) in decoded.iter().enumerate() {
        println!("  p{}: {}", i + 1, String::from_utf8_lossy(p).trim_end());
    }
    println!("\nno coordination needed — that is MORE's trade of structure for randomness.");
}
