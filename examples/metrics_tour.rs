//! A tour of the Chapter-5 theory API: ETX, EOTX, Algorithm 1 transmission
//! counts, TX credits, and the minimum-cost flow solution.
//!
//! Prints the tour to stdout and writes the same transcript to
//! `results/metrics_tour.txt` (the path is printed at the end).
//!
//! ```sh
//! cargo run --release --example metrics_tour
//! ```

use more_repro::metrics::etx::LinkCost;
use more_repro::metrics::flow::FlowSolution;
use more_repro::metrics::gap::pair_gap;
use more_repro::metrics::{EotxTable, EtxTable, ForwarderPlan, PlanConfig};
use more_repro::topology::{generate, NodeId};
use std::fmt::Write as _;

const OUT_PATH: &str = "results/metrics_tour.txt";

fn main() {
    let mut out = String::new();

    // The Fig 1-1 example: src(0) -> R(1) -> dst(2), direct link 0.49.
    let topo = generate::motivating();
    let dst = NodeId(2);

    let etx = EtxTable::compute(&topo, dst, LinkCost::Forward);
    let eotx = EotxTable::compute(&topo, dst);
    let _ = writeln!(out, "Fig 1-1 example:");
    for n in topo.nodes() {
        let _ = writeln!(
            out,
            "  {n}: ETX = {:.3}, EOTX = {:.3}",
            etx.dist(n),
            eotx.dist(n)
        );
    }
    let _ = writeln!(
        out,
        "  (ETX 2.0 via R; EOTX 1.51 because the direct 0.49 link helps opportunistically)\n"
    );

    // Algorithm 1 on the same topology: how many transmissions each node
    // makes per delivered packet, and the TX credits MORE ships in headers.
    let plan = ForwarderPlan::compute(
        &topo,
        NodeId(0),
        dst,
        etx.distances(),
        &PlanConfig::unpruned(),
    );
    let _ = writeln!(out, "Algorithm 1 (ETX order):");
    for &n in &plan.order {
        let _ = writeln!(
            out,
            "  {n}: z = {:.3}, load = {:.3}, TX credit = {:.3}",
            plan.z[n.0], plan.load[n.0], plan.tx_credit[n.0]
        );
    }
    let _ = writeln!(
        out,
        "  total cost {:.3} transmissions per packet\n",
        plan.total_cost()
    );

    // The full min-cost flow (Algorithm 6) under the EOTX order equals
    // the source's EOTX.
    let order: Vec<NodeId> = plan.order.clone();
    let sol = FlowSolution::compute(&topo, &order, NodeId(0));
    let _ = writeln!(
        out,
        "Algorithm 6 total cost {:.3} == EOTX(src) {:.3}\n",
        sol.total_cost(),
        eotx.dist(NodeId(0))
    );

    // And the Fig 5-1 diamond where ETX-ordering is arbitrarily bad.
    let _ = writeln!(out, "Fig 5-1 diamond, gap(ETX order / EOTX order):");
    for &p in &[0.2, 0.05, 0.01] {
        let k = 8;
        let d = generate::diamond(k, p);
        let (src, _, _, _, ddst) = generate::diamond_roles(k);
        let _ = writeln!(
            out,
            "  p = {p:<5}: gap = {:.2} (limit {k})",
            pair_gap(&d, src, ddst)
        );
    }

    print!("{out}");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(OUT_PATH, &out).unwrap_or_else(|e| panic!("write {OUT_PATH}: {e}"));
    println!("\ntranscript written to {OUT_PATH}");
}
