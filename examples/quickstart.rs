//! Quickstart: run a MORE file transfer across a simulated 20-node mesh.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use more_repro::more::{MoreAgent, MoreConfig};
use more_repro::sim::{SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId};

fn main() {
    // 1. A testbed-like topology: 20 nodes, 3 floors, lossy 802.11b links.
    let topo = generate::testbed(1);
    println!("{}", topo.ascii_map(56, 12));
    println!(
        "{} nodes, {} links, mean link loss {:.0}%\n",
        topo.n(),
        topo.links().count(),
        100.0 * topo.mean_link_loss()
    );

    // 2. A MORE agent with one flow: 384 packets (12 batches of K=32)
    //    from node 0 to node 19.
    let (src, dst) = (NodeId(0), NodeId(19));
    let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
    let flow = agent.add_flow(1, src, dst, 384);

    // 3. Simulate until the transfer completes.
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 42);
    sim.kick(src);
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());

    // 4. Results.
    let p = sim.agent.progress(flow);
    let secs = p.completed_at.expect("transfer completed") as f64 / SEC as f64;
    println!("transferred {} packets {src} -> {dst} in {secs:.2} s", p.delivered_packets);
    println!("throughput: {:.1} packets/s", p.delivered_packets as f64 / secs);
    println!(
        "network cost: {} transmissions ({:.2} per delivered packet)",
        sim.stats.total_tx(),
        sim.stats.total_tx() as f64 / p.delivered_packets as f64
    );
    println!(
        "collisions {} (captured {}), batch ACKs retried {} times",
        sim.stats.collisions, sim.stats.captures, sim.stats.retries
    );
}
