//! Quickstart: compare MORE against the paper's baselines on a simulated
//! 20-node mesh with the scenario builder — declare, run, read records.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use more_repro::scenario::sink::{Collect, JsonLines, Tee};
use more_repro::scenario::{Scenario, TrafficSpec};
use more_repro::topology::generate;

const JSONL_PATH: &str = "results/quickstart.jsonl";

fn main() {
    // 1. A testbed-like topology: 20 nodes, 3 floors, lossy 802.11b links.
    let topo = generate::testbed(1);
    println!("{}", topo.ascii_map(56, 12));
    println!(
        "{} nodes, {} links, mean link loss {:.0}%\n",
        topo.n(),
        topo.links().count(),
        100.0 * topo.mean_link_loss()
    );

    // 2. Declare the experiment: the paper's three-way comparison over
    //    random source→destination pairs, 384 packets each (12 batches
    //    of K=32), identical topology and seeds for every protocol.
    //    Records *stream* as the grid runs — a JSONL sink persists each
    //    one the moment its cell completes, while a Collect sink keeps
    //    them in memory for the summary table below.
    let mut collect = Collect::new();
    {
        let jsonl =
            JsonLines::create(JSONL_PATH).unwrap_or_else(|e| panic!("open {JSONL_PATH}: {e}"));
        let mut sink = Tee::new().with(&mut collect).with(jsonl);
        Scenario::named("quickstart")
            .testbed(1)
            .traffic(TrafficSpec::RandomPairs { count: 8, seed: 42 })
            .protocols(["Srcr", "ExOR", "MORE"])
            .packets(384)
            .deadline(240)
            .run_with_sink(&mut sink);
    }
    let records = collect.into_records();

    // 3. Read structured results.
    println!(
        "{:>6} | {:>10} {:>10} {:>12} {:>10}",
        "proto", "mean pkt/s", "completed", "tx/packet", "overlap"
    );
    for proto in ["Srcr", "ExOR", "MORE"] {
        let rs: Vec<_> = records.iter().filter(|r| r.protocol == proto).collect();
        let mean_tput = rs.iter().map(|r| r.mean_throughput()).sum::<f64>() / rs.len() as f64;
        let completed = rs.iter().filter(|r| r.all_completed()).count();
        let tx_per_packet = rs
            .iter()
            .map(|r| {
                let delivered: usize = r.flows.iter().map(|f| f.delivered).sum();
                r.total_tx as f64 / delivered.max(1) as f64
            })
            .sum::<f64>()
            / rs.len() as f64;
        let overlap = rs.iter().map(|r| r.concurrency).sum::<f64>() / rs.len() as f64;
        println!(
            "{proto:>6} | {mean_tput:10.1} {completed:>7}/{:<2} {tx_per_packet:12.2} {:9.1}%",
            rs.len(),
            100.0 * overlap
        );
    }

    // 4. Everything serialized while the grid ran — hand the JSONL to
    //    plotting scripts (one RunRecord object per line).
    println!("\nraw records (streamed): {JSONL_PATH}");
    println!(
        "(custom protocols plug in via ProtocolRegistry::register — see tests/scenario_api.rs)"
    );
}
