//! Quickstart: compare MORE against the paper's baselines on a simulated
//! 20-node mesh with the scenario builder — declare, run, read records.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use more_repro::scenario::{record, Scenario, TrafficSpec};
use more_repro::topology::generate;

fn main() {
    // 1. A testbed-like topology: 20 nodes, 3 floors, lossy 802.11b links.
    let topo = generate::testbed(1);
    println!("{}", topo.ascii_map(56, 12));
    println!(
        "{} nodes, {} links, mean link loss {:.0}%\n",
        topo.n(),
        topo.links().count(),
        100.0 * topo.mean_link_loss()
    );

    // 2. Declare the experiment: the paper's three-way comparison over
    //    random source→destination pairs, 384 packets each (12 batches
    //    of K=32), identical topology and seeds for every protocol.
    let records = Scenario::named("quickstart")
        .testbed(1)
        .traffic(TrafficSpec::RandomPairs { count: 8, seed: 42 })
        .protocols(["Srcr", "ExOR", "MORE"])
        .packets(384)
        .deadline(240)
        .run();

    // 3. Read structured results.
    println!(
        "{:>6} | {:>10} {:>10} {:>12} {:>10}",
        "proto", "mean pkt/s", "completed", "tx/packet", "overlap"
    );
    for proto in ["Srcr", "ExOR", "MORE"] {
        let rs: Vec<_> = records.iter().filter(|r| r.protocol == proto).collect();
        let mean_tput = rs.iter().map(|r| r.mean_throughput()).sum::<f64>() / rs.len() as f64;
        let completed = rs.iter().filter(|r| r.all_completed()).count();
        let tx_per_packet = rs
            .iter()
            .map(|r| {
                let delivered: usize = r.flows.iter().map(|f| f.delivered).sum();
                r.total_tx as f64 / delivered.max(1) as f64
            })
            .sum::<f64>()
            / rs.len() as f64;
        let overlap = rs.iter().map(|r| r.concurrency).sum::<f64>() / rs.len() as f64;
        println!(
            "{proto:>6} | {mean_tput:10.1} {completed:>7}/{:<2} {tx_per_packet:12.2} {:9.1}%",
            rs.len(),
            100.0 * overlap
        );
    }

    // 4. Everything serializes — hand the records to plotting scripts.
    record::write_json("results/quickstart.json", &records).expect("write JSON");
    println!("\nraw records: results/quickstart.json");
    println!(
        "(custom protocols plug in via ProtocolRegistry::register — see tests/scenario_api.rs)"
    );
}
