//! Dead-spot rescue: the scenario the paper's intro motivates.
//!
//! Find the most challenged pair on the testbed (worst Srcr throughput)
//! and show opportunistic routing reviving it: many weak paths beat one
//! mediocre best path.
//!
//! Prints the probe results to stdout and writes the key numbers as JSON
//! to `results/dead_spot_rescue.json` (the path is printed at the end).
//!
//! ```sh
//! cargo run --release --example dead_spot_rescue
//! ```

use more_repro::baselines::{SrcrAgent, SrcrConfig};
use more_repro::more::{MoreAgent, MoreConfig};
use more_repro::sim::{Bitrate, SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId};

const PACKETS: usize = 96;

fn srcr_throughput(topo: &more_repro::topology::Topology, s: NodeId, d: NodeId) -> f64 {
    let mut agent = SrcrAgent::new(topo.clone(), SrcrConfig::default(), Bitrate::B5_5);
    let flow = agent.add_flow(1, s, d, PACKETS);
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 9);
    sim.kick(s);
    let deadline = 240 * SEC;
    sim.run_until(deadline, |a: &SrcrAgent| a.all_done());
    let p = sim.agent.progress(flow);
    let t = p.completed_at.unwrap_or(deadline).max(1);
    p.delivered as f64 / (t as f64 / SEC as f64)
}

fn more_throughput(topo: &more_repro::topology::Topology, s: NodeId, d: NodeId) -> (f64, usize) {
    let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
    let flow = agent.add_flow(1, s, d, PACKETS);
    let n_forwarders = agent.flows()[flow].plan.forwarders().len();
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 9);
    sim.kick(s);
    let deadline = 240 * SEC;
    sim.run_until(deadline, |a: &MoreAgent| a.all_done());
    let p = sim.agent.progress(flow);
    let t = p.completed_at.unwrap_or(deadline).max(1);
    (
        p.delivered_packets as f64 / (t as f64 / SEC as f64),
        n_forwarders,
    )
}

fn main() {
    let topo = generate::testbed(1);

    // Probe a sample of pairs for the worst Srcr performer.
    println!("probing for the testbed's dead spot (worst Srcr pair)...");
    let mut worst: Option<(NodeId, NodeId, f64)> = None;
    for s in topo.nodes().step_by(2) {
        for d in topo.nodes().skip(1).step_by(3) {
            if s == d || topo.hop_count(s, d).is_none() {
                continue;
            }
            let t = srcr_throughput(&topo, s, d);
            if worst.is_none() || t < worst.expect("set").2 {
                worst = Some((s, d, t));
            }
        }
    }
    let (s, d, srcr_tput) = worst.expect("some pair probed");
    println!(
        "dead spot: {s} -> {d} ({} hops) — Srcr manages {srcr_tput:.1} pkt/s\n",
        topo.hop_count(s, d).expect("reachable")
    );

    let (more_tput, n_fwd) = more_throughput(&topo, s, d);
    let gain = more_tput / srcr_tput.max(0.1);
    println!("MORE on the same pair: {more_tput:.1} pkt/s using {n_fwd} forwarders");
    println!(
        "opportunistic gain: {gain:.1}x  (the paper reports challenged flows gaining up to 10-12x)"
    );

    let out_path = "results/dead_spot_rescue.json";
    let json = format!(
        "{{\n  \"src\": {}, \"dst\": {}, \"hops\": {},\n  \"srcr_pkt_per_s\": {srcr_tput:.2},\n  \"more_pkt_per_s\": {more_tput:.2},\n  \"more_forwarders\": {n_fwd},\n  \"gain\": {gain:.2}\n}}\n",
        s.0,
        d.0,
        topo.hop_count(s, d).expect("reachable"),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nkey numbers written to {out_path}");
}
