//! Content distribution to several receivers at once — the multicast
//! traffic the paper's introduction motivates (video/IPTV distribution),
//! and the workload ExOR's strict scheduler cannot express.
//!
//! One coded broadcast is useful to every downstream destination
//! simultaneously, so multicasting to three nodes costs far less than
//! three unicasts.
//!
//! ```sh
//! cargo run --release --example multicast_distribution
//! ```

use more_repro::more::{MoreAgent, MoreConfig, MulticastMoreAgent};
use more_repro::sim::{SimConfig, Simulator, SEC};
use more_repro::topology::{generate, NodeId};

const PACKETS: usize = 128;

fn main() {
    let topo = generate::testbed(1);
    let src = NodeId(0);
    let dsts = vec![NodeId(19), NodeId(12), NodeId(7)];

    // Multicast: one flow, three destinations.
    let mut agent = MulticastMoreAgent::new(topo.clone(), MoreConfig::default());
    let fi = agent.add_flow(1, src, dsts.clone(), PACKETS);
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 5);
    sim.kick(src);
    sim.run_until(900 * SEC, |a: &MulticastMoreAgent| a.all_done());
    let p = sim.agent.progress(fi);
    assert!(p.done);
    let mc_tx = sim.stats.total_tx();
    println!("multicast {src} -> {dsts:?}: {PACKETS} packets each");
    for (d, (got, at)) in dsts.iter().zip(p.delivered.iter().zip(&p.completed_at)) {
        println!(
            "  {d}: {got} packets in {:.2} s",
            at.expect("completed") as f64 / SEC as f64
        );
    }
    println!("  total network transmissions: {mc_tx}\n");

    // The same job as three unicasts.
    let mut uni_tx = 0;
    for (i, &d) in dsts.iter().enumerate() {
        let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
        let fi = agent.add_flow(1, src, d, PACKETS);
        let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 6 + i as u64);
        sim.kick(src);
        sim.run_until(900 * SEC, |a: &MoreAgent| a.all_done());
        assert!(sim.agent.progress(fi).done);
        uni_tx += sim.stats.total_tx();
    }
    println!("three sequential unicasts: {uni_tx} transmissions");
    println!(
        "multicast saving: {:.0}% fewer transmissions",
        100.0 * (1.0 - mc_tx as f64 / uni_tx as f64)
    );
}
