//! The forwarder's batch buffer with pre-coding (§3.1.2, §3.2.3, §3.3.2).
//!
//! A forwarder stores the innovative packets it hears ("the batch buffer
//! stores the received innovative packets; note that the number of
//! innovative packets in a batch is bounded by the batch size K") and, when
//! the MAC allows it to transmit, broadcasts a random linear combination of
//! them. The payload bytes of stored packets are *not* modified — reduction
//! happens only on code vectors in the [`InnovationTracker`]; the raw packet
//! "is just stored in a pool to be used later" (§3.2.3b).
//!
//! Pre-coding (§3.2.3c): the buffer keeps one already-combined packet ready.
//! When an innovative packet arrives, it is folded into the prepared packet
//! with a fresh random coefficient, so the prepared packet always reflects
//! everything the node knows, and handing a packet to the driver never
//! blocks on a K-way combine.
//!
//! Storage is zero-copy end to end: pooled packets share the flat
//! `[coeffs | payload]` buffers that arrived off the air (a store is a
//! refcount bump), the prepared packet lives in one pooled flat buffer that
//! a single multiply-accumulate pass updates per arrival, and flushing a
//! batch returns every buffer to [`crate::pool`].

use crate::packet::{axpy_chunked, CodedPacket};
use crate::pool;
use crate::tracker::InnovationTracker;
use bytes::BytesMut;
use gf256::{slice_ops, Gf256};
use rand::Rng;

/// A forwarder's per-batch coding state.
///
/// ```
/// use more_rlnc::{ForwarderBuffer, SourceEncoder};
/// use rand::SeedableRng;
///
/// let natives: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 32]).collect();
/// let enc = SourceEncoder::new(natives).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let mut fwd = ForwarderBuffer::new(4, 32);
/// while fwd.rank() < 2 {
///     fwd.receive(&enc.encode(&mut rng), &mut rng);
/// }
/// // The emitted packet spans everything the forwarder has heard.
/// let p = fwd.emit(&mut rng).unwrap();
/// assert_eq!(p.k(), 4);
/// assert!(!p.vector_is_zero());
/// ```
#[derive(Clone, Debug)]
pub struct ForwarderBuffer {
    k: usize,
    payload_len: usize,
    tracker: InnovationTracker,
    /// Original innovative packets, flat buffers shared, payloads untouched.
    pool: Vec<CodedPacket>,
    /// The pre-coded packet kept ready for the next transmit opportunity,
    /// as one flat `[coeffs | payload]` buffer.
    precoded: Option<BytesMut>,
}

impl ForwarderBuffer {
    /// An empty buffer for batch size `k` and payload size `payload_len`.
    pub fn new(k: usize, payload_len: usize) -> Self {
        ForwarderBuffer {
            k,
            payload_len,
            tracker: InnovationTracker::new(k),
            pool: Vec::new(),
            precoded: None,
        }
    }

    /// Batch size K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload size in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Rank of the stored information (== number of pooled packets).
    #[inline]
    pub fn rank(&self) -> usize {
        self.tracker.rank()
    }

    /// True if no packets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Non-destructive innovativeness check against the stored rank.
    pub fn is_innovative(&self, p: &CodedPacket) -> bool {
        self.tracker.is_innovative(p.vector())
    }

    /// Offers a received packet to the buffer.
    ///
    /// Innovative packets are stored — a refcount bump on the shared flat
    /// buffer, no payload copy — and folded into the pre-coded packet with
    /// a fresh random coefficient; non-innovative packets are discarded.
    /// Returns `true` iff the packet was innovative.
    ///
    /// # Panics
    ///
    /// Panics if the packet's K or payload length disagree with the buffer.
    pub fn receive<R: Rng + ?Sized>(&mut self, p: &CodedPacket, rng: &mut R) -> bool {
        assert_eq!(p.k(), self.k, "packet K != buffer K");
        assert_eq!(
            p.payload_len(),
            self.payload_len,
            "packet payload length mismatch"
        );
        if !self.tracker.absorb(p.vector()) {
            return false;
        }
        self.pool.push(p.clone());
        // Keep the prepared packet fresh: "the pre-coded packet is updated
        // by multiplying the newly arrived packet with a random coefficient
        // and adding it to the pre-coded packet." Both sides are flat
        // [coeffs | payload] buffers, so the fold is one fused pass.
        if let Some(pre) = &mut self.precoded {
            let r = random_nonzero(rng);
            slice_ops::mul_add_assign(pre, p.data(), r);
        } else {
            self.precode(rng);
        }
        true
    }

    /// Recomputes the pre-coded packet as a fresh random combination of the
    /// whole pool ("as soon as the transmission starts, a new packet is
    /// pre-coded for this flow and stored for future use").
    ///
    /// The combine is one batched [`axpy_chunked`] pass over the pooled
    /// flat buffers into a pooled flat destination; coefficients are drawn
    /// lazily in pool order, preserving the RNG stream of a
    /// packet-at-a-time fold.
    pub fn precode<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if let Some(old) = self.precoded.take() {
            pool::release_mut(old);
        }
        if self.pool.is_empty() {
            return;
        }
        let mut buf = pool::acquire(self.k + self.payload_len);
        axpy_chunked(
            &mut buf,
            self.pool
                .iter()
                .map(|p| (random_nonzero(rng), &p.data()[..])),
        );
        self.precoded = Some(buf);
    }

    /// Hands out the prepared packet and immediately pre-codes the next one.
    ///
    /// Returns `None` when the buffer holds no packets (a forwarder that has
    /// heard nothing has nothing to say).
    pub fn emit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<CodedPacket> {
        if self.precoded.is_none() {
            self.precode(rng);
        }
        let flat = self.precoded.take()?;
        self.precode(rng);
        Some(CodedPacket::from_flat(self.k, flat.freeze()))
    }

    /// Number of packets that would be combined to emit (pool size).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Drops all state (batch flushed on ACK or a newer batch, §3.2.2),
    /// returning every buffer this node is the last holder of to the pool.
    pub fn flush(&mut self) {
        self.tracker.reset();
        for p in self.pool.drain(..) {
            pool::release(p.into_data());
        }
        if let Some(pre) = self.precoded.take() {
            pool::release_mut(pre);
        }
    }
}

impl Drop for ForwarderBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Uniform non-zero field element: a zero coefficient would silently drop a
/// packet from the combination.
fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Gf256 {
    Gf256(rng.gen_range(1..=255u8))
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::packet::SourceEncoder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(k: usize, len: usize, seed: u64) -> (SourceEncoder, ChaCha8Rng) {
        let natives: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8 + 1; len]).collect();
        (
            SourceEncoder::new(natives).unwrap(),
            ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn empty_buffer_emits_nothing() {
        let mut buf = ForwarderBuffer::new(4, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(buf.emit(&mut rng).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn innovative_packets_accumulate_rank() {
        let (enc, mut rng) = setup(4, 16, 1);
        let mut buf = ForwarderBuffer::new(4, 16);
        let mut stored = 0;
        for _ in 0..32 {
            if buf.receive(&enc.encode(&mut rng), &mut rng) {
                stored += 1;
            }
        }
        assert_eq!(stored, 4);
        assert_eq!(buf.rank(), 4);
        assert_eq!(buf.pool_len(), 4);
    }

    #[test]
    fn emitted_packets_are_combinations_of_received() {
        let (enc, mut rng) = setup(8, 64, 2);
        let mut buf = ForwarderBuffer::new(8, 64);
        for _ in 0..3 {
            buf.receive(&enc.encode(&mut rng), &mut rng);
        }
        // The emitted packet's payload must equal what its vector says it is:
        // re-encode the vector straight from the natives and compare.
        for _ in 0..5 {
            let p = buf.emit(&mut rng).unwrap();
            let reference = enc.encode_with(p.vector());
            assert_eq!(p.payload(), reference.payload(), "payload/vector mismatch");
        }
    }

    #[test]
    fn emission_rank_limited_by_received_rank() {
        let (enc, mut rng) = setup(6, 32, 3);
        let mut buf = ForwarderBuffer::new(6, 32);
        for _ in 0..2 {
            buf.receive(&enc.encode(&mut rng), &mut rng);
        }
        // A downstream tracker can never extract more than rank-2 info.
        let mut downstream = InnovationTracker::new(6);
        for _ in 0..64 {
            let p = buf.emit(&mut rng).unwrap();
            downstream.absorb(p.vector());
        }
        assert_eq!(downstream.rank(), 2);
    }

    #[test]
    fn precoded_packet_reflects_latest_arrival() {
        let (enc, mut rng) = setup(4, 16, 4);
        let mut buf = ForwarderBuffer::new(4, 16);
        buf.receive(&enc.encode(&mut rng), &mut rng);
        // Force a known precoded state, then deliver a second innovative
        // packet; the next emitted packet must span rank 2 w.h.p.
        buf.receive(&enc.encode(&mut rng), &mut rng);
        let p = buf.emit(&mut rng).unwrap();
        let mut t = InnovationTracker::new(4);
        t.absorb(p.vector());
        // Emit more; with non-zero coefficients over GF(256) two packets
        // nearly surely yield rank 2 within a few tries.
        let mut got2 = false;
        for _ in 0..8 {
            let q = buf.emit(&mut rng).unwrap();
            if t.absorb(q.vector()) {
                got2 = true;
                break;
            }
        }
        assert!(got2, "emissions failed to span the received rank");
    }

    #[test]
    fn flush_clears_everything() {
        let (enc, mut rng) = setup(4, 16, 5);
        let mut buf = ForwarderBuffer::new(4, 16);
        buf.receive(&enc.encode(&mut rng), &mut rng);
        buf.flush();
        assert!(buf.is_empty());
        assert_eq!(buf.rank(), 0);
        assert!(buf.emit(&mut rng).is_none());
    }

    #[test]
    fn non_innovative_discarded_without_pool_growth() {
        let (enc, mut rng) = setup(2, 8, 6);
        let mut buf = ForwarderBuffer::new(2, 8);
        let p = enc.encode(&mut rng);
        assert!(buf.receive(&p, &mut rng));
        assert!(!buf.receive(&p, &mut rng));
        assert_eq!(buf.pool_len(), 1);
    }

    #[test]
    fn stored_packets_share_the_arriving_buffer() {
        let (enc, mut rng) = setup(2, 8, 8);
        let mut buf = ForwarderBuffer::new(2, 8);
        let p = enc.encode(&mut rng);
        buf.receive(&p, &mut rng);
        // The caller's copy and the pooled copy are the same allocation:
        // releasing the caller's must NOT reclaim it for reuse.
        crate::pool::release(p.into_data());
        let q = buf.emit(&mut rng).unwrap();
        let reference = enc.encode_with(q.vector());
        assert_eq!(q.payload(), reference.payload());
    }

    #[test]
    #[should_panic(expected = "packet K != buffer K")]
    fn k_mismatch_panics() {
        let (enc, mut rng) = setup(4, 16, 7);
        let mut buf = ForwarderBuffer::new(5, 16);
        buf.receive(&enc.encode(&mut rng), &mut rng);
    }
}
