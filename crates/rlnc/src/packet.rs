//! Code vectors, flat coded packets, and the source-side encoder.

// xtask: allow(panic_path, file) -- header/payload splits index buffers acquired with exactly the k + payload length being split.

use crate::{pool, CodingError};
use bytes::Bytes;
use gf256::{slice_ops, Gf256};
use rand::Rng;

/// The vector of coefficients that derives a coded packet from the natives.
///
/// For `p' = Σ cᵢ pᵢ` the code vector is `(c₁, …, c_K)` (thesis Table 3.1).
/// Stored as raw bytes; each byte is a GF(2⁸) element.
///
/// Packets on the wire no longer carry a `CodeVector` — their coefficients
/// live in the flat `[coeffs | payload]` buffer of [`CodedPacket`] — but the
/// type remains the convenient owned representation for building vectors
/// (unit/random/arithmetic) and for rank bookkeeping in tests.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CodeVector(Vec<u8>);

impl CodeVector {
    /// A zero vector of length `k`.
    pub fn zero(k: usize) -> Self {
        CodeVector(vec![0; k])
    }

    /// The `i`-th unit vector of length `k` (the code vector of native `i`).
    pub fn unit(k: usize, i: usize) -> Self {
        assert!(i < k, "unit index out of range");
        let mut v = vec![0; k];
        v[i] = 1;
        CodeVector(v)
    }

    /// A uniformly random vector of length `k`.
    pub fn random<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let mut v = vec![0u8; k];
        rng.fill(&mut v[..]);
        CodeVector(v)
    }

    /// Builds a vector from raw coefficient bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        CodeVector(bytes)
    }

    /// Batch size K this vector addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector has length zero (a degenerate batch).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if every coefficient is zero (carries no information).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Coefficient `i`.
    #[inline]
    pub fn coeff(&self, i: usize) -> Gf256 {
        Gf256(self.0[i])
    }

    /// Index of the first non-zero coefficient, if any.
    pub fn leading_index(&self) -> Option<usize> {
        self.0.iter().position(|&b| b != 0)
    }

    /// Raw coefficient bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Mutable raw coefficient bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }

    /// `self += c * other`.
    pub fn mul_add_assign(&mut self, other: &CodeVector, c: Gf256) {
        slice_ops::mul_add_assign(&mut self.0, &other.0, c);
    }

    /// `self *= c`.
    pub fn mul_assign(&mut self, c: Gf256) {
        slice_ops::mul_assign(&mut self.0, c);
    }
}

impl AsRef<[u8]> for CodeVector {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for CodeVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CodeVector[")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b:02X}")?;
        }
        write!(f, "]")
    }
}

/// `dst += Σ cᵢ·srcᵢ` over an arbitrary term iterator, batched through
/// [`slice_ops::axpy_many`] in stack-resident chunks.
///
/// Unlike collecting terms into a `Vec` first, this takes the terms lazily
/// — callers whose coefficients come from an RNG stream draw them in
/// iterator order, exactly as a term-at-a-time loop would — and allocates
/// nothing. GF(2⁸) addition is XOR (exact, associative), so chunked
/// accumulation is byte-identical to a single fused pass.
pub fn axpy_chunked<'a, I>(dst: &mut [u8], terms: I)
where
    I: IntoIterator<Item = (Gf256, &'a [u8])>,
{
    const CHUNK: usize = 16;
    let mut buf: [(Gf256, &[u8]); CHUNK] = [(Gf256(0), &[]); CHUNK];
    let mut n = 0;
    for term in terms {
        buf[n] = term;
        n += 1;
        if n == CHUNK {
            slice_ops::axpy_many(dst, &buf);
            n = 0;
        }
    }
    if n > 0 {
        slice_ops::axpy_many(dst, &buf[..n]);
    }
}

/// A coded packet: one flat, immutable, refcounted buffer laid out as
/// `[c₁ … c_K | payload]`.
///
/// The single-buffer layout means building a packet costs one (pooled)
/// allocation, cloning it for every simulated receiver of a broadcast is a
/// refcount bump, and forwarder pre-coding folds a whole packet in with one
/// multiply-accumulate pass over the flat buffer. Buffers are drawn from
/// and returned to [`crate::pool`].
#[derive(Clone, Debug)]
pub struct CodedPacket {
    /// Batch size K — the split point between coefficients and payload.
    k: usize,
    /// The flat `[coeffs | payload]` buffer.
    data: Bytes,
}

impl CodedPacket {
    /// Assembles a packet by copying a code vector and payload into one
    /// fresh flat buffer.
    pub fn from_parts(vector: &[u8], payload: &[u8]) -> Self {
        let k = vector.len();
        // xtask: allow(pool_pairing) -- ownership transfer: the pooled buffer rides inside the returned CodedPacket and is recycled by its consumer via pool::release(packet.into_data())
        let mut buf = pool::acquire(k + payload.len());
        buf[..k].copy_from_slice(vector);
        buf[k..].copy_from_slice(payload);
        CodedPacket {
            k,
            data: buf.freeze(),
        }
    }

    /// Wraps an already-flat `[coeffs | payload]` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is shorter than `k` coefficients.
    pub fn from_flat(k: usize, data: Bytes) -> Self {
        assert!(data.len() >= k, "flat buffer shorter than its code vector");
        CodedPacket { k, data }
    }

    /// Batch size K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload size in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.data.len() - self.k
    }

    /// The code vector coefficients (first K bytes of the flat buffer).
    #[inline]
    pub fn vector(&self) -> &[u8] {
        &self.data[..self.k]
    }

    /// The coded payload, `Σ cᵢ pᵢ` byte-wise over GF(2⁸).
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.data[self.k..]
    }

    /// Coefficient `i` of the code vector.
    #[inline]
    pub fn coeff(&self, i: usize) -> Gf256 {
        Gf256(self.data[i])
    }

    /// True if every coefficient is zero (the packet carries nothing).
    pub fn vector_is_zero(&self) -> bool {
        self.vector().iter().all(|&b| b == 0)
    }

    /// The whole flat `[coeffs | payload]` buffer.
    #[inline]
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Consumes the packet, returning the flat buffer (e.g. to hand it back
    /// to the [`crate::pool`]).
    pub fn into_data(self) -> Bytes {
        self.data
    }
}

/// The source's encoder over one batch of K native packets (§3.1.1).
///
/// "When the 802.11 MAC is ready to send, the source creates a random linear
/// combination of the K native packets in the current batch and broadcasts
/// the coded packet."
#[derive(Clone, Debug)]
pub struct SourceEncoder {
    natives: Vec<Bytes>,
    payload_len: usize,
}

impl SourceEncoder {
    /// Builds an encoder over `natives`; all packets must share one length
    /// and the batch must be non-empty.
    pub fn new<B: Into<Bytes>>(natives: Vec<B>) -> Result<Self, CodingError> {
        let natives: Vec<Bytes> = natives.into_iter().map(Into::into).collect();
        let Some(first) = natives.first() else {
            return Err(CodingError::BadBatch("empty batch".into()));
        };
        let payload_len = first.len();
        if payload_len == 0 {
            return Err(CodingError::BadBatch("zero-length packets".into()));
        }
        if natives.iter().any(|p| p.len() != payload_len) {
            return Err(CodingError::BadBatch("unequal packet lengths".into()));
        }
        Ok(SourceEncoder {
            natives,
            payload_len,
        })
    }

    /// Batch size K.
    #[inline]
    pub fn k(&self) -> usize {
        self.natives.len()
    }

    /// Payload size in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// The native packets this encoder codes over.
    pub fn natives(&self) -> &[Bytes] {
        &self.natives
    }

    /// Emits one coded packet with fresh random coefficients.
    ///
    /// The random coefficients are drawn straight into the head of one
    /// pooled flat buffer and the payload combine writes its tail — the
    /// whole packet is a single allocation (amortized zero once the pool
    /// is warm). Cost is one batched [`axpy_chunked`] pass folding all K
    /// natives into the payload — the most expensive coding operation in
    /// the system (Table 4.1: "the coding cost is highest at the source
    /// because it has to code all K packets together").
    pub fn encode<R: Rng + ?Sized>(&self, rng: &mut R) -> CodedPacket {
        let k = self.k();
        // xtask: allow(pool_pairing) -- ownership transfer: the pooled buffer rides inside the returned CodedPacket and is recycled by its consumer via pool::release(packet.into_data())
        let mut buf = pool::acquire(k + self.payload_len);
        rng.fill(&mut buf[..k]);
        self.combine_into(&mut buf);
        CodedPacket {
            k,
            data: buf.freeze(),
        }
    }

    /// Emits the coded packet for a caller-chosen code vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the batch size K.
    pub fn encode_with(&self, vector: impl AsRef<[u8]>) -> CodedPacket {
        let vector = vector.as_ref();
        let k = self.k();
        assert_eq!(vector.len(), k, "vector length != K");
        // xtask: allow(pool_pairing) -- ownership transfer: the pooled buffer rides inside the returned CodedPacket and is recycled by its consumer via pool::release(packet.into_data())
        let mut buf = pool::acquire(k + self.payload_len);
        buf[..k].copy_from_slice(vector);
        self.combine_into(&mut buf);
        CodedPacket {
            k,
            data: buf.freeze(),
        }
    }

    /// Fills the payload tail of a flat buffer whose head already holds the
    /// code vector.
    fn combine_into(&self, buf: &mut [u8]) {
        let (vector, payload) = buf.split_at_mut(self.k());
        let vector = &*vector;
        axpy_chunked(
            payload,
            self.natives
                .iter()
                .enumerate()
                .map(|(i, native)| (Gf256(vector[i]), &native[..])),
        );
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_vectors() {
        let v = CodeVector::unit(4, 2);
        assert_eq!(v.as_bytes(), &[0, 0, 1, 0]);
        assert_eq!(v.leading_index(), Some(2));
        assert!(!v.is_zero());
    }

    #[test]
    fn zero_vector() {
        let v = CodeVector::zero(3);
        assert!(v.is_zero());
        assert_eq!(v.leading_index(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_out_of_range_panics() {
        let _ = CodeVector::unit(3, 3);
    }

    #[test]
    fn vector_axpy() {
        let mut a = CodeVector::from_bytes(vec![1, 2, 3]);
        let b = CodeVector::from_bytes(vec![4, 5, 6]);
        a.mul_add_assign(&b, Gf256(2));
        for i in 0..3 {
            let expect = Gf256([1, 2, 3][i]) + Gf256([4, 5, 6][i]) * Gf256(2);
            assert_eq!(a.coeff(i), expect);
        }
    }

    #[test]
    fn axpy_chunked_matches_axpy_many_across_chunk_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [0usize, 1, 15, 16, 17, 33] {
            let srcs: Vec<Vec<u8>> = (0..n)
                .map(|_| {
                    let mut s = vec![0u8; 24];
                    rng.fill(&mut s[..]);
                    s
                })
                .collect();
            let coeffs: Vec<Gf256> = (0..n).map(|_| Gf256(rng.gen_range(1..=255u8))).collect();
            let terms: Vec<(Gf256, &[u8])> = coeffs
                .iter()
                .zip(&srcs)
                .map(|(&c, s)| (c, &s[..]))
                .collect();
            let mut want = vec![0u8; 24];
            slice_ops::axpy_many(&mut want, &terms);
            let mut got = vec![0u8; 24];
            axpy_chunked(&mut got, terms.iter().copied());
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn flat_packet_slices_line_up() {
        let p = CodedPacket::from_parts(&[1, 2, 3], &[9, 8, 7, 6]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.payload_len(), 4);
        assert_eq!(p.vector(), &[1, 2, 3]);
        assert_eq!(p.payload(), &[9, 8, 7, 6]);
        assert_eq!(p.coeff(1), Gf256(2));
        assert!(!p.vector_is_zero());
        assert_eq!(&p.data()[..], &[1, 2, 3, 9, 8, 7, 6]);
        // Clone shares the flat buffer instead of copying it.
        let q = p.clone();
        assert_eq!(q.into_data(), p.into_data());
    }

    #[test]
    fn encoder_rejects_bad_batches() {
        assert!(matches!(
            SourceEncoder::new(Vec::<Vec<u8>>::new()),
            Err(CodingError::BadBatch(_))
        ));
        assert!(matches!(
            SourceEncoder::new(vec![vec![1u8, 2], vec![3u8]]),
            Err(CodingError::BadBatch(_))
        ));
        assert!(matches!(
            SourceEncoder::new(vec![Vec::<u8>::new()]),
            Err(CodingError::BadBatch(_))
        ));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i is both unit index and native index
    fn encode_with_unit_vector_reproduces_native() {
        let natives = vec![vec![1u8, 2, 3], vec![4u8, 5, 6]];
        let enc = SourceEncoder::new(natives.clone()).unwrap();
        for i in 0..2 {
            let p = enc.encode_with(CodeVector::unit(2, i));
            assert_eq!(p.payload(), &natives[i][..]);
        }
    }

    #[test]
    fn encode_is_linear_in_the_vector() {
        let natives = vec![vec![10u8; 32], vec![20u8; 32], vec![30u8; 32]];
        let enc = SourceEncoder::new(natives).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let va = CodeVector::random(3, &mut rng);
        let vb = CodeVector::random(3, &mut rng);
        let mut vsum = va.clone();
        vsum.mul_add_assign(&vb, Gf256::ONE);

        let pa = enc.encode_with(&va);
        let pb = enc.encode_with(&vb);
        let psum = enc.encode_with(&vsum);
        let xor: Vec<u8> = pa
            .payload()
            .iter()
            .zip(pb.payload().iter())
            .map(|(a, b)| a ^ b)
            .collect();
        assert_eq!(psum.payload(), &xor[..]);
    }

    #[test]
    fn random_encode_has_right_shape() {
        let enc = SourceEncoder::new(vec![vec![0xAAu8; 100]; 5]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = enc.encode(&mut rng);
        assert_eq!(p.k(), 5);
        assert_eq!(p.payload_len(), 100);
    }

    #[test]
    fn encode_draws_the_same_coefficients_as_code_vector_random() {
        // The flat path fills its coefficient head with the exact bytes
        // `CodeVector::random` would draw — the determinism contract that
        // keeps pre-rewrite golden runs byte-identical.
        let enc = SourceEncoder::new(vec![vec![5u8; 16]; 4]).unwrap();
        let p = enc.encode(&mut ChaCha8Rng::seed_from_u64(77));
        let v = CodeVector::random(4, &mut ChaCha8Rng::seed_from_u64(77));
        assert_eq!(p.vector(), v.as_bytes());
    }

    #[test]
    fn debug_format() {
        let v = CodeVector::from_bytes(vec![0xAB, 0x00]);
        assert_eq!(format!("{v:?}"), "CodeVector[AB 00]");
    }
}
