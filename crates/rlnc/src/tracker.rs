//! Algorithm 2: the row-echelon innovativeness check.
//!
//! "Each node keeps code vectors of the packets in its buffer in a row
//! echelon form. Specifically, they are stored in a triangular matrix M of K
//! rows with some of the rows missing, thus for each stored row, the
//! smallest index of a non-zero element is distinct." (§3.2.3b)
//!
//! The tracker operates on code vectors only — payloads are never touched —
//! which is why checking innovativeness "is fairly cheap" compared to coding
//! or decoding (Table 4.1). Vectors come in as plain byte slices (packets
//! store their coefficients in a flat buffer; see [`crate::CodedPacket`]),
//! and the stored rows are recycled through [`crate::pool`] so steady-state
//! rank tracking touches the allocator only while a batch is growing.

// xtask: allow(panic_path, file) -- row and pivot indices are bounded by k == rows.len(), pinned at construction exactly as in decoder.rs.

use crate::pool;
use gf256::{slice_ops, Gf256};

/// Incremental rank tracker over code vectors (Algorithm 2).
#[derive(Debug)]
pub struct InnovationTracker {
    /// `rows[i]` holds a vector whose leading non-zero index is `i`,
    /// normalized so that coefficient `i` equals 1.
    rows: Vec<Option<Vec<u8>>>,
    rank: usize,
}

impl InnovationTracker {
    /// An empty tracker for batch size `k`.
    pub fn new(k: usize) -> Self {
        InnovationTracker {
            rows: (0..k).map(|_| None).collect(),
            rank: 0,
        }
    }

    /// Batch size K.
    #[inline]
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Number of linearly independent vectors absorbed so far.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// True when rank has reached K (a full batch of information).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.rank == self.rows.len()
    }

    /// Would `v` be innovative? Non-destructive version of [`Self::absorb`].
    pub fn is_innovative(&self, v: impl AsRef<[u8]>) -> bool {
        let v = v.as_ref();
        assert_eq!(v.len(), self.k(), "vector length != K");
        let mut u = pool::acquire_vec(v.len());
        u.copy_from_slice(v);
        let innovative = self.reduce(&mut u).is_some();
        pool::release_vec(u);
        innovative
    }

    /// Algorithm 2: reduce `v` against the stored rows; if a pivot remains,
    /// store the reduced, normalized vector and report `true` (innovative).
    ///
    /// Returns `false` — "discard packet" — when `v` is a linear combination
    /// of what the node already holds.
    pub fn absorb(&mut self, v: impl AsRef<[u8]>) -> bool {
        let v = v.as_ref();
        assert_eq!(v.len(), self.k(), "vector length != K");
        let mut u = pool::acquire_vec(v.len());
        u.copy_from_slice(v);
        match self.reduce(&mut u) {
            Some(i) => {
                // Admit the modified vector into the empty slot,
                // normalized: M[i] ← u / u[i].
                let ui = Gf256(u[i]);
                slice_ops::mul_assign(&mut u, ui.inv());
                debug_assert_eq!(u[i], Gf256::ONE.0);
                self.rows[i] = Some(u);
                self.rank += 1;
                true
            }
            None => {
                pool::release_vec(u);
                false
            }
        }
    }

    /// Forward-reduces `u` in place against the stored rows; returns the
    /// pivot slot `u` would fill, or `None` when `u` is dependent.
    fn reduce(&self, u: &mut [u8]) -> Option<usize> {
        for i in 0..self.k() {
            let ui = Gf256(u[i]);
            if ui.is_zero() {
                continue;
            }
            match &self.rows[i] {
                // u ← u − M[i]·u[i]  (subtraction == addition in GF(2⁸))
                Some(row) => slice_ops::mul_add_assign(u, row, ui),
                None => return Some(i),
            }
        }
        None
    }

    /// The stored echelon row with pivot `i`, if present.
    pub fn row(&self, i: usize) -> Option<&[u8]> {
        self.rows[i].as_deref()
    }

    /// Clears all state (e.g. when a batch is flushed), returning the row
    /// storage to the buffer pool.
    pub fn reset(&mut self) {
        for r in &mut self.rows {
            if let Some(row) = r.take() {
                pool::release_vec(row);
            }
        }
        self.rank = 0;
    }
}

impl Clone for InnovationTracker {
    fn clone(&self) -> Self {
        InnovationTracker {
            rows: self.rows.clone(),
            rank: self.rank,
        }
    }
}

impl Drop for InnovationTracker {
    fn drop(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::packet::CodeVector;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn v(bytes: &[u8]) -> CodeVector {
        CodeVector::from_bytes(bytes.to_vec())
    }

    #[test]
    fn zero_vector_is_never_innovative() {
        let mut t = InnovationTracker::new(4);
        assert!(!t.is_innovative(v(&[0, 0, 0, 0])));
        assert!(!t.absorb(v(&[0, 0, 0, 0])));
        assert_eq!(t.rank(), 0);
    }

    #[test]
    fn unit_vectors_fill_the_tracker() {
        let mut t = InnovationTracker::new(3);
        for i in 0..3 {
            assert!(t.absorb(CodeVector::unit(3, i)));
        }
        assert!(t.is_full());
        assert_eq!(t.rank(), 3);
        // Anything further is dependent.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            assert!(!t.absorb(CodeVector::random(3, &mut rng)));
        }
    }

    #[test]
    fn duplicate_is_not_innovative() {
        let mut t = InnovationTracker::new(4);
        let a = v(&[1, 2, 3, 4]);
        assert!(t.absorb(&a));
        assert!(!t.is_innovative(&a));
        assert!(!t.absorb(&a));
        assert_eq!(t.rank(), 1);
    }

    #[test]
    fn scaled_copy_is_not_innovative() {
        let mut t = InnovationTracker::new(4);
        assert!(t.absorb(v(&[1, 2, 3, 4])));
        let mut scaled = v(&[1, 2, 3, 4]);
        scaled.mul_assign(gf256::Gf256(7));
        assert!(!t.absorb(&scaled));
    }

    #[test]
    fn combination_of_absorbed_is_not_innovative() {
        let mut t = InnovationTracker::new(4);
        let a = v(&[1, 2, 3, 4]);
        let b = v(&[5, 6, 7, 8]);
        assert!(t.absorb(&a));
        assert!(t.absorb(&b));
        let mut combo = a.clone();
        combo.mul_add_assign(&b, gf256::Gf256(0x41));
        assert!(!t.is_innovative(&combo));
        assert!(!t.absorb(&combo));
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn is_innovative_agrees_with_absorb_and_does_not_mutate() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut t = InnovationTracker::new(8);
        for _ in 0..40 {
            let u = CodeVector::random(8, &mut rng);
            let pre_rank = t.rank();
            let predicted = t.is_innovative(&u);
            let actual = t.absorb(&u);
            assert_eq!(predicted, actual);
            assert_eq!(t.rank(), pre_rank + usize::from(actual));
        }
        assert!(t.is_full(), "40 random vectors should fill K=8 w.h.p.");
    }

    #[test]
    fn pivots_are_normalized() {
        let mut t = InnovationTracker::new(3);
        t.absorb(v(&[9, 1, 2]));
        let row = t.row(0).unwrap();
        assert_eq!(row[0], Gf256::ONE.0);
    }

    #[test]
    fn reset_empties() {
        let mut t = InnovationTracker::new(2);
        t.absorb(v(&[1, 0]));
        t.absorb(v(&[0, 1]));
        assert!(t.is_full());
        t.reset();
        assert_eq!(t.rank(), 0);
        assert!(t.absorb(v(&[1, 0])));
    }

    #[test]
    fn rank_bounded_by_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut t = InnovationTracker::new(4);
        let mut innovative = 0;
        for _ in 0..100 {
            if t.absorb(CodeVector::random(4, &mut rng)) {
                innovative += 1;
            }
        }
        assert_eq!(innovative, 4);
        assert_eq!(t.rank(), 4);
    }

    #[test]
    fn absorb_accepts_raw_slices() {
        let mut t = InnovationTracker::new(3);
        assert!(t.absorb([1u8, 2, 3]));
        assert!(!t.is_innovative([1u8, 2, 3]));
        assert_eq!(t.row(0).unwrap().len(), 3);
    }
}
