//! Random linear network coding, as used by MORE (thesis §3.1–§3.2.3).
//!
//! A file is sent in *batches* of `K` *native* (uncoded) packets. Every data
//! packet on the air is a *coded* packet `p' = Σ cᵢ·pᵢ`, carrying its
//! *code vector* `c = (c₁ … c_K)` over GF(2⁸). A received packet is
//! *innovative* if its code vector is linearly independent of everything the
//! node already holds from the batch; non-innovative packets are discarded.
//!
//! This crate provides the four roles in that pipeline:
//!
//! * [`SourceEncoder`] — the source's "code all K natives together" path.
//! * [`InnovationTracker`] — Algorithm 2: the row-echelon independence check
//!   that touches only code vectors, never payload bytes.
//! * [`ForwarderBuffer`] — a forwarder's pool of innovative packets plus the
//!   *pre-coding* optimisation (§3.2.3c): one outgoing combination is kept
//!   ready and folded together with each innovative arrival, so transmission
//!   never waits on a K-packet combine.
//! * [`Decoder`] — the destination's incremental reduced-row-echelon decode;
//!   rank K triggers back-substitution and yields the native batch.
//!
//! Every coded packet is one flat, immutable `[coeffs | payload]` buffer
//! ([`CodedPacket`]): cloning a packet — e.g. for each receiver of a
//! simulated broadcast — is a refcount bump, and retired buffers recycle
//! through a thread-local [`pool`] instead of the allocator.
//!
//! ```
//! use more_rlnc::{SourceEncoder, Decoder};
//! use rand::SeedableRng;
//!
//! let natives: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 64]).collect();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let enc = SourceEncoder::new(natives.clone()).unwrap();
//! let mut dec = Decoder::new(8, 64);
//! while !dec.is_complete() {
//!     let p = enc.encode(&mut rng);
//!     dec.receive(&p);
//! }
//! assert_eq!(dec.take_natives().unwrap(), natives);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buffer;
pub mod decoder;
pub mod packet;
pub mod pool;
pub mod tracker;

pub use buffer::ForwarderBuffer;
pub use decoder::Decoder;
pub use packet::{axpy_chunked, CodeVector, CodedPacket, SourceEncoder};
pub use tracker::InnovationTracker;

/// Errors reported by coding components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// Batch construction was given no packets or packets of unequal length.
    BadBatch(String),
    /// A packet's code vector length does not match the batch size K.
    VectorLength {
        /// The batch size K the component was built for.
        expected: usize,
        /// The offending packet's code vector length.
        got: usize,
    },
    /// A packet's payload length does not match the batch payload size.
    PayloadLength {
        /// The payload size the component was built for.
        expected: usize,
        /// The offending packet's payload length.
        got: usize,
    },
    /// Decode requested before rank reached K.
    Incomplete {
        /// Rank accumulated so far.
        rank: usize,
        /// Batch size K required to decode.
        k: usize,
    },
}

impl core::fmt::Display for CodingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodingError::BadBatch(m) => write!(f, "bad batch: {m}"),
            CodingError::VectorLength { expected, got } => {
                write!(f, "code vector length {got}, expected {expected}")
            }
            CodingError::PayloadLength { expected, got } => {
                write!(f, "payload length {got}, expected {expected}")
            }
            CodingError::Incomplete { rank, k } => {
                write!(f, "cannot decode: rank {rank} < K = {k}")
            }
        }
    }
}

impl std::error::Error for CodingError {}
