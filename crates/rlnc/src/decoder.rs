//! The destination's incremental decoder (§3.1.3, §3.2.3b).
//!
//! The destination keeps received packets in *reduced* row-echelon form:
//! each arriving packet is forward-reduced against the stored rows (and the
//! same row operations are applied to its payload), then — if innovative —
//! its pivot column is back-eliminated from every earlier row. When rank
//! reaches K the coefficient matrix is the identity and the stored payloads
//! *are* the native packets; "once the destination receives the Kth
//! innovative packet, it decodes the whole batch".
//!
//! Keeping the matrix reduced as packets arrive is what bounds the work to
//! "2NS multiplications per packet" instead of a cubic batch-end
//! elimination.
//!
//! Payload arithmetic is batched: the row operations of one `receive` are
//! composed on the (cheap, K-byte) code-vector side first, then applied to
//! the payload as a single fused [`axpy_chunked`] pass. Dependent packets
//! are rejected from the vector reduction alone, without reading their
//! payload bytes at all. Row storage — working vectors and decoded
//! payloads alike — cycles through [`crate::pool`], so a steady-state
//! destination decodes without touching the allocator.

// xtask: allow(panic_path, file) -- Gaussian elimination is index arithmetic by
// nature: every row/vector index here is bounded by k == rows.len() ==
// vector.len(), pinned by Decoder::new and the receive() length asserts.

use crate::packet::{axpy_chunked, CodedPacket};
use crate::{pool, CodingError};
use gf256::{slice_ops, Gf256};

/// One stored row: a normalized code vector and its matching payload.
#[derive(Clone, Debug)]
struct Row {
    vector: Vec<u8>,
    payload: Vec<u8>,
}

/// Incremental reduced-row-echelon decoder for one batch.
#[derive(Clone, Debug)]
pub struct Decoder {
    k: usize,
    payload_len: usize,
    /// `rows[i]` has pivot at column `i` with coefficient 1.
    rows: Vec<Option<Row>>,
    rank: usize,
}

impl Decoder {
    /// An empty decoder for batch size `k`, payload size `payload_len`.
    pub fn new(k: usize, payload_len: usize) -> Self {
        Decoder {
            k,
            payload_len,
            rows: (0..k).map(|_| None).collect(),
            rank: 0,
        }
    }

    /// Batch size K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Payload size in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Rank accumulated so far.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// True once K innovative packets have been absorbed.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.rank == self.k
    }

    /// Non-destructively checks whether `p` would be innovative.
    pub fn is_innovative(&self, p: &CodedPacket) -> bool {
        let mut u = pool::acquire_vec(self.k);
        u.copy_from_slice(p.vector());
        let mut innovative = false;
        for i in 0..self.k {
            let ui = Gf256(u[i]);
            if ui.is_zero() {
                continue;
            }
            match &self.rows[i] {
                Some(row) => slice_ops::mul_add_assign(&mut u, &row.vector, ui),
                None => {
                    innovative = true;
                    break;
                }
            }
        }
        pool::release_vec(u);
        innovative
    }

    /// Absorbs a received packet; returns `true` iff it was innovative.
    ///
    /// # Panics
    ///
    /// Panics if the packet's K or payload length disagree with the decoder.
    pub fn receive(&mut self, p: &CodedPacket) -> bool {
        assert_eq!(p.k(), self.k, "packet K != decoder K");
        assert_eq!(
            p.payload_len(),
            self.payload_len,
            "packet payload length mismatch"
        );

        // Forward-eliminate the code vector alone first: a dependent packet
        // is detected — and discarded — without touching a single payload
        // byte.
        let orig = p.vector();
        let mut vec = pool::acquire_vec(self.k);
        vec.copy_from_slice(orig);
        let mut pivot = None;
        for i in 0..self.k {
            let ui = Gf256(vec[i]);
            if ui.is_zero() {
                continue;
            }
            match &self.rows[i] {
                Some(row) => {
                    // Stored rows are fully reduced (each stored pivot
                    // column is zero in every other row), so reducing here
                    // never changes a coefficient this loop later reads at
                    // a stored pivot column.
                    debug_assert_eq!(ui.0, orig[i], "stored rows not fully reduced");
                    slice_ops::mul_add_assign(&mut vec, &row.vector, ui);
                }
                None => {
                    pivot = Some(i);
                    break;
                }
            }
        }
        let Some(pivot) = pivot else {
            pool::release_vec(vec);
            return false; // dependent: discard
        };

        // Normalize the pivot to 1.
        let lead = Gf256(vec[pivot]);
        debug_assert!(!lead.is_zero());
        let inv = lead.inv();
        slice_ops::mul_assign(&mut vec, inv);
        debug_assert_eq!(vec[pivot], Gf256::ONE.0);

        // Forward-reduce the remainder of the new row against existing rows
        // so it is fully reduced too.
        for i in (pivot + 1)..self.k {
            let ci = Gf256(vec[i]);
            if ci.is_zero() {
                continue;
            }
            if let Some(row) = &self.rows[i] {
                debug_assert_eq!(ci, inv * Gf256(orig[i]), "stored rows not fully reduced");
                slice_ops::mul_add_assign(&mut vec, &row.vector, ci);
            }
        }

        // The payload gets the same row operations, composed into one
        // batched pass: reduce→normalize→reduce collapses to
        //     inv·payload  +  Σ_{i≠pivot}  inv·origᵢ · rows[i].payload
        // because every reduction coefficient above was read at a stored
        // pivot column, which the fully-reduced stored rows never alter
        // (the debug_asserts check exactly that).
        let mut payload = pool::acquire_vec(self.payload_len);
        slice_ops::mul_into(&mut payload, p.payload(), inv);
        let rows = &self.rows;
        axpy_chunked(
            &mut payload,
            (0..self.k).filter(|&i| i != pivot).filter_map(|i| {
                rows[i].as_ref().and_then(|row| {
                    let c = inv * Gf256(orig[i]);
                    (!c.is_zero()).then_some((c, &row.payload[..]))
                })
            }),
        );

        // Back-eliminate the new pivot column from every stored row.
        for i in 0..self.k {
            if i == pivot {
                continue;
            }
            if let Some(row) = &mut self.rows[i] {
                let c = Gf256(row.vector[pivot]);
                if !c.is_zero() {
                    slice_ops::mul_add_assign(&mut row.vector, &vec, c);
                    slice_ops::mul_add_assign(&mut row.payload, &payload, c);
                }
            }
        }

        self.rows[pivot] = Some(Row {
            vector: vec,
            payload,
        });
        self.rank += 1;
        true
    }

    /// Decoded native packet `i`, readable in place once the batch is
    /// complete (no per-packet copy, unlike [`Self::natives`]).
    pub fn native(&self, i: usize) -> Option<&[u8]> {
        if !self.is_complete() {
            return None;
        }
        self.rows[i].as_ref().map(|r| &r.payload[..])
    }

    /// Rank recomputed from storage rather than the counter — a complete
    /// decoder has every row populated, and reporting the stored count
    /// keeps [`Self::natives`]/[`Self::take_natives`] panic-free even if
    /// that invariant were ever broken.
    fn stored_rank(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Returns the decoded native packets, consuming nothing; errors if the
    /// batch is not yet complete.
    pub fn natives(&self) -> Result<Vec<Vec<u8>>, CodingError> {
        let stored = self.stored_rank();
        if !self.is_complete() || stored < self.k {
            return Err(CodingError::Incomplete {
                rank: self.rank.min(stored),
                k: self.k,
            });
        }
        Ok(self
            .rows
            .iter()
            .flatten()
            .map(|row| row.payload.clone())
            .collect())
    }

    /// Consumes the decoder, returning the native packets.
    pub fn take_natives(mut self) -> Result<Vec<Vec<u8>>, CodingError> {
        let stored = self.stored_rank();
        if !self.is_complete() || stored < self.k {
            return Err(CodingError::Incomplete {
                rank: self.rank.min(stored),
                k: self.k,
            });
        }
        let rows = std::mem::take(&mut self.rows);
        self.rank = 0;
        Ok(rows
            .into_iter()
            .flatten()
            .map(|row| {
                pool::release_vec(row.vector);
                row.payload
            })
            .collect())
    }

    /// Drops all state, returning row storage to the buffer pool.
    pub fn reset(&mut self) {
        for r in &mut self.rows {
            if let Some(row) = r.take() {
                pool::release_vec(row.vector);
                pool::release_vec(row.payload);
            }
        }
        self.rank = 0;
    }
}

impl Drop for Decoder {
    fn drop(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::packet::{CodeVector, SourceEncoder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn natives(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 31 + j * 7 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn decode_roundtrip_random_packets() {
        for k in [1usize, 2, 8, 32] {
            let data = natives(k, 40);
            let enc = SourceEncoder::new(data.clone()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(k as u64);
            let mut dec = Decoder::new(k, 40);
            let mut received = 0;
            while !dec.is_complete() {
                dec.receive(&enc.encode(&mut rng));
                received += 1;
                assert!(received < 10 * k + 16, "decoder not converging");
            }
            assert_eq!(dec.take_natives().unwrap(), data);
        }
    }

    #[test]
    fn decode_from_unit_vectors_is_identity() {
        let data = natives(4, 10);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut dec = Decoder::new(4, 10);
        for i in [2usize, 0, 3, 1] {
            assert!(dec.receive(&enc.encode_with(CodeVector::unit(4, i))));
        }
        assert_eq!(dec.natives().unwrap(), data);
        // In-place access agrees with the copying accessor.
        for (i, d) in data.iter().enumerate() {
            assert_eq!(dec.native(i).unwrap(), &d[..]);
        }
    }

    #[test]
    fn native_is_none_until_complete() {
        let data = natives(3, 8);
        let enc = SourceEncoder::new(data).unwrap();
        let mut dec = Decoder::new(3, 8);
        assert!(dec.native(0).is_none());
        dec.receive(&enc.encode_with(CodeVector::unit(3, 0)));
        assert!(dec.native(0).is_none(), "partial batch must not decode");
    }

    #[test]
    fn dependent_packets_are_rejected() {
        let data = natives(3, 12);
        let enc = SourceEncoder::new(data).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut dec = Decoder::new(3, 12);
        let p = enc.encode(&mut rng);
        assert!(dec.receive(&p));
        assert!(!dec.receive(&p));
        assert!(!dec.is_innovative(&p));
        assert_eq!(dec.rank(), 1);
    }

    #[test]
    fn incomplete_decode_errors() {
        let dec = Decoder::new(4, 8);
        assert!(matches!(
            dec.natives(),
            Err(CodingError::Incomplete { rank: 0, k: 4 })
        ));
    }

    #[test]
    fn decode_through_recoding_forwarder() {
        // src -> forwarder (recodes) -> dst must still decode correctly.
        use crate::buffer::ForwarderBuffer;
        let k = 16;
        let data = natives(k, 100);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut fwd = ForwarderBuffer::new(k, 100);
        let mut dec = Decoder::new(k, 100);
        // Forwarder hears only some source packets; destination hears only
        // forwarder output.
        while fwd.rank() < k {
            fwd.receive(&enc.encode(&mut rng), &mut rng);
        }
        let mut sent = 0;
        while !dec.is_complete() {
            let p = fwd.emit(&mut rng).unwrap();
            dec.receive(&p);
            sent += 1;
            assert!(sent < 20 * k, "relay decode not converging");
        }
        assert_eq!(dec.take_natives().unwrap(), data);
    }

    #[test]
    fn partial_rank_from_partial_info() {
        // If the destination only ever hears combinations of 2 natives, the
        // rank must cap at 2.
        let data = natives(5, 20);
        let enc = SourceEncoder::new(data).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut dec = Decoder::new(5, 20);
        for _ in 0..50 {
            // Random combination of natives 0 and 1 only.
            let mut v = CodeVector::zero(5);
            v.as_bytes_mut()[0] = rng.gen_range(1..=255);
            v.as_bytes_mut()[1] = rng.gen_range(1..=255);
            dec.receive(&enc.encode_with(&v));
        }
        assert_eq!(dec.rank(), 2);
        assert!(!dec.is_complete());
    }

    #[test]
    fn reset_restarts() {
        let data = natives(2, 4);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut dec = Decoder::new(2, 4);
        dec.receive(&enc.encode_with(CodeVector::unit(2, 0)));
        dec.reset();
        assert_eq!(dec.rank(), 0);
        dec.receive(&enc.encode_with(CodeVector::unit(2, 0)));
        dec.receive(&enc.encode_with(CodeVector::unit(2, 1)));
        assert_eq!(dec.take_natives().unwrap(), data);
    }

    use rand::Rng;
}
