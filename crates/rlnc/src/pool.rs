//! Thread-local buffer pool recycling coded-packet buffers across frames.
//!
//! Every coded packet on the simulated air is one flat `[coeffs | payload]`
//! allocation (see [`crate::CodedPacket`]). In steady state a simulator
//! produces and retires such a buffer for every transmission — thousands
//! per simulated second — and the pool turns that churn into reuse: the
//! engine hands buffers back when a frame leaves the air
//! (`mesh_sim::NodeAgent::recycle`), forwarders and decoders hand theirs
//! back on batch flush, and [`acquire`] serves the next packet from the
//! freelist instead of the allocator.
//!
//! ## Safety of reuse
//!
//! A buffer re-enters the pool only through [`release`], which calls
//! [`Bytes::try_into_mut`] — it succeeds **iff the caller holds the sole
//! reference**. A buffer some receiver still holds (a forwarder's pool, a
//! decoder row, an in-flight frame) fails that check and is simply
//! dropped from the releaser's side; the live holders keep an untouched,
//! immutable buffer. Recycling therefore can never alias live packet
//! data (property-tested in `tests/pool_props.rs`).
//!
//! ## Determinism
//!
//! Pool state affects *where* a buffer lives, never *what* the simulation
//! computes: [`acquire`] zero-fills to the requested length, so a recycled
//! buffer is byte-for-byte the buffer a fresh allocation would be, and no
//! code path branches on pool occupancy. Back-to-back runs on one thread
//! share the pool yet replay identically (asserted by the golden test
//! `tests/packet_path_equivalence.rs`).
//!
//! The pools are thread-local (`Rc`-style single-threaded reasoning, like
//! the rest of a simulator run); parallel sweeps get one pool per worker.

use bytes::{Bytes, BytesMut};
use std::cell::RefCell;

/// Freelist cap, per list, per thread. Two concurrent coded flows keep
/// well under a hundred buffers in flight; the cap only matters as a
/// bound on memory held by an idle thread.
const MAX_POOLED: usize = 256;

thread_local! {
    /// Flat packet buffers (`[coeffs | payload]`).
    static BUFFERS: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
    /// Plain byte rows (tracker/decoder matrix rows).
    static VECS: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A zeroed, uniquely owned buffer of exactly `len` bytes — recycled when
/// the freelist has one, freshly allocated otherwise.
pub fn acquire(len: usize) -> BytesMut {
    let recycled = BUFFERS.with(|p| p.borrow_mut().pop());
    match recycled {
        Some(mut m) => {
            m.clear();
            m.resize(len, 0);
            m
        }
        None => {
            let mut m = BytesMut::with_capacity(len);
            m.resize(len, 0);
            m
        }
    }
}

/// Offers a frozen buffer back to the pool. Reclaimed only when `b` is
/// the sole reference ([`Bytes::try_into_mut`]); otherwise the reference
/// is dropped and the live holders keep the buffer.
pub fn release(b: Bytes) {
    if let Ok(m) = b.try_into_mut() {
        release_mut(m);
    }
}

/// Returns a uniquely owned buffer to the pool.
pub fn release_mut(m: BytesMut) {
    // `try_with`: a thread tearing down its TLS just drops the buffer.
    let _ = BUFFERS.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED {
            p.push(m);
        }
    });
}

/// A zeroed `Vec<u8>` of exactly `len` bytes from the row freelist.
pub fn acquire_vec(len: usize) -> Vec<u8> {
    let recycled = VECS.with(|p| p.borrow_mut().pop());
    match recycled {
        Some(mut v) => {
            v.clear();
            v.resize(len, 0);
            v
        }
        None => vec![0; len],
    }
}

/// Returns a row buffer to the freelist.
pub fn release_vec(v: Vec<u8>) {
    let _ = VECS.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < MAX_POOLED {
            p.push(v);
        }
    });
}

/// Number of buffers currently idle in this thread's flat-buffer pool
/// (test/diagnostic aid).
pub fn idle_buffers() -> usize {
    BUFFERS.with(|p| p.borrow().len())
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn acquire_is_zeroed_even_after_dirty_release() {
        let mut m = acquire(8);
        m.as_mut().copy_from_slice(&[0xFF; 8]);
        release(m.freeze());
        let again = acquire(16);
        assert_eq!(&again[..], &[0u8; 16]);
    }

    #[test]
    fn shared_buffers_are_not_reclaimed() {
        // Drain the pool so the count below is exact.
        while idle_buffers() > 0 {
            let _ = BUFFERS.with(|p| p.borrow_mut().pop());
        }
        let b = acquire(4).freeze();
        let live = b.clone();
        release(b);
        assert_eq!(idle_buffers(), 0, "shared buffer entered the pool");
        assert_eq!(live.len(), 4);
        release(live);
        assert_eq!(idle_buffers(), 1, "sole reference must be reclaimed");
    }
}
