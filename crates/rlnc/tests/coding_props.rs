//! Property tests for the network-coding invariants MORE depends on.

use more_rlnc::{CodeVector, Decoder, ForwarderBuffer, InnovationTracker, SourceEncoder};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn batch(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|j| (i * 37 + j * 11 + 3) as u8).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode round-trips for arbitrary batch shapes and seeds.
    #[test]
    fn roundtrip(k in 1usize..24, len in 1usize..200, seed in any::<u64>()) {
        let data = batch(k, len);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dec = Decoder::new(k, len);
        let mut tries = 0;
        while !dec.is_complete() {
            dec.receive(&enc.encode(&mut rng));
            tries += 1;
            prop_assert!(tries < 8 * k + 32, "decoder not converging");
        }
        prop_assert_eq!(dec.take_natives().unwrap(), data);
    }

    /// The tracker's innovativeness decision equals a rank computation:
    /// absorbing N random vectors yields rank == #accepted, bounded by K.
    #[test]
    fn tracker_counts_rank(k in 1usize..16, n in 0usize..64, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = InnovationTracker::new(k);
        let mut accepted = 0;
        for _ in 0..n {
            let v = CodeVector::random(k, &mut rng);
            let pred = t.is_innovative(&v);
            let got = t.absorb(&v);
            prop_assert_eq!(pred, got);
            accepted += usize::from(got);
        }
        prop_assert_eq!(t.rank(), accepted);
        prop_assert!(t.rank() <= k);
    }

    /// Relaying through any chain of recoding forwarders preserves the data:
    /// information may degrade (rank caps) but never corrupts.
    #[test]
    fn relay_chain_preserves_data(
        k in 1usize..10,
        hops in 1usize..4,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let data = batch(k, len);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut buffers: Vec<ForwarderBuffer> =
            (0..hops).map(|_| ForwarderBuffer::new(k, len)).collect();
        let mut dec = Decoder::new(k, len);

        // Fill hop 0 from the source, each next hop from the previous,
        // destination from the last hop.
        while buffers[0].rank() < k {
            buffers[0].receive(&enc.encode(&mut rng), &mut rng);
        }
        for h in 1..hops {
            let mut guard = 0;
            while buffers[h].rank() < k {
                let (left, right) = buffers.split_at_mut(h);
                let p = left[h - 1].emit(&mut rng).unwrap();
                right[0].receive(&p, &mut rng);
                guard += 1;
                prop_assert!(guard < 64 * k + 64, "hop {h} not converging");
            }
        }
        let mut guard = 0;
        while !dec.is_complete() {
            let p = buffers[hops - 1].emit(&mut rng).unwrap();
            dec.receive(&p);
            guard += 1;
            prop_assert!(guard < 64 * k + 64, "destination not converging");
        }
        prop_assert_eq!(dec.take_natives().unwrap(), data);
    }

    /// A forwarder's emissions never exceed the information it received:
    /// downstream rank ≤ upstream rank.
    #[test]
    fn no_information_amplification(
        k in 2usize..12,
        upstream_rank in 1usize..6,
        seed in any::<u64>(),
    ) {
        let upstream_rank = upstream_rank.min(k);
        let data = batch(k, 32);
        let enc = SourceEncoder::new(data).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut fwd = ForwarderBuffer::new(k, 32);
        while fwd.rank() < upstream_rank {
            // Restrict the source to the first `upstream_rank` natives so the
            // forwarder can never see more than that much information.
            let mut v = CodeVector::zero(k);
            for i in 0..upstream_rank {
                v.as_bytes_mut()[i] = rand::Rng::gen(&mut rng);
            }
            if v.is_zero() { continue; }
            fwd.receive(&enc.encode_with(&v), &mut rng);
        }
        let mut down = InnovationTracker::new(k);
        for _ in 0..32 {
            if let Some(p) = fwd.emit(&mut rng) {
                down.absorb(p.vector());
            }
        }
        prop_assert!(down.rank() <= upstream_rank);
    }

    /// Emitted payloads always match their code vectors (consistency between
    /// header and data — what a malicious or buggy forwarder would violate).
    #[test]
    fn vector_payload_consistency(k in 1usize..12, seed in any::<u64>()) {
        let data = batch(k, 48);
        let enc = SourceEncoder::new(data).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut fwd = ForwarderBuffer::new(k, 48);
        for _ in 0..k {
            fwd.receive(&enc.encode(&mut rng), &mut rng);
        }
        for _ in 0..8 {
            let p = fwd.emit(&mut rng).unwrap();
            let reference = enc.encode_with(p.vector());
            prop_assert_eq!(p.payload(), reference.payload());
        }
    }
}
