//! Property tests for the zero-copy packet memory model: the flat
//! `[coeffs | payload]` packet layout and the thread-local buffer pool.

use gf256::Gf256;
use more_rlnc::{pool, CodeVector, Decoder, SourceEncoder};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn batch(k: usize, len: usize, salt: u8) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| (i * 37 + j * 11 + 3) as u8 ^ salt)
                .collect()
        })
        .collect()
}

/// The pre-rewrite nested encoder, re-derived from first principles: one
/// scalar GF(2⁸) multiply-accumulate per (native, byte), no slice kernels,
/// no flat layout. The flat pooled path must agree byte for byte.
fn reference_encode(natives: &[Vec<u8>], vector: &[u8]) -> Vec<u8> {
    let len = natives[0].len();
    let mut payload = vec![Gf256(0); len];
    for (i, native) in natives.iter().enumerate() {
        let c = Gf256(vector[i]);
        for (acc, &b) in payload.iter_mut().zip(native) {
            *acc += c * Gf256(b);
        }
    }
    payload.into_iter().map(|g| g.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat encoding reproduces the nested scalar reference for arbitrary
    /// (K, payload length, vector): same coefficients in the head, same
    /// combination in the tail.
    #[test]
    fn flat_encode_matches_nested_reference(
        k in 1usize..24,
        len in 1usize..96,
        salt in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let data = batch(k, len, salt);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v = CodeVector::random(k, &mut rng);
        let p = enc.encode_with(&v);
        prop_assert_eq!(p.k(), k);
        prop_assert_eq!(p.vector(), v.as_bytes());
        prop_assert_eq!(p.payload(), &reference_encode(&data, v.as_bytes())[..]);
        // The flat buffer really is the concatenation of the two views.
        prop_assert_eq!(&p.data()[..k], p.vector());
        prop_assert_eq!(&p.data()[k..], p.payload());
    }

    /// Flat packets decode back to the natives through the pooled decoder.
    #[test]
    fn flat_packets_decode(k in 1usize..16, len in 1usize..64, seed in any::<u64>()) {
        let data = batch(k, len, 0x5A);
        let enc = SourceEncoder::new(data.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dec = Decoder::new(k, len);
        let mut tries = 0;
        while !dec.is_complete() {
            dec.receive(&enc.encode(&mut rng));
            tries += 1;
            prop_assert!(tries < 8 * k + 32, "decoder not converging");
        }
        for (i, d) in data.iter().enumerate() {
            prop_assert_eq!(dec.native(i).unwrap(), &d[..]);
        }
        prop_assert_eq!(dec.take_natives().unwrap(), data);
    }

    /// Recycling never aliases live packets: releasing one reference to a
    /// shared buffer, then acquiring and scribbling over pool buffers, must
    /// leave every live clone byte-identical.
    #[test]
    fn recycled_buffers_never_alias_live_packets(
        k in 1usize..16,
        len in 1usize..64,
        seed in any::<u64>(),
        scribble in any::<u8>(),
    ) {
        let data = batch(k, len, 0xC3);
        let enc = SourceEncoder::new(data).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let live = enc.encode(&mut rng);
        let expected = live.data().to_vec();

        // A clone of the packet goes back to the pool while `live` is still
        // held; the pool must refuse to reclaim the shared buffer.
        pool::release(live.clone().into_data());

        // Churn the pool: acquire buffers of the same size and scribble on
        // them. If the pool had reclaimed the shared buffer, one of these
        // writes would tear through `live`.
        for _ in 0..4 {
            let mut buf = pool::acquire(expected.len());
            for b in buf.iter_mut() {
                *b = scribble;
            }
            pool::release(buf.freeze());
        }
        prop_assert_eq!(&live.data()[..], &expected[..]);

        // Once the last reference is gone the buffer may recycle — and the
        // next acquire must come back zeroed, not scribbled.
        pool::release(live.into_data());
        let clean = pool::acquire(expected.len());
        prop_assert!(clean.iter().all(|&b| b == 0), "recycled buffer not zeroed");
    }
}
