//! The MORE node agent: source / forwarder / destination control flow
//! (thesis §3.3.3, Fig 3-2) over the simulator's MAC callbacks.

// xtask: allow(panic_path, file) -- per-batch vectors are sized k_b when a batch opens and row indices are bounded by the tracker's rank checks; decoded-batch verification asserts a deterministic-testfile invariant.

use crate::flow::{BatchState, FlowId, FlowProgress, MoreFlow, NodeFlowState};
use crate::header::MorePayload;
use crate::{native_byte, ForwarderMetric, MoreConfig};
use mesh_metrics::etx::LinkCost;
use mesh_metrics::{EtxTable, ForwarderPlan};
use mesh_sim::queue::DropCause;
use mesh_sim::{Ctx, Frame, NodeAgent, OutFrame, TxOutcome};
use mesh_topology::{NodeId, Topology};
use rand::Rng;
use rlnc::{pool, CodedPacket, Decoder, ForwarderBuffer, InnovationTracker, SourceEncoder};
use std::collections::VecDeque;

/// Size of a batch-ACK frame on the air (type + ids + MAC framing).
const ACK_BYTES: usize = 30;

/// MORE for a whole mesh: one agent instance drives every node, keeping
/// strictly per-node state per flow (§3.3.2).
pub struct MoreAgent {
    cfg: MoreConfig,
    topo: Topology,
    flows: Vec<MoreFlow>,
    /// Per-node round-robin cursor over flows (§3.3.3: "the node selects a
    /// backlogged flow by round-robin").
    rr: Vec<usize>,
    /// Batch ACKs each node has handed to the MAC, oldest first, as
    /// `(flow index, batch)`. A FIFO rather than a slot because a
    /// bounded transmit queue may poll several frames before the first
    /// outcome arrives; outcomes come back in poll order.
    ack_outstanding: Vec<VecDeque<(usize, u32)>>,
}

impl MoreAgent {
    /// An agent with no flows yet.
    pub fn new(topo: Topology, cfg: MoreConfig) -> Self {
        let n = topo.n();
        MoreAgent {
            cfg,
            topo,
            flows: Vec::new(),
            rr: vec![0; n],
            ack_outstanding: vec![VecDeque::new(); n],
        }
    }

    /// Protocol parameters.
    pub fn config(&self) -> &MoreConfig {
        &self.cfg
    }

    /// Registers a `src → dst` transfer of `total_packets` native packets.
    ///
    /// Computes the ETX tables, the Algorithm-1 forwarder plan with
    /// pruning, and the reverse path for batch ACKs. Returns the flow's
    /// index for [`Self::progress`]. Callers must `kick(src)` on the
    /// simulator to start the source's MAC.
    pub fn add_flow(
        &mut self,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        total_packets: usize,
    ) -> usize {
        assert!(total_packets > 0, "empty transfer");
        let n = self.topo.n();
        // Forwarder ordering metric: ETX in the shipped protocol, EOTX
        // for the §5.7 variant.
        let metric: Vec<f64> = match self.cfg.metric {
            ForwarderMetric::Etx => EtxTable::compute(&self.topo, dst, LinkCost::Forward)
                .distances()
                .to_vec(),
            ForwarderMetric::Eotx => mesh_metrics::EotxTable::compute(&self.topo, dst)
                .distances()
                .to_vec(),
        };
        let plan = ForwarderPlan::compute(&self.topo, src, dst, &metric, &self.cfg.plan);
        let mut rank_of = vec![None; n];
        for (r, &node) in plan.order.iter().enumerate() {
            rank_of[node.0] = Some(r as u32);
        }
        // ACKs go to the source over its ETX shortest path (§3.2.2);
        // they are reliable unicasts, so the path metric accounts for the
        // MAC ACK's reverse trip.
        let to_src = EtxTable::compute(&self.topo, src, LinkCost::ForwardReverse);
        let ack_next_hop = (0..n).map(|i| to_src.next_hop(NodeId(i))).collect();
        let flow = MoreFlow {
            id,
            src,
            dst,
            total_packets,
            plan,
            rank_of,
            ack_next_hop,
            nodes: (0..n).map(|_| NodeFlowState::new()).collect(),
            src_batch: 0,
            encoder: None,
            progress: FlowProgress::default(),
            dst_completed: None,
            halted: false,
        };
        self.flows.push(flow);
        self.flows.len() - 1
    }

    /// Withdraws flow `index` mid-run: the source and every forwarder go
    /// silent on it, queued batch ACKs are dropped, and the flow counts as
    /// resolved. Measured progress stays readable.
    pub fn halt_flow(&mut self, index: usize) {
        let f = &mut self.flows[index];
        f.halted = true;
        for ns in &mut f.nodes {
            ns.pending_acks.clear();
        }
    }

    /// Progress of flow `index` (as returned by [`Self::add_flow`]).
    pub fn progress(&self, index: usize) -> &FlowProgress {
        &self.flows[index].progress
    }

    /// All flows done (every batch ACKed at its source)?
    pub fn all_done(&self) -> bool {
        self.flows.iter().all(|f| f.is_done(&self.cfg))
    }

    /// The flow list (read-only, for harness inspection).
    pub fn flows(&self) -> &[MoreFlow] {
        &self.flows
    }

    fn flow_index(&self, id: FlowId) -> Option<usize> {
        self.flows.iter().position(|f| f.id == id)
    }

    /// Makes sure the node's batch state matches its role and batch K.
    pub(crate) fn ensure_batch_state(
        cfg: &MoreConfig,
        ns: &mut NodeFlowState,
        is_dst: bool,
        k: usize,
    ) {
        let needs_init = matches!(ns.batch, BatchState::Empty);
        if !needs_init {
            return;
        }
        ns.batch = match (is_dst, cfg.track_payloads) {
            (true, true) => BatchState::DstDecoder(Decoder::new(k, cfg.packet_bytes)),
            (true, false) => BatchState::DstTracker(InnovationTracker::new(k)),
            (false, true) => BatchState::Coded(ForwarderBuffer::new(k, cfg.packet_bytes)),
            (false, false) => BatchState::Tracker(InnovationTracker::new(k)),
        };
    }

    /// Feeds a received coded packet into the node's batch state — a
    /// zero-copy hand-off: coded stores bump the refcount on the frame's
    /// flat buffer, tracker stores read the vector head in place. Returns
    /// `(innovative, rank_after)`.
    pub(crate) fn absorb(
        ns: &mut NodeFlowState,
        p: &CodedPacket,
        rng: &mut impl Rng,
    ) -> (bool, usize) {
        match &mut ns.batch {
            BatchState::Empty => unreachable!("batch state initialized before absorb"),
            BatchState::Tracker(t) | BatchState::DstTracker(t) => {
                let innov = t.absorb(p.vector());
                (innov, t.rank())
            }
            BatchState::Coded(b) => {
                let innov = b.receive(p, rng);
                (innov, b.rank())
            }
            BatchState::DstDecoder(d) => {
                let innov = d.receive(p);
                (innov, d.rank())
            }
        }
    }

    /// A forwarder's outgoing coded packet: random combination of what it
    /// holds (pre-coded when payloads are tracked).
    pub(crate) fn emit_from(
        ns: &mut NodeFlowState,
        k: usize,
        rng: &mut impl Rng,
    ) -> Option<CodedPacket> {
        match &mut ns.batch {
            BatchState::Empty => None,
            BatchState::Tracker(t) => {
                if t.rank() == 0 {
                    return None;
                }
                // One coefficient per stored row, drawn in row order (the
                // RNG stream is part of determinism), combined straight
                // into a pooled vector-only flat buffer.
                // xtask: allow(pool_pairing) -- ownership transfer: the buffer is frozen into the emitted CodedPacket and recycled downstream when the packet is consumed
                let mut buf = pool::acquire(k);
                rlnc::axpy_chunked(
                    &mut buf,
                    (0..k).filter_map(|i| t.row(i)).map(|row| {
                        let c = gf256::Gf256(rng.gen_range(1..=255u8));
                        (c, row)
                    }),
                );
                Some(CodedPacket::from_flat(k, buf.freeze()))
            }
            BatchState::Coded(b) => b.emit(rng),
            // The destination never forwards data.
            BatchState::DstTracker(_) | BatchState::DstDecoder(_) => None,
        }
    }

    /// Verifies a fully decoded batch against the deterministic test file
    /// in place — no reference batch is materialized.
    fn verify_decoded(d: &Decoder, flow: u32, batch: u32, k_b: usize) {
        for i in 0..k_b {
            let native = d.native(i).expect("rank K reached");
            let seed = native_byte(flow, batch, i);
            let ok = native
                .iter()
                .enumerate()
                .all(|(b, &byte)| byte == seed.wrapping_add((b % 251) as u8));
            assert!(
                ok,
                "decoded batch corrupt (flow {flow} batch {batch} native {i})"
            );
        }
    }
}

impl NodeAgent for MoreAgent {
    type Payload = MorePayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<MorePayload>, ctx: &mut Ctx<'_>) {
        match &frame.payload {
            MorePayload::Data {
                flow,
                batch,
                packet,
                sender_rank,
            } => {
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let cfg = self.cfg;
                let f = &mut self.flows[fi];
                // "When a node hears a packet, it checks whether it is in
                // the packet's forwarder list" (§3.1.2).
                let Some(rank) = f.rank_of[node.0] else {
                    return;
                };
                if f.is_done(&cfg) {
                    return;
                }
                let is_dst = node == f.dst;
                let is_src = node == f.src;
                let k_b = f.k_of(&cfg, *batch);
                let total_batches = f.n_batches(&cfg);
                let ns = &mut f.nodes[node.0];
                if *batch < ns.current_batch {
                    return; // stale batch (§3.3.3)
                }
                ns.flush_to(*batch);
                // Credit: "for each packet arrival from a node with higher
                // ETX, the forwarder increments the counter" (§3.3.2).
                if !is_src && !is_dst && *sender_rank > rank {
                    ns.credit += f.plan.tx_credit[node.0];
                }
                if is_src {
                    return; // the source only pumps; it stores nothing
                }
                Self::ensure_batch_state(&cfg, ns, is_dst, k_b);
                let (innovative, rank_after) = Self::absorb(ns, packet, ctx.rng());
                if is_dst {
                    if innovative && rank_after == k_b {
                        // Full batch: ACK before decoding (§3.2.2).
                        if let BatchState::DstDecoder(d) = &ns.batch {
                            Self::verify_decoded(d, *flow, *batch, k_b);
                        }
                        ns.pending_acks.push_back(*batch);
                        ns.flush_to(*batch + 1);
                        let p = &mut f.progress;
                        p.decoded_batches += 1;
                        p.delivered_packets += k_b;
                        f.dst_completed = Some(*batch);
                        if *batch + 1 == total_batches {
                            p.completed_at = Some(ctx.now());
                        }
                        ctx.mark_backlogged(node);
                    }
                } else if ns.credit > 0.0 && ns.batch.rank() > 0 {
                    // "The arrival of this new packet triggers the node to
                    // broadcast" — via the MAC, when it allows (§3.1.2).
                    ctx.mark_backlogged(node);
                }
            }
            MorePayload::Ack { flow, batch, .. } => {
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let cfg = self.cfg;
                let f = &mut self.flows[fi];
                if f.halted {
                    return; // a withdrawn flow relays nothing
                }
                // Overhearers purge the acked batch (§3.3.4).
                if f.rank_of[node.0].is_some() {
                    f.nodes[node.0].flush_to(*batch + 1);
                }
                if frame.dst != Some(node) {
                    return;
                }
                if node == f.src {
                    // Source advances to the next batch (§3.2.2).
                    if *batch >= f.src_batch {
                        f.src_batch = *batch + 1;
                        f.encoder = None;
                        f.progress.acked_batches = f.src_batch;
                        if f.is_done(&cfg) {
                            f.progress.done = true;
                        } else {
                            ctx.mark_backlogged(node);
                        }
                    }
                } else {
                    // Relay the ACK toward the source, prioritized.
                    f.nodes[node.0].pending_acks.push_back(*batch);
                    ctx.mark_backlogged(node);
                }
            }
        }
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        match outcome {
            TxOutcome::Broadcast => {}
            TxOutcome::Acked { .. } => {
                // The oldest outstanding ACK made it; it was already
                // removed from pending_acks at poll time.
                self.ack_outstanding[node.0].pop_front();
            }
            TxOutcome::Failed { .. } => {
                // Batch ACKs are delivered reliably: re-queue at the front
                // and try again (§3.2.2 "reliably delivered using local
                // retransmission at each hop").
                if let Some((fi, batch)) = self.ack_outstanding[node.0].pop_front() {
                    if !self.flows[fi].halted {
                        self.flows[fi].nodes[node.0].pending_acks.push_front(batch);
                    }
                }
                ctx.mark_backlogged(node);
            }
        }
    }

    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<MorePayload>> {
        // 1. Batch ACKs first: "ACKs are given priority over data packets
        //    at every node" (§3.1.3).
        for fi in 0..self.flows.len() {
            let f = &self.flows[fi];
            let ns = &f.nodes[node.0];
            if let Some(&batch) = ns.pending_acks.front() {
                if node == f.src {
                    // Shouldn't happen; drop defensively.
                    self.flows[fi].nodes[node.0].pending_acks.pop_front();
                    continue;
                }
                let Some(nh) = f.ack_next_hop[node.0] else {
                    self.flows[fi].nodes[node.0].pending_acks.pop_front();
                    continue;
                };
                let (id, origin) = (f.id, f.dst);
                // Popped now (not on MAC ack): once handed to the MAC the
                // frame's fate comes back via on_tx_done/on_queue_drop,
                // both of which consult ack_outstanding.
                self.flows[fi].nodes[node.0].pending_acks.pop_front();
                self.ack_outstanding[node.0].push_back((fi, batch));
                return Some(OutFrame {
                    dst: Some(nh),
                    bytes: ACK_BYTES,
                    bitrate: None,
                    flow: Some(id),
                    payload: MorePayload::Ack {
                        flow: id,
                        batch,
                        origin,
                    },
                });
            }
        }

        // 2. Data, round-robin across flows (§3.3.3).
        let nf = self.flows.len();
        if nf == 0 {
            return None;
        }
        let cfg = self.cfg;
        let start = self.rr[node.0] % nf;
        for step in 0..nf {
            let fi = (start + step) % nf;
            let f = &mut self.flows[fi];
            if f.is_done(&cfg) {
                continue;
            }
            let Some(rank) = f.rank_of[node.0] else {
                continue;
            };
            if node == f.src {
                let batch = f.src_batch;
                let k_b = f.k_of(&cfg, batch);
                let packet = if cfg.track_payloads {
                    if f.encoder.is_none() {
                        let natives = crate::batch_natives(f.id, batch, k_b, cfg.packet_bytes);
                        f.encoder = Some(SourceEncoder::new(natives).expect("valid batch"));
                    }
                    f.encoder.as_ref().expect("just built").encode(ctx.rng())
                } else {
                    // Vector-only packet: random coefficients drawn into a
                    // pooled flat buffer with an empty payload region.
                    let mut buf = pool::acquire(k_b);
                    ctx.rng().fill(&mut buf[..]);
                    CodedPacket::from_flat(k_b, buf.freeze())
                };
                if f.dst_completed.is_some_and(|c| c >= batch) {
                    f.progress.spurious_tx += 1;
                }
                self.rr[node.0] = fi + 1;
                return Some(OutFrame {
                    dst: None,
                    bytes: cfg.header_bytes + k_b + cfg.packet_bytes,
                    bitrate: None,
                    flow: Some(f.id),
                    payload: MorePayload::Data {
                        flow: f.id,
                        batch,
                        packet,
                        sender_rank: rank,
                    },
                });
            }
            if node == f.dst {
                continue;
            }
            // Forwarder: positive credit and something to say (§3.2.1).
            let batch = f.nodes[node.0].current_batch;
            if batch >= f.n_batches(&cfg) {
                continue;
            }
            let k_b = f.k_of(&cfg, batch);
            if f.nodes[node.0].credit <= 0.0 {
                continue;
            }
            let Some(packet) = Self::emit_from(&mut f.nodes[node.0], k_b, ctx.rng()) else {
                continue;
            };
            f.nodes[node.0].credit -= 1.0;
            if f.dst_completed.is_some_and(|c| c >= batch) {
                f.progress.spurious_tx += 1;
            }
            self.rr[node.0] = fi + 1;
            return Some(OutFrame {
                dst: None,
                bytes: cfg.header_bytes + k_b + cfg.packet_bytes,
                bitrate: None,
                flow: Some(f.id),
                payload: MorePayload::Data {
                    flow: f.id,
                    batch,
                    packet,
                    sender_rank: rank,
                },
            });
        }
        None
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: MorePayload,
        _cause: DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        match payload {
            // A dropped batch ACK must not be lost: retract the
            // outstanding entry and put the batch back at the head of the
            // pending queue (§3.2.2 reliable delivery).
            MorePayload::Ack { flow, batch, .. } => {
                if let Some(fi) = self.flow_index(flow) {
                    let out = &mut self.ack_outstanding[node.0];
                    if let Some(pos) = out.iter().rposition(|&(i, b)| i == fi && b == batch) {
                        out.remove(pos);
                    }
                    if !self.flows[fi].halted {
                        self.flows[fi].nodes[node.0].pending_acks.push_front(batch);
                        ctx.mark_backlogged(node);
                    }
                }
            }
            // A dropped coded packet is just an unheard broadcast; return
            // its flat buffer to the pool.
            MorePayload::Data { packet, .. } => pool::release(packet.into_data()),
        }
    }

    fn recycle(&mut self, payload: MorePayload) {
        // The simulator hands back the last reference to a delivered
        // frame's payload; returning the flat buffer to the pool closes
        // the zero-copy loop (next encode reuses it).
        if let MorePayload::Data { packet, .. } = payload {
            pool::release(packet.into_data());
        }
    }
}

impl mesh_sim::FlowAgent for MoreAgent {
    fn flows_done(&self) -> bool {
        self.all_done()
    }

    fn flow_progress(&self, index: usize) -> mesh_sim::FlowProgressView {
        let p = self.progress(index);
        mesh_sim::FlowProgressView {
            delivered: p.delivered_packets,
            completed_at: p.completed_at,
            done: p.done,
        }
    }

    fn supports_dynamic_flows(&self) -> bool {
        true
    }

    fn add_flow(&mut self, desc: &mesh_sim::FlowDesc) -> usize {
        assert_eq!(
            desc.dsts.len(),
            1,
            "unicast MORE cannot accept a multicast arrival"
        );
        let id = self.flows.iter().map(|f| f.id).max().unwrap_or(0) + 1;
        MoreAgent::add_flow(self, id, desc.src, desc.dsts[0], desc.packets)
    }

    fn end_flow(&mut self, index: usize) {
        self.halt_flow(index);
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_sim::{SimConfig, Simulator, SEC};
    use mesh_topology::generate;

    fn run_flow(
        topo: Topology,
        cfg: MoreConfig,
        src: usize,
        dst: usize,
        packets: usize,
        seed: u64,
    ) -> (Simulator<MoreAgent>, usize) {
        let mut agent = MoreAgent::new(topo.clone(), cfg);
        let fi = agent.add_flow(1, NodeId(src), NodeId(dst), packets);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
        sim.kick(NodeId(src));
        sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
        (sim, fi)
    }

    #[test]
    fn one_hop_transfer_completes() {
        let topo = generate::line(1, 0.8, 0.0, 20.0);
        let (sim, fi) = run_flow(topo, MoreConfig::default(), 0, 1, 64, 1);
        let p = sim.agent.progress(fi);
        assert!(p.done, "flow did not finish");
        assert_eq!(p.delivered_packets, 64);
        assert_eq!(p.decoded_batches, 2);
    }

    #[test]
    fn relay_chain_transfer_completes() {
        let topo = generate::line(3, 0.7, 0.3, 25.0);
        let (sim, fi) = run_flow(topo, MoreConfig::default(), 0, 3, 32, 2);
        let p = sim.agent.progress(fi);
        assert!(p.done);
        assert_eq!(p.delivered_packets, 32);
    }

    #[test]
    fn payload_tracking_decodes_correctly() {
        // track_payloads=true makes the destination assert decoded bytes
        // match the generated file — the assert inside on_receive.
        let topo = generate::line(2, 0.75, 0.2, 25.0);
        let cfg = MoreConfig {
            k: 8,
            packet_bytes: 256,
            track_payloads: true,
            ..MoreConfig::default()
        };
        let (sim, fi) = run_flow(topo, cfg, 0, 2, 24, 3);
        assert!(sim.agent.progress(fi).done);
        assert_eq!(sim.agent.progress(fi).delivered_packets, 24);
    }

    #[test]
    fn short_final_batch() {
        let topo = generate::line(1, 0.9, 0.0, 20.0);
        let cfg = MoreConfig {
            k: 32,
            ..MoreConfig::default()
        };
        let (sim, fi) = run_flow(topo, cfg, 0, 1, 40, 4); // 32 + 8
        let p = sim.agent.progress(fi);
        assert!(p.done);
        assert_eq!(p.delivered_packets, 40);
        assert_eq!(p.decoded_batches, 2);
    }

    #[test]
    fn testbed_transfer_and_stopping_rule() {
        let topo = generate::testbed(1);
        let (mut sim, fi) = run_flow(topo, MoreConfig::default(), 0, 19, 64, 5);
        let p = *sim.agent.progress(fi);
        assert!(p.done, "testbed flow stuck");
        assert_eq!(p.delivered_packets, 64);
        // Stopping rule: after completion, (almost) no more data frames.
        let tx_before = sim.stats.total_tx();
        let t = sim.now();
        sim.run_until(t + 2 * SEC, |_| false);
        let extra = sim.stats.total_tx() - tx_before;
        assert!(
            extra <= 2,
            "{extra} transmissions after the flow finished — stopping rule broken"
        );
    }

    #[test]
    fn spurious_transmissions_are_bounded() {
        let topo = generate::testbed(2);
        let (sim, fi) = run_flow(topo, MoreConfig::default(), 3, 16, 96, 6);
        let p = sim.agent.progress(fi);
        assert!(p.done);
        // A few spurious sends happen between batch completion and the ACK
        // reaching everyone; they must stay a small fraction of the total.
        let total = sim.stats.total_tx();
        assert!(
            (p.spurious_tx as f64) < 0.25 * total as f64,
            "spurious {} of {total}",
            p.spurious_tx
        );
    }

    #[test]
    fn multiflow_roundrobin_completes_both() {
        let topo = generate::testbed(3);
        let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
        let f1 = agent.add_flow(1, NodeId(0), NodeId(19), 32);
        let f2 = agent.add_flow(2, NodeId(5), NodeId(12), 32);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, 7);
        sim.kick(NodeId(0));
        sim.kick(NodeId(5));
        sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
        assert!(sim.agent.progress(f1).done, "flow 1 stuck");
        assert!(sim.agent.progress(f2).done, "flow 2 stuck");
        assert_eq!(sim.agent.progress(f1).delivered_packets, 32);
        assert_eq!(sim.agent.progress(f2).delivered_packets, 32);
    }

    #[test]
    fn pruning_limits_participants() {
        let topo = generate::testbed(4);
        let agent = {
            let mut a = MoreAgent::new(topo.clone(), MoreConfig::default());
            a.add_flow(1, NodeId(0), NodeId(19), 32);
            a
        };
        let f = &agent.flows()[0];
        assert!(
            f.plan.forwarders().len() <= 10,
            "forwarder cap exceeded: {}",
            f.plan.forwarders().len()
        );
    }
}
