//! Per-flow, per-node protocol state (thesis §3.3.2).

use crate::MoreConfig;
use mesh_metrics::ForwarderPlan;
use mesh_sim::Time;
use mesh_topology::NodeId;
use rlnc::{Decoder, ForwarderBuffer, InnovationTracker};
use std::collections::VecDeque;

/// Flow identifier (the header's flow id).
pub type FlowId = u32;

/// What a harness reads to measure a flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowProgress {
    /// Native packets delivered (decoded) at the destination.
    pub delivered_packets: usize,
    /// Batches fully decoded at the destination.
    pub decoded_batches: u32,
    /// Batches whose ACK reached the source.
    pub acked_batches: u32,
    /// Simulated time when the last packet was decoded.
    pub completed_at: Option<Time>,
    /// The source has received the final batch ACK.
    pub done: bool,
    /// Data transmissions made for batches the destination had already
    /// fully received (the Fig 4-7 "spurious transmissions").
    pub spurious_tx: u64,
}

/// The coding state a node keeps for the *current* batch of a flow.
///
/// Which variant a node holds depends on its role and on whether the run
/// carries real payload bytes (§"track_payloads" in [`MoreConfig`]).
#[derive(Debug)]
pub enum BatchState {
    /// Nothing buffered yet.
    Empty,
    /// Forwarder, vectors only: rank bookkeeping via Algorithm 2.
    Tracker(InnovationTracker),
    /// Forwarder with payload bytes: pool + pre-coding.
    Coded(ForwarderBuffer),
    /// Destination, vectors only.
    DstTracker(InnovationTracker),
    /// Destination with payload bytes: incremental decoder.
    DstDecoder(Decoder),
}

impl BatchState {
    /// Rank of the information held.
    pub fn rank(&self) -> usize {
        match self {
            BatchState::Empty => 0,
            BatchState::Tracker(t) | BatchState::DstTracker(t) => t.rank(),
            BatchState::Coded(b) => b.rank(),
            BatchState::DstDecoder(d) => d.rank(),
        }
    }
}

/// Per-node state for one flow (§3.3.2: batch buffer, current batch,
/// forwarder list + credits arrive in headers — here shared via the plan —
/// and the credit counter).
#[derive(Debug)]
pub struct NodeFlowState {
    /// "The current batch variable identifies the most recent batch."
    pub current_batch: u32,
    /// The credit counter (§3.2.1).
    pub credit: f64,
    /// Coding state for `current_batch`.
    pub batch: BatchState,
    /// Batch ACKs queued for forwarding toward the source (ACKs are
    /// "given priority over data packets at every node", §3.1.3).
    pub pending_acks: VecDeque<u32>,
}

impl NodeFlowState {
    pub fn new() -> Self {
        NodeFlowState {
            current_batch: 0,
            credit: 0.0,
            batch: BatchState::Empty,
            pending_acks: VecDeque::new(),
        }
    }

    /// Flush on batch advance or overheard ACK (§3.2.2, §3.3.4).
    pub fn flush_to(&mut self, batch: u32) {
        if batch > self.current_batch {
            self.current_batch = batch;
            self.batch = BatchState::Empty;
            self.credit = 0.0;
        }
    }
}

impl Default for NodeFlowState {
    fn default() -> Self {
        Self::new()
    }
}

/// A unicast `src → dst` file transfer.
#[derive(Debug)]
pub struct MoreFlow {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Total native packets in the file.
    pub total_packets: usize,
    /// Forwarder plan (Algorithm 1 + pruning) under the ETX metric.
    pub plan: ForwarderPlan,
    /// `rank_of[node]` — position in the ascending-metric order (0 = dst),
    /// `None` for non-participants.
    pub rank_of: Vec<Option<u32>>,
    /// Next hop toward the source for batch ACKs (ETX shortest path).
    pub ack_next_hop: Vec<Option<NodeId>>,
    /// Per-node protocol state.
    pub nodes: Vec<NodeFlowState>,
    /// The batch the source currently pumps.
    pub src_batch: u32,
    /// Source-side encoder for the current batch (payload-tracking runs).
    pub encoder: Option<rlnc::SourceEncoder>,
    /// Measurements.
    pub progress: FlowProgress,
    /// Batch the destination has fully received (for spurious-tx stats).
    pub dst_completed: Option<u32>,
    /// The flow was withdrawn mid-run by the workload (dynamic traffic
    /// departure): sources and forwarders go silent, and the flow counts
    /// as resolved for the stop condition.
    pub halted: bool,
}

impl MoreFlow {
    /// Number of batches for this flow under config `cfg`.
    pub fn n_batches(&self, cfg: &MoreConfig) -> u32 {
        self.total_packets.div_ceil(cfg.k) as u32
    }

    /// Batch size of batch `b` (the last batch may be short).
    pub fn k_of(&self, cfg: &MoreConfig, b: u32) -> usize {
        let nb = self.n_batches(cfg);
        debug_assert!(b < nb);
        if b + 1 < nb || self.total_packets.is_multiple_of(cfg.k) {
            cfg.k
        } else {
            self.total_packets % cfg.k
        }
    }

    /// True once every batch has been ACKed to the source (or the flow
    /// was withdrawn by a dynamic workload).
    pub fn is_done(&self, cfg: &MoreConfig) -> bool {
        self.halted || self.src_batch >= self.n_batches(cfg)
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn node_state_flush_semantics() {
        let mut s = NodeFlowState::new();
        s.credit = 2.5;
        s.batch = BatchState::Tracker(InnovationTracker::new(4));
        s.flush_to(0); // not newer: no-op
        assert_eq!(s.credit, 2.5);
        s.flush_to(3);
        assert_eq!(s.current_batch, 3);
        assert_eq!(s.credit, 0.0);
        assert!(matches!(s.batch, BatchState::Empty));
    }

    #[test]
    fn batch_state_rank() {
        assert_eq!(BatchState::Empty.rank(), 0);
        let mut t = InnovationTracker::new(3);
        t.absorb(rlnc::CodeVector::unit(3, 1));
        assert_eq!(BatchState::Tracker(t).rank(), 1);
    }
}
