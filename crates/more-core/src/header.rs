//! The MORE packet format (Fig 3-1) and its wire codec.
//!
//! In the simulator frames carry [`MorePayload`] values directly; the
//! byte-level codec exists so the header layout of Fig 3-1 is real, its
//! size can be measured against the paper's ≤ 70 B bound (§4.6c), and a
//! future packet-radio port has a wire format to start from.
//!
//! Layout (grey = required, white = optional, per Fig 3-1):
//!
//! ```text
//! type(1) src_ip(4) dst_ip(4) flow(4) batch(4)            — required
//! [data] k(2) code_vector(K) nf(1) {fwd_id(1) credit(2)}* — optional
//! ```
//!
//! Forwarder node ids are compressed to one byte (a hash of the IP in the
//! real system, §4.6c) and TX credits to 1/256-granularity fixed point.

use mesh_topology::NodeId;
use rlnc::CodedPacket;

/// Packet type discriminator (Fig 3-1: "the packet type identifies batch
/// ACKs from data packets").
pub const TYPE_DATA: u8 = 1;
/// See [`TYPE_DATA`].
pub const TYPE_ACK: u8 = 2;

/// What a MORE frame carries.
#[derive(Clone, Debug)]
pub enum MorePayload {
    /// A coded data packet.
    Data {
        flow: u32,
        batch: u32,
        /// The coded packet: code vector and payload in one flat,
        /// refcounted buffer, so cloning the frame for each simulated
        /// receiver of a broadcast is O(1). The payload region is empty
        /// when payload tracking is off.
        packet: CodedPacket,
        /// Position of the sender in the flow's forwarder order (smaller =
        /// closer to the destination); receivers use it to decide whether
        /// the packet came "from upstream" for crediting.
        sender_rank: u32,
    },
    /// A batch ACK travelling back to the source. `origin` is the
    /// destination that generated it (multicast flows have several).
    Ack {
        flow: u32,
        batch: u32,
        origin: NodeId,
    },
}

impl MorePayload {
    /// The flow this frame belongs to.
    pub fn flow(&self) -> u32 {
        match self {
            MorePayload::Data { flow, .. } | MorePayload::Ack { flow, .. } => *flow,
        }
    }

    /// The batch this frame refers to.
    pub fn batch(&self) -> u32 {
        match self {
            MorePayload::Data { batch, .. } | MorePayload::Ack { batch, .. } => *batch,
        }
    }
}

/// The Fig 3-1 header in encodable form.
#[derive(Clone, Debug, PartialEq)]
pub struct Header {
    pub packet_type: u8,
    pub src: NodeId,
    pub dst: NodeId,
    pub flow: u32,
    pub batch: u32,
    /// Code vector — data packets only.
    pub code_vector: Option<Vec<u8>>,
    /// `(forwarder, tx_credit)` pairs, credit in 1/256 fixed point,
    /// ordered by proximity to the destination.
    pub forwarders: Vec<(u8, u16)>,
}

impl Header {
    /// Serializes to the Fig 3-1 layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(self.packet_type);
        out.extend_from_slice(&(self.src.0 as u32).to_be_bytes());
        out.extend_from_slice(&(self.dst.0 as u32).to_be_bytes());
        out.extend_from_slice(&self.flow.to_be_bytes());
        out.extend_from_slice(&self.batch.to_be_bytes());
        match &self.code_vector {
            Some(v) => {
                out.extend_from_slice(&(v.len() as u16).to_be_bytes());
                out.extend_from_slice(v);
            }
            None => out.extend_from_slice(&0u16.to_be_bytes()),
        }
        out.push(self.forwarders.len() as u8);
        for &(id, credit) in &self.forwarders {
            out.push(id);
            out.extend_from_slice(&credit.to_be_bytes());
        }
        out
    }

    /// Size of [`Self::encode`]'s output.
    pub fn encoded_len(&self) -> usize {
        1 + 4
            + 4
            + 4
            + 4
            + 2
            + self.code_vector.as_ref().map_or(0, |v| v.len())
            + 1
            + 3 * self.forwarders.len()
    }

    /// Parses a header encoded by [`Self::encode`].
    pub fn decode(buf: &[u8]) -> Option<Header> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let packet_type = *take(&mut at, 1)?.first()?;
        let src = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let dst = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let flow = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?);
        let batch = u32::from_be_bytes(take(&mut at, 4)?.try_into().ok()?);
        let veclen = u16::from_be_bytes(take(&mut at, 2)?.try_into().ok()?) as usize;
        let code_vector = if veclen > 0 {
            Some(take(&mut at, veclen)?.to_vec())
        } else {
            None
        };
        let nf = *take(&mut at, 1)?.first()? as usize;
        let mut forwarders = Vec::with_capacity(nf);
        for _ in 0..nf {
            let id = *take(&mut at, 1)?.first()?;
            let credit = u16::from_be_bytes(take(&mut at, 2)?.try_into().ok()?);
            forwarders.push((id, credit));
        }
        if at != buf.len() {
            return None;
        }
        Some(Header {
            packet_type,
            src: NodeId(src),
            dst: NodeId(dst),
            flow,
            batch,
            code_vector,
            forwarders,
        })
    }
}

/// Encodes a TX credit as 1/256 fixed point, saturating.
pub fn credit_to_wire(c: f64) -> u16 {
    (c * 256.0).round().clamp(0.0, u16::MAX as f64) as u16
}

/// Decodes a wire credit.
pub fn credit_from_wire(w: u16) -> f64 {
    w as f64 / 256.0
}

#[cfg(test)]
mod test {
    use super::*;

    fn sample(k: usize, nf: usize) -> Header {
        Header {
            packet_type: TYPE_DATA,
            src: NodeId(3),
            dst: NodeId(17),
            flow: 9,
            batch: 2,
            code_vector: Some((0..k).map(|i| i as u8).collect()),
            forwarders: (0..nf).map(|i| (i as u8, (i * 300) as u16)).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        for (k, nf) in [(32usize, 10usize), (8, 0), (128, 4)] {
            let h = sample(k, nf);
            let bytes = h.encode();
            assert_eq!(bytes.len(), h.encoded_len());
            assert_eq!(Header::decode(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn ack_header_is_small() {
        let h = Header {
            packet_type: TYPE_ACK,
            src: NodeId(0),
            dst: NodeId(1),
            flow: 1,
            batch: 7,
            code_vector: None,
            forwarders: Vec::new(),
        };
        assert!(h.encoded_len() <= 20, "ACK header {} B", h.encoded_len());
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn header_overhead_matches_paper_bound() {
        // §4.6c: with ≤10 forwarders (code vector counted as payload,
        // since the paper's 70 B bound covers the header fields) the
        // non-vector header is well under 70 B...
        let h = Header {
            packet_type: TYPE_DATA,
            src: NodeId(1),
            dst: NodeId(2),
            flow: 0,
            batch: 0,
            code_vector: None,
            forwarders: (0..10).map(|i| (i as u8, 256)).collect(),
        };
        assert!(h.encoded_len() <= 70, "header {} B", h.encoded_len());
        // ...and for 1500 B packets total overhead (header + K=32 vector)
        // stays below 7%, consistent with "less than 5%" for the paper's
        // tighter bit-packing.
        let with_vec = sample(32, 10);
        let overhead = with_vec.encoded_len() as f64 / 1500.0;
        assert!(overhead < 0.07, "overhead {overhead}");
    }

    #[test]
    fn truncated_buffers_rejected() {
        let h = sample(16, 3);
        let bytes = h.encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(Header::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage rejected too.
        let mut extended = bytes.clone();
        extended.push(0xFF);
        assert!(Header::decode(&extended).is_none());
    }

    #[test]
    fn credit_fixed_point() {
        for c in [0.0, 0.5, 1.0, 3.25, 100.0] {
            let w = credit_to_wire(c);
            assert!((credit_from_wire(w) - c).abs() < 1.0 / 256.0 + 1e-9);
        }
    }

    #[test]
    fn payload_accessors() {
        let p = MorePayload::Ack {
            flow: 4,
            batch: 9,
            origin: NodeId(3),
        };
        assert_eq!(p.flow(), 4);
        assert_eq!(p.batch(), 9);
    }
}
