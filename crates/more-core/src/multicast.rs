//! Multicast MORE — the extension the paper's introduction motivates.
//!
//! The thesis singles out multicast as the traffic type ExOR's
//! structured scheduler "makes the protocol hard to extend to" (§1),
//! while MORE's randomness extends naturally: the source keeps pumping
//! coded packets from the current batch until *every* destination has
//! ACKed it, forwarders serve the union of the per-destination forwarder
//! sets, and a node's credit for an overheard packet is the *maximum* of
//! its per-destination TX credits (one transmission can serve all
//! downstream destinations at once — the coded packet is useful to each
//! of them).
//!
//! Batch ACKs work exactly as in unicast — each destination unicasts its
//! ACK back to the source over its ETX shortest path — and a forwarder
//! purges a batch once it has overheard ACKs from all destinations.

// xtask: allow(panic_path, file) -- per-destination credit/rank vectors are sized to the flow's destination set at setup and every destination index is drawn from that same set; the expect()s fire only on state the match arms directly above just created.

use crate::flow::NodeFlowState;
use crate::header::MorePayload;
use crate::{batch_natives, MoreConfig};
use mesh_metrics::etx::LinkCost;
use mesh_metrics::{EtxTable, ForwarderPlan};
use mesh_sim::queue::DropCause;
use mesh_sim::{Ctx, Frame, NodeAgent, OutFrame, Time, TxOutcome};
use mesh_topology::{NodeId, Topology};
use rand::Rng;
use rlnc::{pool, CodedPacket, SourceEncoder};
use std::collections::VecDeque;

/// Size of a batch-ACK frame on the air.
const ACK_BYTES: usize = 30;

/// Progress of a multicast transfer.
#[derive(Clone, Debug, Default)]
pub struct MulticastProgress {
    /// Per-destination delivered packet counts.
    pub delivered: Vec<usize>,
    /// Per-destination completion time.
    pub completed_at: Vec<Option<Time>>,
    /// Batches ACKed by every destination.
    pub acked_batches: u32,
    /// All batches ACKed by all destinations.
    pub done: bool,
}

struct PerDst {
    dst: NodeId,
    /// Rank (position in this destination's order) per node.
    rank_of: Vec<Option<u32>>,
    /// This destination's decoder-side state per batch.
    node_state: NodeFlowState,
    /// Which batches this destination has ACKed (monotone frontier).
    acked_through: i64,
}

/// One multicast flow.
struct McFlow {
    id: u32,
    src: NodeId,
    total_packets: usize,
    dsts: Vec<PerDst>,
    /// Per-node forwarding state (buffer + credit), shared across
    /// destinations — one coded broadcast serves them all.
    nodes: Vec<NodeFlowState>,
    /// Max-over-destinations TX credit per node.
    credit_of: Vec<f64>,
    /// Union participant set.
    participates: Vec<bool>,
    /// ACK next hops toward the source.
    ack_next_hop: Vec<Option<NodeId>>,
    /// Batch the source currently pumps (min over dst frontiers + 1).
    src_batch: u32,
    encoder: Option<SourceEncoder>,
    /// Per-node view of which destinations acked the node's current batch
    /// (bitmask; purge when full).
    acked_mask: Vec<u64>,
    /// Origin of each queued relay ACK, parallel to
    /// `nodes[n].pending_acks`.
    ack_origin: Vec<std::collections::VecDeque<NodeId>>,
    progress: MulticastProgress,
    /// Withdrawn mid-run by a dynamic workload: everyone goes silent.
    halted: bool,
}

impl McFlow {
    fn n_batches(&self, cfg: &MoreConfig) -> u32 {
        self.total_packets.div_ceil(cfg.k) as u32
    }

    fn k_of(&self, cfg: &MoreConfig, b: u32) -> usize {
        let nb = self.n_batches(cfg);
        if b + 1 < nb || self.total_packets.is_multiple_of(cfg.k) {
            cfg.k
        } else {
            self.total_packets % cfg.k
        }
    }

    fn full_mask(&self) -> u64 {
        (1u64 << self.dsts.len()) - 1
    }

    fn is_done(&self, cfg: &MoreConfig) -> bool {
        self.halted || self.src_batch >= self.n_batches(cfg)
    }
}

/// Batch ACKs a node has handed to its MAC, oldest first:
/// `(flow index, dst index or usize::MAX for a relayed ACK, batch,
/// origin)`. A FIFO rather than a slot because a bounded transmit queue
/// may poll several frames before the first outcome arrives.
type AckOutstanding = VecDeque<(usize, usize, u32, NodeId)>;

/// Multicast MORE agent: one flow `src → {dst₁, …}` per `add_flow`.
pub struct MulticastMoreAgent {
    cfg: MoreConfig,
    topo: Topology,
    flows: Vec<McFlow>,
    ack_outstanding: Vec<AckOutstanding>,
}

impl MulticastMoreAgent {
    pub fn new(topo: Topology, cfg: MoreConfig) -> Self {
        let n = topo.n();
        MulticastMoreAgent {
            cfg,
            topo,
            flows: Vec::new(),
            ack_outstanding: vec![VecDeque::new(); n],
        }
    }

    /// Puts an ACK the MAC could not deliver (or the queue dropped) back
    /// at the head of the queue it was polled from.
    fn requeue_ack(&mut self, node: NodeId, fi: usize, di: usize, batch: u32, origin: NodeId) {
        let f = &mut self.flows[fi];
        if f.halted {
            return;
        }
        if di == usize::MAX {
            f.nodes[node.0].pending_acks.push_front(batch);
            f.ack_origin[node.0].push_front(origin);
        } else {
            f.dsts[di].node_state.pending_acks.push_front(batch);
        }
    }

    /// Registers a multicast transfer. Kick `src` on the simulator.
    pub fn add_flow(
        &mut self,
        id: u32,
        src: NodeId,
        dsts: Vec<NodeId>,
        total_packets: usize,
    ) -> usize {
        assert!(!dsts.is_empty() && dsts.len() <= 64, "1..=64 destinations");
        assert!(total_packets > 0, "empty transfer");
        let n = self.topo.n();
        let mut per_dst = Vec::new();
        let mut credit_of = vec![0.0f64; n];
        let mut participates = vec![false; n];
        for &dst in &dsts {
            let etx = EtxTable::compute(&self.topo, dst, LinkCost::Forward);
            let plan =
                ForwarderPlan::compute(&self.topo, src, dst, etx.distances(), &self.cfg.plan);
            let mut rank_of = vec![None; n];
            for (r, &node) in plan.order.iter().enumerate() {
                rank_of[node.0] = Some(r as u32);
                participates[node.0] = true;
                // Credit: max over destinations (§multicast — one coded
                // transmission serves every downstream destination).
                credit_of[node.0] = credit_of[node.0].max(plan.tx_credit[node.0]);
            }
            per_dst.push(PerDst {
                dst,
                rank_of,
                node_state: NodeFlowState::new(),
                acked_through: -1,
            });
        }
        let to_src = EtxTable::compute(&self.topo, src, LinkCost::ForwardReverse);
        let ack_next_hop = (0..n).map(|i| to_src.next_hop(NodeId(i))).collect();
        self.flows.push(McFlow {
            id,
            src,
            total_packets,
            progress: MulticastProgress {
                delivered: vec![0; dsts.len()],
                completed_at: vec![None; dsts.len()],
                ..Default::default()
            },
            dsts: per_dst,
            nodes: (0..n).map(|_| NodeFlowState::new()).collect(),
            credit_of,
            participates,
            ack_next_hop,
            src_batch: 0,
            encoder: None,
            acked_mask: vec![0; n],
            ack_origin: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            halted: false,
        });
        self.flows.len() - 1
    }

    /// Withdraws flow `index` mid-run: forwarding and ACK relaying stop,
    /// and the flow counts as resolved for the stop condition.
    pub fn halt_flow(&mut self, index: usize) {
        let f = &mut self.flows[index];
        f.halted = true;
        for ns in &mut f.nodes {
            ns.pending_acks.clear();
        }
        for d in &mut f.dsts {
            d.node_state.pending_acks.clear();
        }
        for q in &mut f.ack_origin {
            q.clear();
        }
    }

    pub fn progress(&self, index: usize) -> &MulticastProgress {
        &self.flows[index].progress
    }

    pub fn all_done(&self) -> bool {
        self.flows.iter().all(|f| f.progress.done || f.halted)
    }

    /// Source frontier: the earliest batch not yet ACKed by everyone.
    fn advance_src(&mut self, fi: usize, ctx: &mut Ctx<'_>) {
        let cfg = self.cfg;
        let f = &mut self.flows[fi];
        let frontier = f
            .dsts
            .iter()
            .map(|d| d.acked_through)
            .min()
            .expect("at least one destination");
        let next = (frontier + 1) as u32;
        if next > f.src_batch {
            f.src_batch = next;
            f.encoder = None;
            f.progress.acked_batches = next;
            if f.is_done(&cfg) {
                f.progress.done = true;
            } else {
                ctx.mark_backlogged(f.src);
            }
        }
    }
}

impl NodeAgent for MulticastMoreAgent {
    type Payload = MorePayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<MorePayload>, ctx: &mut Ctx<'_>) {
        let cfg = self.cfg;
        match &frame.payload {
            MorePayload::Data {
                flow,
                batch,
                packet,
                sender_rank: _,
            } => {
                let Some(fi) = self.flows.iter().position(|f| f.id == *flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                if f.is_done(&cfg) || !f.participates[node.0] {
                    return;
                }
                if node == f.src {
                    return;
                }
                let k_b = f.k_of(&cfg, *batch);
                let total_batches = f.n_batches(&cfg);
                let from = frame.from;

                // Destination role(s): feed this destination's own state.
                for (di, d) in f.dsts.iter_mut().enumerate() {
                    if d.dst != node {
                        continue;
                    }
                    let ns = &mut d.node_state;
                    if *batch < ns.current_batch {
                        continue;
                    }
                    ns.flush_to(*batch);
                    crate::agent::MoreAgent::ensure_batch_state(&cfg, ns, true, k_b);
                    let (innovative, rank_after) =
                        crate::agent::MoreAgent::absorb(ns, packet, ctx.rng());
                    if innovative && rank_after == k_b {
                        ns.pending_acks.push_back(*batch);
                        ns.flush_to(*batch + 1);
                        f.progress.delivered[di] += k_b;
                        if *batch + 1 == total_batches {
                            f.progress.completed_at[di] = Some(ctx.now());
                        }
                        ctx.mark_backlogged(node);
                    }
                }

                // Forwarder role: shared buffer + max-credit.
                let is_any_dst = f.dsts.iter().any(|d| d.dst == node);
                if !is_any_dst {
                    // Credit if the sender is upstream for ANY destination
                    // this node forwards toward.
                    let upstream_for_some =
                        f.dsts
                            .iter()
                            .any(|d| match (d.rank_of[node.0], d.rank_of[from.0]) {
                                (Some(mine), Some(theirs)) => theirs > mine,
                                _ => false,
                            });
                    let ns = &mut f.nodes[node.0];
                    if *batch < ns.current_batch {
                        return;
                    }
                    if *batch > ns.current_batch {
                        ns.flush_to(*batch);
                        f.acked_mask[node.0] = 0;
                    }
                    if upstream_for_some {
                        ns.credit += f.credit_of[node.0];
                    }
                    crate::agent::MoreAgent::ensure_batch_state(&cfg, ns, false, k_b);
                    let _ = crate::agent::MoreAgent::absorb(ns, packet, ctx.rng());
                    if ns.credit > 0.0 && ns.batch.rank() > 0 {
                        ctx.mark_backlogged(node);
                    }
                }
            }
            MorePayload::Ack {
                flow,
                batch,
                origin,
            } => {
                let Some(fi) = self.flows.iter().position(|f| f.id == *flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                if f.halted {
                    return; // a withdrawn flow relays nothing
                }
                let Some(oi) = f.dsts.iter().position(|d| d.dst == *origin) else {
                    return; // not one of our destinations
                };
                if frame.dst == Some(node) {
                    if node == f.src {
                        let d = &mut f.dsts[oi];
                        d.acked_through = d.acked_through.max(*batch as i64);
                        self.advance_src(fi, ctx);
                    } else {
                        // Relay, preserving the origin.
                        f.nodes[node.0].pending_acks.push_back(*batch);
                        f.ack_origin[node.0].push_back(*origin);
                        ctx.mark_backlogged(node);
                    }
                } else if f.participates[node.0] {
                    // Overhearing an ACK purges the batch once every
                    // destination has acked it (§3.3.4 generalized).
                    let full = f.full_mask();
                    if *batch == f.nodes[node.0].current_batch {
                        f.acked_mask[node.0] |= 1 << oi;
                        if f.acked_mask[node.0] == full {
                            f.nodes[node.0].flush_to(*batch + 1);
                            f.acked_mask[node.0] = 0;
                        }
                    }
                }
            }
        }
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        match outcome {
            TxOutcome::Broadcast => {}
            TxOutcome::Acked { .. } => {
                // The oldest outstanding ACK made it; it was already
                // removed from its pending queue at poll time.
                if self.ack_outstanding[node.0].pop_front().is_some() {
                    ctx.mark_backlogged(node);
                }
            }
            TxOutcome::Failed { .. } => {
                if let Some((fi, di, batch, origin)) = self.ack_outstanding[node.0].pop_front() {
                    self.requeue_ack(node, fi, di, batch, origin);
                }
                ctx.mark_backlogged(node);
            }
        }
    }

    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<MorePayload>> {
        let cfg = self.cfg;
        for fi in 0..self.flows.len() {
            // 1. ACKs first (destination-originated, then relayed). Each
            //    is popped from its pending queue as it is handed to the
            //    MAC; on_tx_done / on_queue_drop consult ack_outstanding.
            {
                let f = &self.flows[fi];
                let id = f.id;
                let mut picked = None;
                for (di, d) in f.dsts.iter().enumerate() {
                    if d.dst == node {
                        if let (Some(&batch), Some(nh)) =
                            (d.node_state.pending_acks.front(), f.ack_next_hop[node.0])
                        {
                            picked = Some((di, batch, nh));
                            break;
                        }
                    }
                }
                if let Some((di, batch, nh)) = picked {
                    self.flows[fi].dsts[di].node_state.pending_acks.pop_front();
                    self.ack_outstanding[node.0].push_back((fi, di, batch, node));
                    return Some(OutFrame {
                        dst: Some(nh),
                        bytes: ACK_BYTES,
                        bitrate: None,
                        flow: Some(id),
                        payload: MorePayload::Ack {
                            flow: id,
                            batch,
                            origin: node,
                        },
                    });
                }
                let f = &self.flows[fi];
                if let (Some(&batch), Some(nh)) =
                    (f.nodes[node.0].pending_acks.front(), f.ack_next_hop[node.0])
                {
                    let origin = *f.ack_origin[node.0]
                        .front()
                        .expect("origin tracked per queued ack");
                    self.flows[fi].nodes[node.0].pending_acks.pop_front();
                    self.flows[fi].ack_origin[node.0].pop_front();
                    self.ack_outstanding[node.0].push_back((fi, usize::MAX, batch, origin));
                    return Some(OutFrame {
                        dst: Some(nh),
                        bytes: ACK_BYTES,
                        bitrate: None,
                        flow: Some(id),
                        payload: MorePayload::Ack {
                            flow: id,
                            batch,
                            origin,
                        },
                    });
                }
            }
            // 2. Source data.
            let f = &mut self.flows[fi];
            if f.is_done(&cfg) {
                continue;
            }
            if node == f.src {
                let batch = f.src_batch;
                let k_b = f.k_of(&cfg, batch);
                let packet = if cfg.track_payloads {
                    if f.encoder.is_none() {
                        f.encoder = Some(
                            SourceEncoder::new(batch_natives(f.id, batch, k_b, cfg.packet_bytes))
                                .expect("valid batch"),
                        );
                    }
                    f.encoder.as_ref().expect("built").encode(ctx.rng())
                } else {
                    let mut buf = pool::acquire(k_b);
                    ctx.rng().fill(&mut buf[..]);
                    CodedPacket::from_flat(k_b, buf.freeze())
                };
                return Some(OutFrame {
                    dst: None,
                    bytes: cfg.header_bytes + k_b + cfg.packet_bytes,
                    bitrate: None,
                    flow: Some(f.id),
                    payload: MorePayload::Data {
                        flow: f.id,
                        batch,
                        packet,
                        sender_rank: u32::MAX, // source is upstream of all
                    },
                });
            }
            // 3. Forwarder data.
            let is_dst = f.dsts.iter().any(|d| d.dst == node);
            if is_dst || !f.participates[node.0] {
                continue;
            }
            let batch = f.nodes[node.0].current_batch;
            if batch >= f.n_batches(&cfg) || f.nodes[node.0].credit <= 0.0 {
                continue;
            }
            let k_b = f.k_of(&cfg, batch);
            let Some(packet) =
                crate::agent::MoreAgent::emit_from(&mut f.nodes[node.0], k_b, ctx.rng())
            else {
                continue;
            };
            f.nodes[node.0].credit -= 1.0;
            return Some(OutFrame {
                dst: None,
                bytes: cfg.header_bytes + k_b + cfg.packet_bytes,
                bitrate: None,
                flow: Some(f.id),
                payload: MorePayload::Data {
                    flow: f.id,
                    batch,
                    packet,
                    sender_rank: 1, // forwarders sit between src and dsts
                },
            });
        }
        None
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: MorePayload,
        _cause: DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        match payload {
            // ACKs are delivered reliably: retract the outstanding entry
            // and put the batch back where it was polled from.
            MorePayload::Ack {
                flow,
                batch,
                origin,
            } => {
                let removed = {
                    let flows = &self.flows;
                    let out = &mut self.ack_outstanding[node.0];
                    out.iter()
                        .rposition(|&(fi, _, b, o)| {
                            flows.get(fi).is_some_and(|f| f.id == flow) && b == batch && o == origin
                        })
                        .and_then(|pos| out.remove(pos))
                };
                if let Some((fi, di, b, o)) = removed {
                    self.requeue_ack(node, fi, di, b, o);
                    ctx.mark_backlogged(node);
                }
            }
            // A dropped coded packet is just an unheard broadcast.
            MorePayload::Data { packet, .. } => pool::release(packet.into_data()),
        }
    }

    fn recycle(&mut self, payload: MorePayload) {
        if let MorePayload::Data { packet, .. } = payload {
            pool::release(packet.into_data());
        }
    }
}

impl mesh_sim::FlowAgent for MulticastMoreAgent {
    fn flows_done(&self) -> bool {
        self.all_done()
    }

    /// Multicast progress collapsed to the common view: `delivered` sums
    /// over destinations; `completed_at` is when the *last* destination
    /// finished (per-destination detail stays on
    /// [`MulticastMoreAgent::progress`]).
    fn flow_progress(&self, index: usize) -> mesh_sim::FlowProgressView {
        let p = self.progress(index);
        let completed_at = if p.completed_at.iter().all(|t| t.is_some()) {
            p.completed_at.iter().filter_map(|t| *t).max()
        } else {
            None
        };
        mesh_sim::FlowProgressView {
            delivered: p.delivered.iter().sum(),
            completed_at,
            done: p.done,
        }
    }

    fn supports_dynamic_flows(&self) -> bool {
        true
    }

    fn add_flow(&mut self, desc: &mesh_sim::FlowDesc) -> usize {
        let id = self.flows.iter().map(|f| f.id).max().unwrap_or(0) + 1;
        MulticastMoreAgent::add_flow(self, id, desc.src, desc.dsts.clone(), desc.packets)
    }

    fn end_flow(&mut self, index: usize) {
        self.halt_flow(index);
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_sim::{SimConfig, Simulator, SEC};
    use mesh_topology::generate;

    fn run(dsts: Vec<NodeId>, packets: usize, seed: u64) -> (Simulator<MulticastMoreAgent>, usize) {
        let topo = generate::testbed(1);
        let mut agent = MulticastMoreAgent::new(topo.clone(), MoreConfig::default());
        let fi = agent.add_flow(1, NodeId(0), dsts, packets);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
        sim.kick(NodeId(0));
        sim.run_until(900 * SEC, |a: &MulticastMoreAgent| a.all_done());
        (sim, fi)
    }

    #[test]
    fn single_destination_degenerates_to_unicast() {
        let (sim, fi) = run(vec![NodeId(19)], 64, 1);
        let p = sim.agent.progress(fi);
        assert!(p.done, "single-dst multicast stuck");
        assert_eq!(p.delivered[0], 64);
    }

    #[test]
    fn two_destinations_both_complete() {
        let (sim, fi) = run(vec![NodeId(19), NodeId(12)], 64, 2);
        let p = sim.agent.progress(fi);
        assert!(p.done, "2-dst multicast stuck");
        assert_eq!(p.delivered, vec![64, 64]);
        assert!(p.completed_at.iter().all(|t| t.is_some()));
    }

    #[test]
    fn three_destinations_share_transmissions() {
        // Multicast should cost fewer transmissions than three unicasts.
        let (mc_sim, fi) = run(vec![NodeId(19), NodeId(12), NodeId(7)], 64, 3);
        assert!(mc_sim.agent.progress(fi).done);
        let mc_tx = mc_sim.stats.total_tx();

        let topo = generate::testbed(1);
        let mut uni_tx = 0;
        for (i, d) in [NodeId(19), NodeId(12), NodeId(7)].iter().enumerate() {
            let mut agent = crate::agent::MoreAgent::new(topo.clone(), MoreConfig::default());
            let ufi = agent.add_flow(1, NodeId(0), *d, 64);
            let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 4 + i as u64);
            sim.kick(NodeId(0));
            sim.run_until(900 * SEC, |a: &crate::agent::MoreAgent| a.all_done());
            assert!(sim.agent.progress(ufi).done);
            uni_tx += sim.stats.total_tx();
        }
        assert!(
            (mc_tx as f64) < 0.9 * uni_tx as f64,
            "multicast {mc_tx} tx should beat 3 unicasts {uni_tx} tx"
        );
    }

    #[test]
    #[should_panic(expected = "1..=64 destinations")]
    fn empty_destination_set_rejected() {
        let topo = generate::testbed(1);
        let mut agent = MulticastMoreAgent::new(topo, MoreConfig::default());
        agent.add_flow(1, NodeId(0), vec![], 32);
    }
}
