//! MORE — MAC-independent Opportunistic Routing and Encoding.
//!
//! The paper's contribution (thesis Chapter 3), implemented as a
//! [`mesh_sim::NodeAgent`]:
//!
//! * the **source** breaks the file into batches of K native packets and,
//!   whenever the MAC lets it, broadcasts a fresh random linear
//!   combination of the current batch (§3.1.1);
//! * **forwarders** listen to all transmissions, store innovative packets,
//!   maintain a *credit counter* — incremented by the flow's TX credit
//!   (Eq 3.3) per packet heard from upstream, decremented per transmission
//!   — and broadcast pre-coded combinations while credit is positive
//!   (§3.2.1, §3.3.3);
//! * the **destination** checks innovativeness, ACKs the batch the moment
//!   the K-th innovative packet arrives (before decoding, §3.2.2), decodes
//!   by incremental Gaussian elimination, and pushes native packets up;
//! * **batch ACKs** travel back to the source as prioritized, reliably
//!   retransmitted unicasts along the ETX shortest path; every node that
//!   overhears one purges the batch (§3.3.4).
//!
//! The forwarder set, transmission counts `z_i`, TX credits, and the 10 %
//! pruning rule come from [`mesh_metrics::ForwarderPlan`] — exactly the
//! Algorithm 1 pipeline of §3.2.1.
//!
//! Because MORE never touches the MAC, the same agent works unmodified for
//! one flow or many ([`MoreAgent::add_flow`]), at any bit-rate, with
//! spatial reuse falling out of the 802.11 model rather than protocol
//! machinery — the property the paper trades ExOR's structure for.

#![forbid(unsafe_code)]

pub mod agent;
pub mod flow;
pub mod header;
pub mod multicast;

pub use agent::MoreAgent;
pub use flow::{FlowId, FlowProgress};
pub use header::MorePayload;
pub use multicast::{MulticastMoreAgent, MulticastProgress};

use mesh_metrics::PlanConfig;

/// Which metric orders the forwarder list.
///
/// The shipped MORE uses ETX because it pre-dates EOTX; §5.7 argues
/// "future incarnations of both protocols should use the theoretically
/// exact EOTX". Both are offered; the `ablation_eotx` harness measures
/// the difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ForwarderMetric {
    /// ETX ordering, as in the paper's evaluation (§3.2.1).
    #[default]
    Etx,
    /// EOTX ordering — the Chapter-5 optimum.
    Eotx,
}

/// Protocol parameters (§4.1.2 defaults).
#[derive(Clone, Copy, Debug)]
pub struct MoreConfig {
    /// Batch size K (32 in the evaluation; Fig 4-7 sweeps 8–128).
    pub k: usize,
    /// Native packet size in bytes (1500 in the evaluation).
    pub packet_bytes: usize,
    /// MORE header overhead added to every data frame (bounded by ~70 B,
    /// §4.6c).
    pub header_bytes: usize,
    /// Forwarder-set pruning and cap (§3.2.1, §4.6c).
    pub plan: PlanConfig,
    /// Metric used to order forwarders and derive transmission counts.
    pub metric: ForwarderMetric,
    /// Carry and verify real coded payloads end-to-end. Costs CPU in large
    /// sweeps; rank dynamics (and therefore throughput) are identical
    /// either way because innovativeness is decided on code vectors alone.
    pub track_payloads: bool,
}

impl Default for MoreConfig {
    fn default() -> Self {
        MoreConfig {
            k: 32,
            packet_bytes: 1500,
            header_bytes: 70,
            plan: PlanConfig::default(),
            metric: ForwarderMetric::default(),
            track_payloads: false,
        }
    }
}

/// Deterministic byte for native packet `idx` of `batch` in `flow` —
/// lets the destination verify decoded payloads without shipping the file.
pub fn native_byte(flow: u32, batch: u32, idx: usize) -> u8 {
    (flow as usize)
        .wrapping_mul(151)
        .wrapping_add((batch as usize).wrapping_mul(53))
        .wrapping_add(idx.wrapping_mul(7))
        .wrapping_add(13) as u8
}

/// Builds the native packets for one batch.
pub fn batch_natives(flow: u32, batch: u32, k: usize, bytes: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            let seed = native_byte(flow, batch, i);
            (0..bytes)
                .map(|b| seed.wrapping_add((b % 251) as u8))
                .collect()
        })
        .collect()
}
