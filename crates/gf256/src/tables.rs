//! Compile-time lookup tables for GF(2⁸) arithmetic.
//!
//! Four tables are generated in `const` context, so they live in `.rodata`
//! and cost nothing at startup:
//!
//! * [`MUL`] — the full 256×256 = 64 KiB product table the MORE paper uses
//!   (§4.6a: "a 64KiB lookup-table indexed by pairs of 8 bits"). Row `c` of
//!   the table is the map `x ↦ c·x`, which the slice kernels walk linearly.
//! * [`EXP`]/[`LOG`] — anti-log and log tables base the generator 0x03,
//!   doubled-length `EXP` so `EXP[LOG[a]+LOG[b]]` needs no reduction.
//! * [`INV`] — multiplicative inverses (`INV[0]` is 0 as a sentinel; the
//!   public API guards against inverting zero).

/// The AES reduction polynomial x⁸+x⁴+x³+x+1, low 8 bits (the x⁸ term is
/// implicit in the reduction step).
pub const POLY: u8 = 0x1B;

/// Bit-serial GF(2⁸) multiply used only at compile time to build the tables.
const fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= POLY;
        }
        b >>= 1;
    }
    acc
}

const fn build_exp() -> [u8; 512] {
    let mut t = [0u8; 512];
    let mut x: u8 = 1;
    let mut i = 0;
    while i < 255 {
        t[i] = x;
        x = mul_slow(x, 3);
        i += 1;
    }
    // Duplicate so that EXP[i + 255] == EXP[i]; indices up to 508 are used
    // when adding two logs. Fill the rest of the array by wrapping too.
    let mut j = 255;
    while j < 512 {
        t[j] = t[j - 255];
        j += 1;
    }
    t
}

/// `EXP[i] = g^i` for the generator g = 0x03, length-doubled.
pub const EXP: [u8; 512] = build_exp();

const fn build_log() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        t[EXP[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// `LOG[a] = log_g(a)` for a ≠ 0; `LOG[0]` is 0 and must not be used.
pub const LOG: [u8; 256] = build_log();

const fn build_mul() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 0usize;
    while a < 256 {
        let mut b = 0usize;
        while b < 256 {
            t[a][b] = mul_slow(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    t
}

/// The 64 KiB full multiplication table: `MUL[a][b] = a·b` in GF(2⁸).
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_half(high: bool) -> [[u8; 16]; 256] {
    let mut t = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut n = 0usize;
        while n < 16 {
            let x = if high { (n << 4) as u8 } else { n as u8 };
            t[c][n] = mul_slow(c as u8, x);
            n += 1;
        }
        c += 1;
    }
    t
}

/// Low-nibble half-table: `MUL_LO[c][n] = c·n` for `n < 16`.
///
/// Together with [`MUL_HI`] this splits multiplication by a fixed scalar
/// into two 16-entry lookups — `c·x = MUL_LO[c][x & 0xF] ^ MUL_HI[c][x >> 4]`
/// by linearity of the field over GF(2). The pair of 16-byte rows for one
/// scalar is 32 bytes (one cache line), and each row is exactly the shape a
/// 128-bit byte-shuffle instruction consumes, which is what the wide slice
/// kernels are built on.
pub static MUL_LO: [[u8; 16]; 256] = build_half(false);

/// High-nibble half-table: `MUL_HI[c][n] = c·(n << 4)` for `n < 16`.
///
/// See [`MUL_LO`] for the split-multiplication identity.
pub static MUL_HI: [[u8; 16]; 256] = build_half(true);

const fn build_inv() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut a = 1usize;
    while a < 256 {
        // a^-1 = g^(255 - log a)
        t[a] = EXP[255 - LOG[a] as usize];
        a += 1;
    }
    t
}

/// Multiplicative inverses; `INV[0] == 0` is a sentinel, never a real inverse.
pub static INV: [u8; 256] = build_inv();

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn exp_table_wraps() {
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[1], 3);
    }

    #[test]
    fn log_exp_consistent() {
        for a in 1..256usize {
            assert_eq!(EXP[LOG[a] as usize] as usize, a);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (a, b) index the full 256x256 table
    fn mul_table_symmetric_with_identity_row() {
        for a in 0..256usize {
            assert_eq!(MUL[1][a], a as u8);
            assert_eq!(MUL[a][1], a as u8);
            assert_eq!(MUL[0][a], 0);
            for b in 0..256usize {
                assert_eq!(MUL[a][b], MUL[b][a]);
            }
        }
    }

    #[test]
    fn mul_agrees_with_log_exp() {
        for a in 1..256usize {
            for b in 1..256usize {
                let via_log = EXP[LOG[a] as usize + LOG[b] as usize];
                assert_eq!(MUL[a][b], via_log);
            }
        }
    }

    #[test]
    fn inv_table() {
        assert_eq!(INV[0], 0);
        assert_eq!(INV[1], 1);
        for a in 1..256usize {
            assert_eq!(MUL[a][INV[a] as usize], 1, "INV wrong at {a}");
        }
    }

    #[test]
    fn table_is_64kib() {
        assert_eq!(core::mem::size_of_val(&MUL), 64 * 1024);
    }

    #[test]
    fn half_tables_recombine_to_mul() {
        for c in 0..256usize {
            for x in 0..256usize {
                let split = MUL_LO[c][x & 0xF] ^ MUL_HI[c][x >> 4];
                assert_eq!(split, MUL[c][x], "half-table mismatch at {c}·{x}");
            }
        }
        assert_eq!(core::mem::size_of_val(&MUL_LO), 4 * 1024);
        assert_eq!(core::mem::size_of_val(&MUL_HI), 4 * 1024);
    }
}
