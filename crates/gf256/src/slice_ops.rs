//! Bulk operations on byte slices interpreted as vectors over GF(2⁸).
//!
//! These are the kernels behind packet coding and decoding: a coded packet
//! is `Σ cᵢ·pᵢ`, so producing one is a single [`axpy_many`] pass over the
//! sources, and decoding is row reduction built from [`mul_assign`],
//! [`mul_into`], and [`mul_add_assign`].
//!
//! Two kernel families implement this API:
//!
//! * [`crate::wide`] — nibble split-table kernels that stream 32/16/8 bytes
//!   per step (AVX2 / SSSE3 / `u64` SWAR, detected at runtime) — the
//!   default;
//! * [`crate::scalar`] — the original byte-at-a-time 64 KiB table walk,
//!   kept as the measured baseline and as the fallback behind the `scalar`
//!   cargo feature.
//!
//! The functions here dispatch between the two; [`set_kernel`] overrides
//! the choice process-wide (used by benches and by the scalar-vs-wide
//! equivalence tests — both families compute identical bytes, so switching
//! kernels never changes results, only speed).
//!
//! ```
//! use more_gf256::{slice_ops, Gf256};
//!
//! // One coded packet from three sources in one streaming pass.
//! let (p0, p1, p2) = ([1u8; 8], [2u8; 8], [3u8; 8]);
//! let mut coded = vec![0u8; 8];
//! slice_ops::axpy_many(
//!     &mut coded,
//!     &[(Gf256(5), &p0), (Gf256(7), &p1), (Gf256(11), &p2)],
//! );
//! let byte = Gf256(5) * Gf256(1) + Gf256(7) * Gf256(2) + Gf256(11) * Gf256(3);
//! assert_eq!(coded, vec![byte.0; 8]);
//! ```

// xtask: allow(panic_path, file) -- the MUL table is 256x256 indexed by a pair of u8; chunk bounds come from split_at arithmetic on equal-length slices.

use crate::{scalar, wide, Gf256};
use core::sync::atomic::{AtomicU8, Ordering};

use crate::tables::MUL;

/// Which kernel family the dispatching slice kernels run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Resolve automatically: [`Kernel::Wide`] unless the crate was built
    /// with the `scalar` feature.
    Auto,
    /// Force the byte-at-a-time reference kernels ([`crate::scalar`]).
    Scalar,
    /// Force the chunked kernels ([`crate::wide`]).
    Wide,
}

/// Process-wide kernel override; 0 = auto, 1 = scalar, 2 = wide.
static KERNEL: AtomicU8 = AtomicU8::new(0);

/// Overrides kernel selection for the whole process.
///
/// Both families compute identical bytes, so this changes performance only
/// — it exists for A/B benchmarking and for the scalar-vs-wide equivalence
/// tests. Pass [`Kernel::Auto`] to restore the default.
pub fn set_kernel(k: Kernel) {
    let v = match k {
        Kernel::Auto => 0,
        Kernel::Scalar => 1,
        Kernel::Wide => 2,
    };
    KERNEL.store(v, Ordering::SeqCst);
}

/// The kernel family the dispatching entry points currently resolve to
/// (never [`Kernel::Auto`]).
pub fn active_kernel() -> Kernel {
    match KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Wide,
        _ => {
            if cfg!(feature = "scalar") {
                Kernel::Scalar
            } else {
                Kernel::Wide
            }
        }
    }
}

#[inline]
fn wide_active() -> bool {
    matches!(active_kernel(), Kernel::Wide)
}

/// `dst[i] ^= src[i]` — add (XOR) `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    if wide_active() {
        wide::add_assign(dst, src);
    } else {
        scalar::add_assign(dst, src);
    }
}

/// `dst[i] = c * dst[i]` — scale a slice in place.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: Gf256) {
    if wide_active() {
        wide::mul_assign(dst, c);
    } else {
        scalar::mul_assign(dst, c);
    }
}

/// `dst[i] ^= c * src[i]` — the multiply-accumulate at the heart of coding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: Gf256) {
    if wide_active() {
        wide::mul_add_assign(dst, src, c);
    } else {
        scalar::mul_add_assign(dst, src, c);
    }
}

/// `out[i] = c * src[i]` — scale into a fresh output slice.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(out: &mut [u8], src: &[u8], c: Gf256) {
    if wide_active() {
        wide::mul_into(out, src, c);
    } else {
        scalar::mul_into(out, src, c);
    }
}

/// Bytes of `dst` kept hot per block while [`axpy_many`] folds every
/// source into it. Half a typical L1 data cache, so block + one source
/// stream fit comfortably.
const AXPY_BLOCK: usize = 16 * 1024;

/// `dst += Σ cⱼ·srcⱼ` — multi-source multiply-accumulate in one pass.
///
/// This is the batching contract the coding hot path is built on: producing
/// a coded packet `Σ cᵢ·pᵢ` is **one** call, not K separate
/// [`mul_add_assign`] passes. `dst` is walked in L1-sized blocks and every
/// source is folded into the resident block before moving on, so `dst` is
/// read and written once per block regardless of how many sources there
/// are. Zero coefficients are skipped for free.
///
/// ```
/// use more_gf256::{slice_ops, Gf256};
///
/// let sources = [[7u8; 4], [9u8; 4]];
/// let mut fused = vec![0u8; 4];
/// slice_ops::axpy_many(
///     &mut fused,
///     &[(Gf256(2), &sources[0]), (Gf256(3), &sources[1])],
/// );
///
/// let mut unfused = vec![0u8; 4];
/// for (c, s) in [(Gf256(2), &sources[0]), (Gf256(3), &sources[1])] {
///     slice_ops::mul_add_assign(&mut unfused, s, c);
/// }
/// assert_eq!(fused, unfused);
/// ```
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn axpy_many(dst: &mut [u8], terms: &[(Gf256, &[u8])]) {
    for (_, src) in terms {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
    }
    let n = dst.len();
    let mut off = 0;
    while off < n {
        let end = (off + AXPY_BLOCK).min(n);
        for &(c, src) in terms {
            mul_add_assign(&mut dst[off..end], &src[off..end], c);
        }
        off = end;
    }
}

/// Dot product of two equal-length byte slices over GF(2⁸).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[u8], b: &[u8]) -> Gf256 {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        acc ^= MUL[x as usize][y as usize];
    }
    Gf256(acc)
}

/// Linear combination: `out = Σ coeffs[j] * rows[j]`, all rows equal length.
///
/// Zeroes `out` first, then runs one [`axpy_many`] pass.
///
/// # Panics
///
/// Panics if `coeffs.len() != rows.len()` or any row length differs from
/// `out`.
pub fn linear_combination(out: &mut [u8], rows: &[&[u8]], coeffs: &[Gf256]) {
    assert_eq!(rows.len(), coeffs.len(), "rows/coeffs length mismatch");
    out.fill(0);
    let terms: Vec<(Gf256, &[u8])> = coeffs.iter().zip(rows).map(|(&c, &r)| (c, r)).collect();
    axpy_many(out, &terms);
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn add_assign_is_xor() {
        let mut a = vec![0x00, 0xFF, 0x55];
        add_assign(&mut a, &[0x0F, 0xF0, 0x55]);
        assert_eq!(a, vec![0x0F, 0x0F, 0x00]);
    }

    #[test]
    fn add_assign_self_inverse() {
        let orig = vec![1u8, 2, 3, 4, 5];
        let mut a = orig.clone();
        let b = vec![9u8, 8, 7, 6, 5];
        add_assign(&mut a, &b);
        add_assign(&mut a, &b);
        assert_eq!(a, orig);
    }

    #[test]
    fn mul_assign_zero_one() {
        let mut a = vec![1u8, 2, 3];
        mul_assign(&mut a, Gf256::ONE);
        assert_eq!(a, vec![1, 2, 3]);
        mul_assign(&mut a, Gf256::ZERO);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    fn mul_assign_then_inverse_restores() {
        let orig: Vec<u8> = (0..=255).collect();
        for c in [Gf256(2), Gf256(0x53), Gf256(0xFF)] {
            let mut a = orig.clone();
            mul_assign(&mut a, c);
            mul_assign(&mut a, c.inv());
            assert_eq!(a, orig, "failed for c={c:?}");
        }
    }

    #[test]
    fn mul_add_assign_matches_scalar_ops() {
        let src: Vec<u8> = (10..20).collect();
        let mut dst: Vec<u8> = (50..60).collect();
        let snapshot = dst.clone();
        let c = Gf256(0x1D);
        mul_add_assign(&mut dst, &src, c);
        for i in 0..src.len() {
            assert_eq!(Gf256(dst[i]), Gf256(snapshot[i]) + Gf256(src[i]) * c);
        }
    }

    #[test]
    fn mul_into_matches_mul_assign() {
        let src: Vec<u8> = (0..=255).collect();
        let c = Gf256(0xA7);
        let mut out = vec![0u8; 256];
        mul_into(&mut out, &src, c);
        let mut expect = src.clone();
        mul_assign(&mut expect, c);
        assert_eq!(out, expect);
    }

    #[test]
    fn dot_product() {
        // (1,2,3)·(4,5,6) = 1*4 + 2*5 + 3*6
        let expect = Gf256(1) * Gf256(4) + Gf256(2) * Gf256(5) + Gf256(3) * Gf256(6);
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), expect);
    }

    #[test]
    fn linear_combination_two_rows() {
        let r1 = [1u8, 0, 0, 7];
        let r2 = [0u8, 1, 0, 9];
        let mut out = [0u8; 4];
        linear_combination(&mut out, &[&r1, &r2], &[Gf256(3), Gf256(5)]);
        for i in 0..4 {
            assert_eq!(
                Gf256(out[i]),
                Gf256(r1[i]) * Gf256(3) + Gf256(r2[i]) * Gf256(5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut a = [0u8; 3];
        mul_add_assign(&mut a, &[0u8; 4], Gf256(2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_many_length_mismatch_panics() {
        let mut a = [0u8; 3];
        let bad = [0u8; 4];
        axpy_many(&mut a, &[(Gf256(2), &bad)]);
    }

    #[test]
    fn axpy_many_matches_sequential_passes() {
        let k = 37;
        let len = 1500;
        let sources: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
            .collect();
        let coeffs: Vec<Gf256> = (0..k).map(|i| Gf256((i * 89 % 256) as u8)).collect();

        let mut fused = vec![0u8; len];
        let terms: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&sources)
            .map(|(&c, s)| (c, s.as_slice()))
            .collect();
        axpy_many(&mut fused, &terms);

        let mut unfused = vec![0u8; len];
        for (&c, s) in coeffs.iter().zip(&sources) {
            mul_add_assign(&mut unfused, s, c);
        }
        assert_eq!(fused, unfused);
    }

    #[test]
    fn axpy_many_crosses_block_boundary() {
        // Longer than AXPY_BLOCK so the blocked walk takes several strides.
        let len = AXPY_BLOCK * 2 + 17;
        let s1: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
        let s2: Vec<u8> = (0..len).map(|i| ((i * 3 + 1) % 253) as u8).collect();
        let mut fused = vec![0u8; len];
        axpy_many(&mut fused, &[(Gf256(0x35), &s1), (Gf256(0xC2), &s2)]);
        let mut unfused = vec![0u8; len];
        mul_add_assign(&mut unfused, &s1, Gf256(0x35));
        mul_add_assign(&mut unfused, &s2, Gf256(0xC2));
        assert_eq!(fused, unfused);
    }

    #[test]
    fn kernel_override_roundtrip() {
        // Exercise both dispatch targets through the public entry points.
        let src: Vec<u8> = (0..=255).collect();
        let mut results = Vec::new();
        for k in [Kernel::Scalar, Kernel::Wide] {
            set_kernel(k);
            assert_eq!(active_kernel(), k);
            let mut dst = vec![0xA5u8; 256];
            mul_add_assign(&mut dst, &src, Gf256(0x7B));
            results.push(dst);
        }
        set_kernel(Kernel::Auto);
        assert_eq!(results[0], results[1], "kernel families disagree");
    }

    #[test]
    fn distributivity_over_slices() {
        // c*(a+b) == c*a + c*b elementwise.
        let a: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 13 + 1) as u8).collect();
        let c = Gf256(0x9E);

        let mut lhs = a.clone();
        add_assign(&mut lhs, &b);
        mul_assign(&mut lhs, c);

        let mut rhs = vec![0u8; 100];
        mul_into(&mut rhs, &a, c);
        mul_add_assign(&mut rhs, &b, c);

        assert_eq!(lhs, rhs);
    }
}
