//! Bulk operations on byte slices interpreted as vectors over GF(2⁸).
//!
//! These are the kernels behind packet coding and decoding: a coded packet
//! is `Σ cᵢ·pᵢ`, so producing one is a sequence of [`mul_add_assign`] calls
//! (one per stored packet), and decoding is row reduction built from
//! [`mul_assign`] and [`mul_add_assign`].
//!
//! All kernels fetch the 256-byte row of the multiplication table for the
//! scalar once and then stream through the data, which is what makes the
//! cost "K finite-field multiplications per byte" (thesis §4.6a) a table
//! walk rather than a polynomial reduction per byte.

use crate::tables::MUL;
use crate::Gf256;

/// `dst[i] ^= src[i]` — add (XOR) `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `dst[i] = c * dst[i]` — scale a slice in place.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: Gf256) {
    match c {
        Gf256::ZERO => dst.fill(0),
        Gf256::ONE => {}
        _ => {
            let row = &MUL[c.0 as usize];
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

/// `dst[i] ^= c * src[i]` — the multiply-accumulate at the heart of coding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => {}
        Gf256::ONE => add_assign(dst, src),
        _ => {
            let row = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

/// `out[i] = c * src[i]` — scale into a fresh output slice.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(out: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(out.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => out.fill(0),
        Gf256::ONE => out.copy_from_slice(src),
        _ => {
            let row = &MUL[c.0 as usize];
            for (o, s) in out.iter_mut().zip(src) {
                *o = row[*s as usize];
            }
        }
    }
}

/// Dot product of two equal-length byte slices over GF(2⁸).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[u8], b: &[u8]) -> Gf256 {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        acc ^= MUL[x as usize][y as usize];
    }
    Gf256(acc)
}

/// Linear combination: `out = Σ coeffs[j] * rows[j]`, all rows equal length.
///
/// # Panics
///
/// Panics if `coeffs.len() != rows.len()` or any row length differs from
/// `out`.
pub fn linear_combination(out: &mut [u8], rows: &[&[u8]], coeffs: &[Gf256]) {
    assert_eq!(rows.len(), coeffs.len(), "rows/coeffs length mismatch");
    out.fill(0);
    for (row, &c) in rows.iter().zip(coeffs) {
        mul_add_assign(out, row, c);
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn add_assign_is_xor() {
        let mut a = vec![0x00, 0xFF, 0x55];
        add_assign(&mut a, &[0x0F, 0xF0, 0x55]);
        assert_eq!(a, vec![0x0F, 0x0F, 0x00]);
    }

    #[test]
    fn add_assign_self_inverse() {
        let orig = vec![1u8, 2, 3, 4, 5];
        let mut a = orig.clone();
        let b = vec![9u8, 8, 7, 6, 5];
        add_assign(&mut a, &b);
        add_assign(&mut a, &b);
        assert_eq!(a, orig);
    }

    #[test]
    fn mul_assign_zero_one() {
        let mut a = vec![1u8, 2, 3];
        mul_assign(&mut a, Gf256::ONE);
        assert_eq!(a, vec![1, 2, 3]);
        mul_assign(&mut a, Gf256::ZERO);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    fn mul_assign_then_inverse_restores() {
        let orig: Vec<u8> = (0..=255).collect();
        for c in [Gf256(2), Gf256(0x53), Gf256(0xFF)] {
            let mut a = orig.clone();
            mul_assign(&mut a, c);
            mul_assign(&mut a, c.inv());
            assert_eq!(a, orig, "failed for c={c:?}");
        }
    }

    #[test]
    fn mul_add_assign_matches_scalar_ops() {
        let src: Vec<u8> = (10..20).collect();
        let mut dst: Vec<u8> = (50..60).collect();
        let snapshot = dst.clone();
        let c = Gf256(0x1D);
        mul_add_assign(&mut dst, &src, c);
        for i in 0..src.len() {
            assert_eq!(Gf256(dst[i]), Gf256(snapshot[i]) + Gf256(src[i]) * c);
        }
    }

    #[test]
    fn mul_into_matches_mul_assign() {
        let src: Vec<u8> = (0..=255).collect();
        let c = Gf256(0xA7);
        let mut out = vec![0u8; 256];
        mul_into(&mut out, &src, c);
        let mut expect = src.clone();
        mul_assign(&mut expect, c);
        assert_eq!(out, expect);
    }

    #[test]
    fn dot_product() {
        // (1,2,3)·(4,5,6) = 1*4 + 2*5 + 3*6
        let expect = Gf256(1) * Gf256(4) + Gf256(2) * Gf256(5) + Gf256(3) * Gf256(6);
        assert_eq!(dot(&[1, 2, 3], &[4, 5, 6]), expect);
    }

    #[test]
    fn linear_combination_two_rows() {
        let r1 = [1u8, 0, 0, 7];
        let r2 = [0u8, 1, 0, 9];
        let mut out = [0u8; 4];
        linear_combination(&mut out, &[&r1, &r2], &[Gf256(3), Gf256(5)]);
        for i in 0..4 {
            assert_eq!(
                Gf256(out[i]),
                Gf256(r1[i]) * Gf256(3) + Gf256(r2[i]) * Gf256(5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut a = [0u8; 3];
        mul_add_assign(&mut a, &[0u8; 4], Gf256(2));
    }

    #[test]
    fn distributivity_over_slices() {
        // c*(a+b) == c*a + c*b elementwise.
        let a: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 13 + 1) as u8).collect();
        let c = Gf256(0x9E);

        let mut lhs = a.clone();
        add_assign(&mut lhs, &b);
        mul_assign(&mut lhs, c);

        let mut rhs = vec![0u8; 100];
        mul_into(&mut rhs, &a, c);
        mul_add_assign(&mut rhs, &b, c);

        assert_eq!(lhs, rhs);
    }
}
