//! Wide (chunked) slice kernels built on the nibble split-tables.
//!
//! Multiplication by a fixed scalar `c` is GF(2)-linear in the operand, so
//! `c·x = MUL_LO[c][x & 0xF] ^ MUL_HI[c][x >> 4]` — two lookups into
//! 16-entry half-tables ([`crate::tables::MUL_LO`] /
//! [`crate::tables::MUL_HI`]) instead of one lookup into a 256-byte row of
//! the 64 KiB table. The 16-entry rows are exactly the shape a byte-shuffle
//! instruction consumes, which turns the per-byte table walk into a
//! 16-or-32-bytes-per-instruction stream:
//!
//! * **AVX2** — 32 bytes per step via `vpshufb` (both half-rows broadcast
//!   into the two 128-bit lanes);
//! * **SSSE3** — 16 bytes per step via `pshufb`;
//! * **SWAR fallback** — 8-byte (`u64`) lanes with per-byte half-table
//!   lookups, for targets without the shuffle unit.
//!
//! Every path finishes with a scalar tail for the trailing `len % width`
//! bytes, and every path computes exactly the same bytes as the
//! [`crate::scalar`] reference kernels (property-tested in
//! `tests/kernel_equivalence.rs`). The x86 backend is selected once per
//! process by runtime CPU feature detection.

// xtask: allow(panic_path, file) -- SIMD-width kernel: chunks_exact(8) guarantees every window is exactly 8 bytes, so the fixed-offset indexing and try_into conversions on those windows cannot fail.

use crate::tables::{MUL_HI, MUL_LO};
use crate::Gf256;

/// `c·x` via the two half-table lookups (the scalar-tail step).
#[inline(always)]
fn half_mul(lo: &[u8; 16], hi: &[u8; 16], x: u8) -> u8 {
    lo[(x & 0x0F) as usize] ^ hi[(x >> 4) as usize]
}

/// Name of the widest backend the dispatching kernels use on this machine:
/// `"avx2"`, `"ssse3"`, or `"swar"`. Recorded in bench artifacts so
/// throughput numbers are comparable across hosts.
pub fn backend() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match x86::level() {
            2 => return "avx2",
            1 => return "ssse3",
            _ => {}
        }
    }
    "swar"
}

/// `dst[i] ^= src[i]` in `u64` lanes with a byte tail.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let v = u64::from_ne_bytes(d.as_ref().try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&v.to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= s;
    }
}

/// `dst[i] ^= c * src[i]` — the wide multiply-accumulate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => {}
        Gf256::ONE => add_assign(dst, src),
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                match x86::level() {
                    // SAFETY: level() == 2 means AVX2 was detected on this CPU
                    // at runtime, satisfying mul_add_avx2's target-feature
                    // contract; dst/src lengths were asserted equal above.
                    2 => return unsafe { x86::mul_add_avx2(dst, src, c.0) },
                    // SAFETY: level() == 1 means SSSE3 was detected at
                    // runtime, satisfying mul_add_ssse3's contract.
                    1 => return unsafe { x86::mul_add_ssse3(dst, src, c.0) },
                    _ => {}
                }
            }
            mul_add_swar(dst, src, c.0);
        }
    }
}

/// `dst[i] = c * dst[i]` — wide in-place scale.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: Gf256) {
    match c {
        Gf256::ZERO => dst.fill(0),
        Gf256::ONE => {}
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                match x86::level() {
                    // SAFETY: level() == 2 means AVX2 was detected on this CPU
                    // at runtime, satisfying mul_assign_avx2's target-feature
                    // contract.
                    2 => return unsafe { x86::mul_assign_avx2(dst, c.0) },
                    // SAFETY: level() == 1 means SSSE3 was detected at
                    // runtime, satisfying mul_assign_ssse3's contract.
                    1 => return unsafe { x86::mul_assign_ssse3(dst, c.0) },
                    _ => {}
                }
            }
            mul_assign_swar(dst, c.0);
        }
    }
}

/// `out[i] = c * src[i]` — wide scale into a fresh output slice.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(out: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(out.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => out.fill(0),
        Gf256::ONE => out.copy_from_slice(src),
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                match x86::level() {
                    // SAFETY: level() == 2 means AVX2 was detected on this CPU
                    // at runtime, satisfying mul_into_avx2's target-feature
                    // contract; out/src lengths were asserted equal above.
                    2 => return unsafe { x86::mul_into_avx2(out, src, c.0) },
                    // SAFETY: level() == 1 means SSSE3 was detected at
                    // runtime, satisfying mul_into_ssse3's contract.
                    1 => return unsafe { x86::mul_into_ssse3(out, src, c.0) },
                    _ => {}
                }
            }
            mul_into_swar(out, src, c.0);
        }
    }
}

fn mul_add_swar(dst: &mut [u8], src: &[u8], c: u8) {
    let lo = &MUL_LO[c as usize];
    let hi = &MUL_HI[c as usize];
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(s) {
            *p = half_mul(lo, hi, b);
        }
        let v = u64::from_ne_bytes(d.as_ref().try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(prod);
        d.copy_from_slice(&v.to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= half_mul(lo, hi, *s);
    }
}

fn mul_assign_swar(dst: &mut [u8], c: u8) {
    let lo = &MUL_LO[c as usize];
    let hi = &MUL_HI[c as usize];
    for d in dst.iter_mut() {
        *d = half_mul(lo, hi, *d);
    }
}

fn mul_into_swar(out: &mut [u8], src: &[u8], c: u8) {
    let lo = &MUL_LO[c as usize];
    let hi = &MUL_HI[c as usize];
    let mut o_chunks = out.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (o, s) in (&mut o_chunks).zip(&mut s_chunks) {
        let mut prod = [0u8; 8];
        for (p, &b) in prod.iter_mut().zip(s) {
            *p = half_mul(lo, hi, b);
        }
        o.copy_from_slice(&prod);
    }
    for (o, s) in o_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *o = half_mul(lo, hi, *s);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{half_mul, MUL_HI, MUL_LO};
    use core::arch::x86_64::*;
    use core::sync::atomic::{AtomicU8, Ordering};

    /// Detected SIMD tier: 2 = AVX2, 1 = SSSE3, 0 = neither. Detection runs
    /// once; the result is cached for every later kernel call.
    pub(super) fn level() -> u8 {
        static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
        let l = LEVEL.load(Ordering::Relaxed);
        if l != u8::MAX {
            return l;
        }
        let detected = if std::arch::is_x86_feature_detected!("avx2") {
            2
        } else if std::arch::is_x86_feature_detected!("ssse3") {
            1
        } else {
            0
        };
        LEVEL.store(detected, Ordering::Relaxed);
        detected
    }

    /// Scalar tail shared by all SIMD paths.
    fn tail_mul_add(dst: &mut [u8], src: &[u8], c: u8) {
        let lo = &MUL_LO[c as usize];
        let hi = &MUL_HI[c as usize];
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= half_mul(lo, hi, *s);
        }
    }

    fn tail_mul_into(out: &mut [u8], src: &[u8], c: u8) {
        let lo = &MUL_LO[c as usize];
        let hi = &MUL_HI[c as usize];
        for (o, s) in out.iter_mut().zip(src) {
            *o = half_mul(lo, hi, *s);
        }
    }

    fn tail_mul_assign(dst: &mut [u8], c: u8) {
        let lo = &MUL_LO[c as usize];
        let hi = &MUL_HI[c as usize];
        for d in dst.iter_mut() {
            *d = half_mul(lo, hi, *d);
        }
    }

    // SAFETY: caller must ensure the CPU supports SSSE3 (x86::level() >= 1).
    // All loads/stores are unaligned and stay within the first n = len - len % 16
    // bytes of dst/src (equal lengths asserted by the dispatching caller);
    // the scalar tail handles the remainder.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_add_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
        let lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() - dst.len() % 16;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(s), mask));
            let d = _mm_loadu_si128(dp.add(i).cast());
            let acc = _mm_xor_si128(d, _mm_xor_si128(l, h));
            _mm_storeu_si128(dp.add(i).cast(), acc);
            i += 16;
        }
        tail_mul_add(&mut dst[n..], &src[n..], c);
    }

    // SAFETY: caller must ensure the CPU supports SSSE3 (x86::level() >= 1).
    // All loads/stores are unaligned and stay within the first n = len - len % 16
    // bytes of out/src (equal lengths asserted by the dispatching caller);
    // out and src are distinct borrows so no load overlaps a store.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_into_ssse3(out: &mut [u8], src: &[u8], c: u8) {
        let lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = out.len() - out.len() % 16;
        let op = out.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(s), mask));
            _mm_storeu_si128(op.add(i).cast(), _mm_xor_si128(l, h));
            i += 16;
        }
        tail_mul_into(&mut out[n..], &src[n..], c);
    }

    // SAFETY: caller must ensure the CPU supports SSSE3 (x86::level() >= 1).
    // All loads/stores are unaligned and stay within the first n = len - len % 16
    // bytes of dst; each 16-byte lane is loaded before it is stored.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_assign_ssse3(dst: &mut [u8], c: u8) {
        let lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len() - dst.len() % 16;
        let dp = dst.as_mut_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm_loadu_si128(dp.add(i).cast());
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(s), mask));
            _mm_storeu_si128(dp.add(i).cast(), _mm_xor_si128(l, h));
            i += 16;
        }
        tail_mul_assign(&mut dst[n..], c);
    }

    // SAFETY: caller must ensure the CPU supports AVX2 (x86::level() == 2).
    // All loads/stores are unaligned and stay within the first n = len - len % 32
    // bytes of dst/src (equal lengths asserted by the dispatching caller);
    // the scalar tail handles the remainder.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_avx2(dst: &mut [u8], src: &[u8], c: u8) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() - dst.len() % 32;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask));
            let d = _mm256_loadu_si256(dp.add(i).cast());
            let acc = _mm256_xor_si256(d, _mm256_xor_si256(l, h));
            _mm256_storeu_si256(dp.add(i).cast(), acc);
            i += 32;
        }
        tail_mul_add(&mut dst[n..], &src[n..], c);
    }

    // SAFETY: caller must ensure the CPU supports AVX2 (x86::level() == 2).
    // All loads/stores are unaligned and stay within the first n = len - len % 32
    // bytes of out/src (equal lengths asserted by the dispatching caller);
    // out and src are distinct borrows so no load overlaps a store.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_into_avx2(out: &mut [u8], src: &[u8], c: u8) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = out.len() - out.len() % 32;
        let op = out.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask));
            _mm256_storeu_si256(op.add(i).cast(), _mm256_xor_si256(l, h));
            i += 32;
        }
        tail_mul_into(&mut out[n..], &src[n..], c);
    }

    // SAFETY: caller must ensure the CPU supports AVX2 (x86::level() == 2).
    // All loads/stores are unaligned and stay within the first n = len - len % 32
    // bytes of dst; each 32-byte lane is loaded before it is stored.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign_avx2(dst: &mut [u8], c: u8) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len() - dst.len() % 32;
        let dp = dst.as_mut_ptr();
        let mut i = 0usize;
        while i < n {
            let s = _mm256_loadu_si256(dp.add(i).cast());
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask));
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_xor_si256(l, h));
            i += 32;
        }
        tail_mul_assign(&mut dst[n..], c);
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::scalar;

    /// Deterministic pseudo-random bytes without pulling in an RNG.
    fn noise(len: usize, salt: u64) -> Vec<u8> {
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    /// Lengths that cross every chunk boundary: empty, sub-lane, one lane,
    /// lane+tail, several lanes of each width.
    const LENS: [usize; 9] = [0, 1, 7, 8, 15, 16, 31, 33, 1500];

    #[test]
    fn swar_paths_match_scalar() {
        for &len in &LENS {
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let src = noise(len, c as u64 + 1);
                let base = noise(len, c as u64 + 1000);

                let mut want = base.clone();
                scalar::mul_add_assign(&mut want, &src, Gf256(c));
                let mut got = base.clone();
                if c > 1 {
                    mul_add_swar(&mut got, &src, c);
                } else {
                    mul_add_assign(&mut got, &src, Gf256(c));
                }
                assert_eq!(got, want, "mul_add len={len} c={c:#x}");

                let mut want = base.clone();
                scalar::mul_assign(&mut want, Gf256(c));
                let mut got = base.clone();
                if c > 1 {
                    mul_assign_swar(&mut got, c);
                } else {
                    mul_assign(&mut got, Gf256(c));
                }
                assert_eq!(got, want, "mul_assign len={len} c={c:#x}");

                let mut want = vec![0u8; len];
                scalar::mul_into(&mut want, &src, Gf256(c));
                let mut got = vec![0u8; len];
                if c > 1 {
                    mul_into_swar(&mut got, &src, c);
                } else {
                    mul_into(&mut got, &src, Gf256(c));
                }
                assert_eq!(got, want, "mul_into len={len} c={c:#x}");
            }
        }
    }

    #[test]
    fn dispatched_paths_match_scalar() {
        // Exercises whatever backend() picks on this machine (AVX2 on CI).
        for &len in &LENS {
            for c in [2u8, 3, 0x1D, 0x80, 0xFE] {
                let src = noise(len, c as u64 + 7);
                let base = noise(len, c as u64 + 7000);

                let mut want = base.clone();
                scalar::mul_add_assign(&mut want, &src, Gf256(c));
                let mut got = base.clone();
                mul_add_assign(&mut got, &src, Gf256(c));
                assert_eq!(got, want, "{} mul_add len={len} c={c:#x}", backend());

                let mut want = base.clone();
                scalar::mul_assign(&mut want, Gf256(c));
                let mut got = base.clone();
                mul_assign(&mut got, Gf256(c));
                assert_eq!(got, want, "{} mul_assign len={len} c={c:#x}", backend());

                let mut want = vec![0u8; len];
                scalar::mul_into(&mut want, &src, Gf256(c));
                let mut got = vec![0u8; len];
                mul_into(&mut got, &src, Gf256(c));
                assert_eq!(got, want, "{} mul_into len={len} c={c:#x}", backend());
            }
        }
    }

    #[test]
    fn wide_add_assign_is_xor() {
        for &len in &LENS {
            let a = noise(len, 3);
            let b = noise(len, 4);
            let mut got = a.clone();
            add_assign(&mut got, &b);
            let want: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn backend_is_named() {
        assert!(["avx2", "ssse3", "swar"].contains(&backend()));
    }
}
