//! GF(2⁸) finite-field arithmetic for random linear network coding.
//!
//! MORE codes packets over the finite field of size 2⁸ (thesis §4.6a). Every
//! byte of a packet is a field element; coding multiplies packets by random
//! coefficients and adds them, so the two hot operations are
//! *multiply-a-slice-by-a-scalar* and *multiply-accumulate-a-slice*.
//!
//! The thesis optimizes multiplication with "a 64KiB lookup-table indexed by
//! pairs of 8 bits" so that "multiplying any byte of a packet with a random
//! number is simply a fast lookup". [`tables::MUL`] is exactly that table,
//! computed at compile time; [`slice_ops`] provides the cache-friendly
//! row-at-a-time kernels built on it.
//!
//! Two kernel families implement the slice operations: [`scalar`] walks the
//! 64 KiB table one byte at a time (the paper's formulation, kept as the
//! measured baseline), and [`wide`] splits each multiplication across two
//! 16-entry nibble half-tables ([`tables::MUL_LO`] / [`tables::MUL_HI`])
//! and streams 32/16/8 bytes per step (AVX2 / SSSE3 / `u64` SWAR, detected
//! at runtime). [`slice_ops`] dispatches between them — wide by default,
//! scalar behind the `scalar` cargo feature or a
//! [`slice_ops::set_kernel`] override — and adds the multi-source
//! [`slice_ops::axpy_many`] pass that the coding hot path batches through.
//!
//! The field is GF(2⁸) with the AES reduction polynomial
//! x⁸ + x⁴ + x³ + x + 1 (0x11B). Addition is XOR; subtraction equals
//! addition; every non-zero element has a multiplicative inverse.
//!
//! # Example
//!
//! ```
//! use more_gf256::Gf256;
//!
//! let a = Gf256(0x57);
//! let b = Gf256(0x83);
//! assert_eq!(a * b, Gf256(0xC1)); // the classic AES example
//! assert_eq!((a * b) / b, a);
//! assert_eq!(a + a, Gf256::ZERO); // characteristic 2
//! ```

#![deny(missing_docs)]

// xtask: allow(panic_path, file) -- log/exp table lookups are indexed by u8 values bounded 0..=255 by the field construction.

pub mod scalar;
pub mod slice_ops;
pub mod tables;
pub mod wide;

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of GF(2⁸).
///
/// A thin newtype over `u8`; all arithmetic is table-driven and constant
/// time with respect to the operand values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// A generator of the multiplicative group (0x03 generates for 0x11B).
    pub const GENERATOR: Gf256 = Gf256(3);

    /// Number of elements in the field.
    pub const ORDER: usize = 256;

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Field multiplication via the 64 KiB lookup table.
    #[inline]
    pub const fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::MUL[self.0 as usize][rhs.0 as usize])
    }

    /// Field addition (XOR).
    #[inline]
    pub const fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero, which has no inverse.
    #[inline]
    pub fn inv(self) -> Gf256 {
        assert!(self.0 != 0, "attempt to invert 0 in GF(2^8)");
        Gf256(tables::INV[self.0 as usize])
    }

    /// The multiplicative inverse, or `None` for zero.
    #[inline]
    pub fn checked_inv(self) -> Option<Gf256> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(tables::INV[self.0 as usize]))
        }
    }

    /// Raises `self` to the power `exp` (with `0^0 == 1`).
    pub fn pow(self, mut exp: u32) -> Gf256 {
        let mut base = self;
        let mut acc = Gf256::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            exp >>= 1;
        }
        acc
    }

    /// Discrete logarithm base [`Self::GENERATOR`], or `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(tables::LOG[self.0 as usize])
        }
    }

    /// `GENERATOR^e`.
    #[inline]
    pub fn exp(e: u8) -> Gf256 {
        Gf256(tables::EXP[e as usize])
    }

    /// Iterator over all 256 field elements in numeric order.
    pub fn all() -> impl Iterator<Item = Gf256> {
        (0u16..256).map(|v| Gf256(v as u8))
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}", self.0)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // XOR is GF(2^8) addition
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // XOR is GF(2^8) addition
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // XOR is GF(2^8) addition
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)] // XOR is GF(2^8) addition
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256::mul(self, rhs)
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = Gf256::mul(*self, rhs);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256::mul(self, rhs.inv())
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod test {
    use super::*;

    /// Bit-by-bit ("Russian peasant") reference multiplication, independent
    /// of the lookup tables.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 == 1 {
                acc ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= 0x1B; // x^8 == x^4 + x^3 + x + 1 (mod 0x11B)
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn mul_matches_reference_everywhere() {
        for a in 0u16..256 {
            for b in 0u16..256 {
                assert_eq!(
                    (Gf256(a as u8) * Gf256(b as u8)).0,
                    slow_mul(a as u8, b as u8),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn aes_worked_example() {
        // The FIPS-197 worked example: 0x57 * 0x83 = 0xC1.
        assert_eq!(Gf256(0x57) * Gf256(0x83), Gf256(0xC1));
        // And 0x57 * 0x13 = 0xFE.
        assert_eq!(Gf256(0x57) * Gf256(0x13), Gf256(0xFE));
    }

    #[test]
    fn additive_identity_and_self_inverse() {
        for a in Gf256::all() {
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf256::ZERO);
        }
    }

    #[test]
    fn multiplicative_identity_and_zero() {
        for a in Gf256::all() {
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn inverses_invert() {
        for a in Gf256::all().skip(1) {
            assert_eq!(a * a.inv(), Gf256::ONE, "inv failed for {a:?}");
            assert_eq!(a / a, Gf256::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "invert 0")]
    fn zero_inverse_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn checked_inv_zero() {
        assert_eq!(Gf256::ZERO.checked_inv(), None);
        assert_eq!(Gf256::ONE.checked_inv(), Some(Gf256::ONE));
    }

    #[test]
    fn generator_generates_the_multiplicative_group() {
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE, "generator order != 255");
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn log_exp_roundtrip() {
        for a in Gf256::all().skip(1) {
            let l = a.log().unwrap();
            assert_eq!(Gf256::exp(l), a);
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(Gf256(7).pow(0), Gf256::ONE);
        assert_eq!(Gf256(7).pow(1), Gf256(7));
        assert_eq!(Gf256(7).pow(2), Gf256(7) * Gf256(7));
        // Fermat: a^255 == 1 for a != 0.
        for a in Gf256::all().skip(1) {
            assert_eq!(a.pow(255), Gf256::ONE);
        }
    }

    #[test]
    fn sum_and_product_impls() {
        let v = [Gf256(1), Gf256(2), Gf256(3)];
        let s: Gf256 = v.iter().copied().sum();
        assert_eq!(s, Gf256(1 ^ 2 ^ 3));
        let p: Gf256 = v.iter().copied().product();
        assert_eq!(p, Gf256(1) * Gf256(2) * Gf256(3));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Gf256(0xAB)), "AB");
        assert_eq!(format!("{:?}", Gf256(0x0F)), "Gf256(0x0F)");
    }

    #[test]
    fn conversions() {
        let a: Gf256 = 0x42u8.into();
        let b: u8 = a.into();
        assert_eq!(b, 0x42);
    }
}
