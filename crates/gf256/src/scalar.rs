//! The byte-at-a-time reference kernels.
//!
//! These are the original table-walk kernels: fetch the 256-byte row of
//! [`MUL`] for the scalar once, then process one byte
//! per step. They are kept as the permanent baseline — the wide kernels in
//! [`wide`](crate::wide) must produce byte-identical output (property-tested
//! in `tests/kernel_equivalence.rs`), the coding micro-benches report their
//! speedup against this module, and building the crate with the `scalar`
//! feature routes the dispatching [`slice_ops`](crate::slice_ops) entry
//! points back here.

// xtask: allow(panic_path, file) -- the 256-entry log/exp tables are indexed by u8 values (and EXP by log sums < 510, within its padded length), which cannot overrun.

use crate::tables::MUL;
use crate::Gf256;

/// `dst[i] ^= src[i]` — add (XOR) `src` into `dst`, one byte at a time.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `dst[i] = c * dst[i]` — scale a slice in place, one byte at a time.
#[inline]
pub fn mul_assign(dst: &mut [u8], c: Gf256) {
    match c {
        Gf256::ZERO => dst.fill(0),
        Gf256::ONE => {}
        _ => {
            let row = &MUL[c.0 as usize];
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

/// `dst[i] ^= c * src[i]` — multiply-accumulate, one byte at a time.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_assign(dst: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => {}
        Gf256::ONE => add_assign(dst, src),
        _ => {
            let row = &MUL[c.0 as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

/// `out[i] = c * src[i]` — scale into a fresh output slice, byte-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(out: &mut [u8], src: &[u8], c: Gf256) {
    assert_eq!(out.len(), src.len(), "slice length mismatch");
    match c {
        Gf256::ZERO => out.fill(0),
        Gf256::ONE => out.copy_from_slice(src),
        _ => {
            let row = &MUL[c.0 as usize];
            for (o, s) in out.iter_mut().zip(src) {
                *o = row[*s as usize];
            }
        }
    }
}
