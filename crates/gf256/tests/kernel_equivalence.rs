//! Property-based equivalence of the wide kernels against the scalar
//! reference on arbitrary (coefficient, slice) inputs.
//!
//! The wide family ([`more_gf256::wide`]) must be a drop-in replacement
//! for the byte-at-a-time family ([`more_gf256::scalar`]): same bytes out
//! for every input, including lengths that leave SWAR/SSSE3/AVX2 tails.

use more_gf256::{scalar, slice_ops, wide, Gf256};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

proptest! {
    #[test]
    fn wide_mul_add_assign_matches_scalar(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        src in proptest::collection::vec(any::<u8>(), 0..600),
        c in gf(),
    ) {
        let n = data.len().min(src.len());
        let mut want = data[..n].to_vec();
        scalar::mul_add_assign(&mut want, &src[..n], c);
        let mut got = data[..n].to_vec();
        wide::mul_add_assign(&mut got, &src[..n], c);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wide_mul_assign_matches_scalar(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        c in gf(),
    ) {
        let mut want = data.clone();
        scalar::mul_assign(&mut want, c);
        let mut got = data;
        wide::mul_assign(&mut got, c);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wide_mul_into_matches_scalar(
        src in proptest::collection::vec(any::<u8>(), 0..600),
        c in gf(),
    ) {
        let mut want = vec![0xEE; src.len()];
        scalar::mul_into(&mut want, &src, c);
        let mut got = vec![0x11; src.len()];
        wide::mul_into(&mut got, &src, c);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wide_add_assign_matches_scalar(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        src in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let n = data.len().min(src.len());
        let mut want = data[..n].to_vec();
        scalar::add_assign(&mut want, &src[..n]);
        let mut got = data[..n].to_vec();
        wide::add_assign(&mut got, &src[..n]);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn axpy_many_matches_scalar_passes(
        len in 0usize..300,
        rows in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 300)),
            0..12,
        ),
    ) {
        let terms: Vec<(Gf256, &[u8])> = rows
            .iter()
            .map(|(c, row)| (Gf256(*c), &row[..len]))
            .collect();
        let mut fused = vec![0u8; len];
        slice_ops::axpy_many(&mut fused, &terms);
        let mut unfused = vec![0u8; len];
        for &(c, row) in &terms {
            scalar::mul_add_assign(&mut unfused, row, c);
        }
        prop_assert_eq!(fused, unfused);
    }
}
