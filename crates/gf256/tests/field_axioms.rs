//! Property-based verification that `Gf256` is a field and that the slice
//! kernels agree with scalar arithmetic.

use more_gf256::{slice_ops, Gf256};
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256)
}

fn gf_nonzero() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256)
}

proptest! {
    #[test]
    fn addition_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutes(a in gf(), b in gf()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_associates(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive_law(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn division_inverts_multiplication(a in gf(), b in gf_nonzero()) {
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn subtraction_inverts_addition(a in gf(), b in gf()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn pow_adds_exponents(a in gf_nonzero(), e1 in 0u32..300, e2 in 0u32..300) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn slice_mul_add_matches_scalar(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        src in proptest::collection::vec(any::<u8>(), 1..512),
        c in gf(),
    ) {
        let n = data.len().min(src.len());
        let mut dst = data[..n].to_vec();
        slice_ops::mul_add_assign(&mut dst, &src[..n], c);
        for i in 0..n {
            prop_assert_eq!(Gf256(dst[i]), Gf256(data[i]) + Gf256(src[i]) * c);
        }
    }

    #[test]
    fn slice_scale_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        c in gf_nonzero(),
    ) {
        let mut v = data.clone();
        slice_ops::mul_assign(&mut v, c);
        slice_ops::mul_assign(&mut v, c.inv());
        prop_assert_eq!(v, data);
    }

    #[test]
    fn dot_is_bilinear(
        a in proptest::collection::vec(any::<u8>(), 8),
        b in proptest::collection::vec(any::<u8>(), 8),
        c in gf(),
    ) {
        // dot(c*a, b) == c * dot(a, b)
        let mut ca = a.clone();
        slice_ops::mul_assign(&mut ca, c);
        prop_assert_eq!(slice_ops::dot(&ca, &b), c * slice_ops::dot(&a, &b));
    }
}
