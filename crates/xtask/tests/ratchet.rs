//! The ratchet binary end to end: bootstrap, steady state, a deliberate
//! regression failing `--check`, and a fall tightening the baseline —
//! plus the analyze output formats CI consumes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask binary")
}

fn tmp_baseline(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    fs::create_dir_all(&dir).expect("create target tmpdir");
    dir.join(name)
}

fn run_ratchet(root: &Path, baseline: &Path, check: bool) -> Output {
    let root = root.to_str().expect("utf8 root");
    let baseline = baseline.to_str().expect("utf8 baseline");
    let mut args = vec!["ratchet", "--root", root, "--baseline", baseline];
    if check {
        args.push("--check");
    }
    xtask(&args)
}

#[test]
fn ratchet_bootstraps_then_holds_steady() {
    let baseline = tmp_baseline("ratchet-bootstrap.json");
    let _ = fs::remove_file(&baseline);
    let root = fixture("ratchet");

    // --check refuses to invent a baseline.
    let out = run_ratchet(&root, &baseline, true);
    assert!(!out.status.success());
    assert!(!baseline.exists());

    // First plain run bootstraps the file with today's counts.
    let out = run_ratchet(&root, &baseline, false);
    assert!(out.status.success(), "{out:?}");
    let text = fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("\"panic_path\": 1"), "{text}");

    // Steady state: same tree, same counts, check passes.
    let out = run_ratchet(&root, &baseline, true);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn ratchet_fails_on_a_deliberate_regression() {
    let baseline = tmp_baseline("ratchet-regression.json");
    // A committed baseline of zero findings makes the fixture's one
    // deliberate unwrap a regression.
    fs::write(
        &baseline,
        "{\n  \"schema\": 1,\n  \"counts\": {\n    \"panic_path\": 0\n  }\n}\n",
    )
    .expect("write regression baseline");

    let out = run_ratchet(&fixture("ratchet"), &baseline, true);
    assert!(!out.status.success(), "a count rise must fail the ratchet");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("`panic_path` rose 0 -> 1"), "{stdout}");

    // --check never rewrites the file, even on failure.
    let text = fs::read_to_string(&baseline).expect("baseline intact");
    assert!(text.contains("\"panic_path\": 0"), "{text}");
}

#[test]
fn ratchet_tightens_the_baseline_when_counts_fall() {
    let baseline = tmp_baseline("ratchet-tighten.json");
    fs::write(
        &baseline,
        "{\n  \"schema\": 1,\n  \"counts\": {\n    \"panic_path\": 2\n  }\n}\n",
    )
    .expect("write loose baseline");

    let out = run_ratchet(&fixture("ratchet"), &baseline, false);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("`panic_path` fell 2 -> 1"), "{stdout}");
    assert!(stdout.contains("baseline tightened"), "{stdout}");
    let text = fs::read_to_string(&baseline).expect("baseline rewritten");
    assert!(text.contains("\"panic_path\": 1"), "{text}");
}

#[test]
fn analyze_github_format_emits_error_annotations() {
    let root = fixture("ratchet");
    let out = xtask(&[
        "analyze",
        "--root",
        root.to_str().expect("utf8 root"),
        "--format",
        "github",
    ]);
    assert!(!out.status.success(), "dirty tree must exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/rlnc/src/lib.rs,line=6,"),
        "{stdout}"
    );
    assert!(stdout.contains("title=xtask panic_path"), "{stdout}");
}

#[test]
fn analyze_json_format_reports_counts() {
    let root = fixture("ratchet");
    let out = xtask(&[
        "analyze",
        "--root",
        root.to_str().expect("utf8 root"),
        "--format",
        "json",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\""), "{stdout}");
    assert!(stdout.contains("\"panic_path\""), "{stdout}");
}
