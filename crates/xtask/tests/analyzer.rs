//! The analyzer against its fixture trees and the real workspace: one
//! test per lint on the deliberately-bad tree, allowlist suppression
//! and accounting, and the real workspace staying clean.

use std::path::PathBuf;
use xtask::{analyze_root, Lint, Report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn bad_report() -> Report {
    analyze_root(&fixture("bad")).expect("analyze bad fixture tree")
}

#[test]
fn bad_tree_is_dirty() {
    assert!(!bad_report().is_clean());
}

#[test]
fn hash_iteration_fires_outside_tests_only() {
    let r = bad_report();
    let lines: Vec<usize> = r.of(Lint::HashIteration).iter().map(|f| f.line).collect();
    // `use HashMap` + two body mentions fire; the #[cfg(test)] HashSet
    // (two mentions) must not.
    assert_eq!(lines, vec![5, 7, 8], "{lines:?}");
}

#[test]
fn wall_clock_fires() {
    let r = bad_report();
    assert_eq!(r.of(Lint::WallClock).len(), 1);
    assert_eq!(r.of(Lint::WallClock)[0].line, 12);
}

#[test]
fn rng_stream_fires_on_entropy_and_unnamed_streams_only() {
    let r = bad_report();
    let lines: Vec<usize> = r.of(Lint::RngStream).iter().map(|f| f.line).collect();
    // thread_rng (17) and the magic-number stream (21) fire; the named
    // *_STREAM constant (25) and the #[cfg(test)] literal seed do not.
    assert_eq!(lines, vec![16, 20], "{lines:?}");
}

#[test]
fn float_ord_fires_including_multiline_chains() {
    let r = bad_report();
    let lines: Vec<usize> = r.of(Lint::FloatOrd).iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![28, 33], "{lines:?}");
}

#[test]
fn undocumented_unsafe_fires_and_is_inventoried() {
    let r = bad_report();
    assert_eq!(r.of(Lint::UndocumentedUnsafe).len(), 1);
    assert_eq!(r.of(Lint::UndocumentedUnsafe)[0].line, 39);
    assert_eq!(r.unsafe_sites.len(), 1);
    assert!(r.unsafe_sites[0].safety.is_none());
}

#[test]
fn missing_forbid_fires_on_the_crate_root() {
    let r = bad_report();
    assert_eq!(r.of(Lint::MissingForbid).len(), 1);
    assert_eq!(
        r.of(Lint::MissingForbid)[0].file,
        "crates/mesh-sim/src/lib.rs"
    );
}

#[test]
fn bad_tree_panic_path_fires_on_the_comparator_unwrap() {
    let r = bad_report();
    let lines: Vec<usize> = r.of(Lint::PanicPath).iter().map(|f| f.line).collect();
    // The float_sort unwrap (28) fires; unwrap_or (34) and the
    // #[cfg(test)] unwrap (51) do not.
    assert_eq!(lines, vec![28], "{lines:?}");
}

#[test]
fn bad_tree_stream_reference_needs_a_registry() {
    let r = bad_report();
    let lines: Vec<usize> = r.of(Lint::StreamRegistry).iter().map(|f| f.line).collect();
    // CHANNEL_STREAM (24) resolves to no registry module in this tree.
    assert_eq!(lines, vec![24], "{lines:?}");
}

#[test]
fn panic_path_fixture_fires_on_explicit_panics_and_indexing_only() {
    let r = analyze_root(&fixture("panic_path")).expect("analyze panic_path tree");
    let findings = r.of(Lint::PanicPath);
    assert!(
        findings.iter().all(|f| f.file == "crates/rlnc/src/lib.rs"),
        "{}",
        r.render()
    );
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    // unwrap, expect, panic!, unreachable!, v[0] — while &v[..], the
    // #[cfg(test)] module, and tests/it.rs stay exempt.
    assert_eq!(lines, vec![7, 11, 16, 23, 28], "{lines:?}");
    // The line allow in lib.rs plus the three sites under kernel.rs's
    // file-scoped allow.
    assert_eq!(
        r.suppressed.get(&Lint::PanicPath),
        Some(&4),
        "{}",
        r.render()
    );
    assert!(r.allows.iter().all(|a| a.used));
}

#[test]
fn stream_registry_fixture_fires_on_rogue_and_unregistered_streams() {
    let r = analyze_root(&fixture("stream_registry")).expect("analyze stream_registry tree");
    let findings = r.of(Lint::StreamRegistry);
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    // ROGUE_STREAM defined outside the registry (5) and the
    // unregistered GHOST_STREAM reference (12) fire; the registered
    // ALPHA_STREAM reference does not.
    assert_eq!(lines, vec![5, 12], "{lines:?}");
    assert_eq!(r.suppressed.get(&Lint::StreamRegistry), Some(&1));
    // Both registered constants are inventoried.
    assert_eq!(r.stream_registry.len(), 2);
    assert!(r.stream_registry.contains_key("ALPHA_STREAM"));
    assert!(r.stream_registry.contains_key("BETA_STREAM"));
}

#[test]
fn pool_pairing_fixture_fires_on_the_leak_only() {
    let r = analyze_root(&fixture("pool_pairing")).expect("analyze pool_pairing tree");
    let findings = r.of(Lint::PoolPairing);
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    // Leaky::grab (10) fires; the sibling-released Paired, the
    // Drop-released Guard, the paired free fn, and the allowed
    // Transfer::grab do not.
    assert_eq!(lines, vec![10], "{lines:?}");
    assert_eq!(r.suppressed.get(&Lint::PoolPairing), Some(&1));
}

#[test]
fn must_use_api_fixture_fires_on_unannotated_chainables_only() {
    let r = analyze_root(&fixture("must_use_api")).expect("analyze must_use_api tree");
    let findings = r.of(Lint::MustUseApi);
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    // RunBuilder::k (11) and make_builder (47) fire; the #[must_use]
    // method, the &Self getter, the Result builder, and the annotated
    // AnnotatedBuilder type's method do not.
    assert_eq!(lines, vec![11, 47], "{lines:?}");
    assert_eq!(r.suppressed.get(&Lint::MustUseApi), Some(&1));
}

#[test]
fn ratchet_fixture_has_exactly_one_deliberate_finding() {
    let r = analyze_root(&fixture("ratchet")).expect("analyze ratchet tree");
    assert_eq!(r.counts().get("panic_path"), Some(&1), "{}", r.render());
}

#[test]
fn allowlist_suppresses_and_every_entry_is_reported() {
    let r = analyze_root(&fixture("allow")).expect("analyze allow fixture tree");
    assert!(
        r.is_clean(),
        "all violations are allowlisted:\n{}",
        r.render()
    );
    // Seven used entries: missing_forbid, 3× hash_iteration, wall_clock,
    // float_ord, panic_path — plus the deliberately-unused rng_stream one.
    assert_eq!(r.allows.len(), 8);
    let unused: Vec<&str> = r
        .allows
        .iter()
        .filter(|a| !a.used)
        .map(|a| a.lint.name())
        .collect();
    assert_eq!(unused, vec!["rng_stream"]);
    let rendered = r.render();
    assert!(rendered.contains("allowlist entries: 8"));
    assert!(rendered.contains("UNUSED"));
    assert!(rendered.contains("lookup-only cache, never iterated"));
}

#[test]
fn real_workspace_is_clean_with_a_fully_documented_unsafe_inventory() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let r = analyze_root(&root).expect("analyze workspace");
    assert!(
        r.is_clean(),
        "workspace must stay lint-clean:\n{}",
        r.render()
    );
    // The audited unsafe surface: the gf256 SIMD kernels (6 dispatch
    // blocks + 6 target_feature fns) and the counting global allocator
    // in the allocation-budget harness (1 impl + 3 fns + 3 forwarding
    // blocks), every site carrying a SAFETY comment.
    assert_eq!(r.unsafe_sites.len(), 19, "{}", r.render());
    assert!(r.unsafe_sites.iter().all(|s| s.safety.is_some()));
    assert!(r
        .unsafe_sites
        .iter()
        .all(|s| s.file == "crates/gf256/src/wide.rs" || s.file == "tests/alloc_budget.rs"));
}
