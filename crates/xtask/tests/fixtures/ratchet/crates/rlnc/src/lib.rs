//! Ratchet fixture: exactly one deliberate panic_path finding, so the
//! ratchet tests can pin counts against a known-dirty tree.
#![forbid(unsafe_code)]

pub fn regression(v: Option<u8>) -> u8 {
    v.unwrap()
}
