//! Integration-test files are exempt from panic_path wholesale.

pub fn helpers_may_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}
