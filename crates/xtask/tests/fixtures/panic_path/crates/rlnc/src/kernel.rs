//! File-scope suppression: one allow covers every site in the file.

// xtask: allow(panic_path, file) -- fixture: whole-file index-arithmetic justification

pub fn all_suppressed(v: &[u8]) -> u8 {
    v[0].wrapping_add(v[1])
}

pub fn also_suppressed(v: Option<u8>) -> u8 {
    v.unwrap()
}
