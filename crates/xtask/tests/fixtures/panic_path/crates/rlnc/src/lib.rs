//! panic_path fixture: explicit panics and direct indexing fire in
//! library code; `[..]`, #[cfg(test)] regions, tests/ files, and
//! allowed sites do not.
#![forbid(unsafe_code)]

pub fn fires_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn fires_expect(v: Option<u8>) -> u8 {
    v.expect("invariant")
}

pub fn fires_panic_macro(x: u8) {
    if x == 0 {
        panic!("zero");
    }
}

pub fn fires_unreachable(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn fires_indexing(v: &[u8]) -> u8 {
    v[0]
}

pub fn range_full_is_fine(v: &[u8]) -> &[u8] {
    &v[..]
}

pub fn allowed_unwrap(v: Option<u8>) -> u8 {
    // xtask: allow(panic_path) -- fixture: invariant justified on the line above
    v.unwrap()
}

#[cfg(test)]
mod test {
    #[test]
    fn tests_may_index_and_unwrap() {
        let v = [1u8];
        assert_eq!(v[0], Some(1u8).unwrap());
    }
}
