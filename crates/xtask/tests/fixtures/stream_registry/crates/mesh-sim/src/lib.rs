//! stream_registry fixture: stray definitions and unregistered
//! references fire; registered references and allowed sites do not.
#![forbid(unsafe_code)]

pub const ROGUE_STREAM: u64 = 0x3;

pub fn uses_registered(seed: u64) -> u64 {
    seed ^ ALPHA_STREAM
}

pub fn uses_unregistered(seed: u64) -> u64 {
    seed ^ GHOST_STREAM
}

pub fn allowed_unregistered(seed: u64) -> u64 {
    // xtask: allow(stream_registry) -- fixture: migration in progress
    seed ^ DELTA_STREAM
}
