//! Fixture registry: the one module allowed to define stream constants.

// xtask: stream-registry

/// Registered stream A.
pub const ALPHA_STREAM: u64 = 0x1;
/// Registered stream B.
pub const BETA_STREAM: u64 = 0x2;
