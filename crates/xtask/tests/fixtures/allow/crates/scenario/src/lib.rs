//! Allowlist fixture: the same violations as the bad tree, each
//! suppressed by a justified `// xtask: allow` comment — plus one
//! unused allow that must surface in the report as UNUSED.

// xtask: allow(missing_forbid) -- fixture exercising root-level allows

use std::collections::HashMap; // xtask: allow(hash_iteration) -- lookup-only cache, never iterated

pub fn wall_clock() -> std::time::Instant {
    // xtask: allow(wall_clock) -- progress display only, never recorded
    std::time::Instant::now()
}

pub fn float_sort(v: &mut [f64]) {
    // xtask: allow(float_ord) -- inputs validated finite by caller
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // xtask: allow(panic_path) -- comparator unwrap on inputs the float_ord allow already validates
}

// xtask: allow(rng_stream) -- this allow is deliberately unused

// xtask: allow(hash_iteration) -- lookup-only cache, never iterated
pub fn lookup_only() -> HashMap<u64, u64> {
    // xtask: allow(hash_iteration) -- lookup-only cache, never iterated
    HashMap::new()
}
