//! must_use_api fixture: chainable pub fns returning `Self` or a
//! `*Builder` by value need #[must_use]; references, Results,
//! annotated types, and allowed sites do not.
#![forbid(unsafe_code)]

pub struct RunBuilder {
    k: usize,
}

impl RunBuilder {
    pub fn k(self, k: usize) -> Self {
        RunBuilder { k }
    }

    #[must_use]
    pub fn packets(self, _n: usize) -> Self {
        self
    }

    pub fn peek(&self) -> &Self {
        self
    }

    pub fn build(self) -> Result<usize, String> {
        Ok(self.k)
    }
}

#[must_use]
pub struct AnnotatedBuilder;

impl AnnotatedBuilder {
    pub fn step(self) -> Self {
        self
    }
}

pub struct Other;

impl Other {
    // xtask: allow(must_use_api) -- fixture: suppressed chainable method
    pub fn chain(self) -> Self {
        self
    }
}

pub fn make_builder() -> RunBuilder {
    RunBuilder { k: 0 }
}
