//! pool_pairing fixture: an acquire with no release path fires; a
//! paired sibling method, a Drop-based release, a paired free fn, and a
//! documented ownership transfer do not.
#![forbid(unsafe_code)]

pub struct Leaky;

impl Leaky {
    pub fn grab(&mut self) {
        let b = pool::acquire(8);
        core::mem::forget(b);
    }
}

pub struct Paired;

impl Paired {
    pub fn grab(&mut self) -> Buf {
        pool::acquire(8)
    }

    pub fn done(&mut self, b: Buf) {
        pool::release(b);
    }
}

pub struct Guard {
    buf: Option<Buf>,
}

impl Guard {
    pub fn grab(&mut self) {
        self.buf = Some(pool::acquire(8));
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(b) = self.buf.take() {
            pool::release(b);
        }
    }
}

pub struct Transfer;

impl Transfer {
    pub fn grab(&mut self) -> Buf {
        // xtask: allow(pool_pairing) -- fixture: ownership transfer documented
        pool::acquire(8)
    }
}

pub fn free_fn_paired() {
    let b = pool::acquire_vec(8);
    pool::release_vec(b);
}
