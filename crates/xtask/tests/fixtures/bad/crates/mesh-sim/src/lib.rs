//! Deliberately-bad fixture: every determinism lint plus an
//! undocumented unsafe block, with a #[cfg(test)] negative control.
//! (No #![forbid(unsafe_code)] here — that is the missing_forbid case.)

use std::collections::HashMap;

pub fn hash_state() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn entropy_rng() {
    let _ = thread_rng();
}

pub fn unnamed_stream(seed: u64, k: u64) {
    let _ = ChaCha8Rng::seed_from_u64(seed ^ k.wrapping_mul(0x9E3779B97F4A7C15));
}

pub fn named_stream_is_fine(seed: u64) {
    let _ = ChaCha8Rng::seed_from_u64(seed ^ CHANNEL_STREAM);
}

pub fn float_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn float_sort_multiline(v: &mut [f64]) {
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

#[cfg(test)]
mod test {
    use std::collections::HashSet;

    #[test]
    fn tests_may_use_hash_containers_and_literal_seeds() {
        let _: HashSet<u64> = HashSet::new();
        let _ = ChaCha8Rng::seed_from_u64(12345);
        let mut v = [2.0f64, 1.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
