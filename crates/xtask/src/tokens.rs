//! Tokenizer over the lexer's comment/string-blanked code lines.
//!
//! Produces the flat token stream the item parser ([`crate::parser`]) and
//! the expression lints walk. Because the input already has comments,
//! strings, and char literals blanked, every brace, bracket, and
//! identifier in the stream is real code — brace matching and path
//! scanning need no further escaping logic.

use crate::lexer::FileView;

/// Token classification, as coarse as the lints need.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (`12`, `0xC4A2_2E1C`, `1.5e3`, `4usize`).
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-char for `::`, `->`, `=>`, `..`, `..=`.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub(crate) struct Token {
    pub text: String,
    pub kind: TokKind,
    pub line: usize,
}

impl Token {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// Multi-char punctuation joined into one token, longest first.
const JOINED: [&str; 5] = ["..=", "::", "->", "=>", ".."];

pub(crate) fn tokenize(view: &FileView) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in view.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokKind::Ident,
                    line: lineno + 1,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[start..i].contains(&'.')
                    {
                        // `1.5`, but not `1..n` and not a second dot.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokKind::Num,
                    line: lineno + 1,
                });
                continue;
            }
            if c == '\'' {
                // The lexer blanked char literals; a surviving quote is a
                // lifetime.
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokKind::Lifetime,
                    line: lineno + 1,
                });
                continue;
            }
            // Punctuation: join the few multi-char operators the parser
            // cares about, emit everything else as single chars.
            let joined = JOINED.iter().find(|op| {
                op.chars()
                    .enumerate()
                    .all(|(k, oc)| chars.get(i + k) == Some(&oc))
            });
            match joined {
                Some(op) => {
                    out.push(Token {
                        text: op.to_string(),
                        kind: TokKind::Punct,
                        line: lineno + 1,
                    });
                    i += op.len();
                }
                None => {
                    out.push(Token {
                        text: c.to_string(),
                        kind: TokKind::Punct,
                        line: lineno + 1,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::lexer::lex;

    fn toks(src: &str) -> Vec<String> {
        tokenize(&lex(src)).iter().map(|t| t.text.clone()).collect()
    }

    #[test]
    fn idents_numbers_and_paths() {
        assert_eq!(
            toks("let x = pool::acquire(0xC4A2_2E1C);"),
            [
                "let",
                "x",
                "=",
                "pool",
                "::",
                "acquire",
                "(",
                "0xC4A2_2E1C",
                ")",
                ";"
            ]
        );
    }

    #[test]
    fn ranges_and_arrows() {
        assert_eq!(
            toks("fn f() -> u8 { v[..] ; w[1..=2]; }"),
            [
                "fn", "f", "(", ")", "->", "u8", "{", "v", "[", "..", "]", ";", "w", "[", "1",
                "..=", "2", "]", ";", "}"
            ]
        );
    }

    #[test]
    fn float_literal_is_one_token() {
        assert_eq!(
            toks("a(1.5e3, 2..4)"),
            ["a", "(", "1.5e3", ",", "2", "..", "4", ")"]
        );
    }

    #[test]
    fn lifetimes_survive() {
        assert_eq!(
            toks("impl<'a> Foo<'a> {}"),
            ["impl", "<", "'a", ">", "Foo", "<", "'a", ">", "{", "}"]
        );
    }

    #[test]
    fn strings_leave_no_tokens() {
        assert_eq!(toks("f(\"x.unwrap()\")"), ["f", "(", ")"]);
    }
}
