//! Line lexer: blanks comments and string/char-literal contents, records
//! line-comment text, and marks `#[cfg(test)]` regions.
//!
//! The lexer is the analyzer's first stage: it turns raw source into
//! per-line views where only *code* characters survive, so neither the
//! line lints nor the tokenizer ([`crate::tokens`]) can be fooled by a
//! lint keyword inside a string, a doc comment, or a nested block
//! comment.

/// Per-line views of one source file.
pub(crate) struct FileView {
    /// Raw lines, as written.
    pub raw: Vec<String>,
    /// Lines with comments and string/char-literal contents blanked to
    /// spaces — what the token lints scan.
    pub code: Vec<String>,
    /// Whether each line sits in a `#[cfg(test)]` region.
    pub test: Vec<bool>,
    /// The text after a line comment's `//`, when the lexer saw one in
    /// code position (so `//` inside a string never counts).
    pub comment: Vec<Option<String>>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    /// Nesting depth of `/* */`.
    Block(usize),
    Str,
    /// `r##"..."##` with this many hashes.
    RawStr(usize),
}

pub(crate) fn lex(text: &str) -> FileView {
    let raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut code = Vec::with_capacity(raw.len());
    let mut comment: Vec<Option<String>> = Vec::with_capacity(raw.len());
    let mut state = LexState::Normal;

    for line in &raw {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut line_comment: Option<String> = None;
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match state {
                LexState::Block(depth) => {
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::Block(depth - 1)
                        };
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Normal;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        state = LexState::Normal;
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::Normal => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: record its text, blank the rest.
                        if line_comment.is_none() {
                            line_comment = Some(bytes[i + 2..].iter().collect());
                        }
                        while i < bytes.len() {
                            out.push(' ');
                            i += 1;
                        }
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        out.push(' ');
                        i += 1;
                    } else if c == 'r' && is_raw_str_start(&bytes, i) {
                        let hashes = count_hashes(&bytes, i + 1);
                        state = LexState::RawStr(hashes);
                        for _ in 0..hashes + 2 {
                            out.push(' ');
                        }
                        i += hashes + 2;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes with
                        // a quote after one (possibly escaped) character.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(bytes.len() - 1) {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            out.push_str("   ");
                            i += 3;
                        } else {
                            // Lifetime: keep as code.
                            out.push('\'');
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
        code.push(out);
        comment.push(line_comment);
    }

    let test = mark_test_regions(&code);
    FileView {
        raw,
        code,
        test,
        comment,
    }
}

fn is_raw_str_start(bytes: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, not part of an identifier like `striped_r`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let hashes = count_hashes(bytes, i + 1);
    bytes.get(i + 1 + hashes) == Some(&'"')
}

fn count_hashes(bytes: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while bytes.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Marks the lines covered by `#[cfg(test)]` items: from the attribute
/// through the matching close brace of the item it gates.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut depth = 0usize;
    let mut region_depth: Option<usize> = None;
    let mut pending = false;

    for (i, line) in code.iter().enumerate() {
        if region_depth.is_some() || pending {
            test[i] = true;
        }
        if line.contains("#[cfg(test") {
            pending = true;
            test[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending = false;
                        test[i] = true;
                    }
                }
                '}' => {
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use …;` — the attribute gated a
                // braceless item; the region ends here.
                ';' if pending && region_depth.is_none() => pending = false,
                _ => {}
            }
        }
    }
    test
}

/// `needle` appears in `haystack` delimited by non-identifier chars.
pub(crate) fn contains_word(haystack: &str, needle: &str) -> bool {
    find_word(haystack, needle).is_some()
}

pub(crate) fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !haystack[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn lexer_blanks_comments_and_strings() {
        let v = lex(
            "let x = \"HashMap\"; // HashMap\nlet y = 'a';\n/* HashMap\nHashMap */ let z = 1;\n",
        );
        assert!(!v.code[0].contains("HashMap"), "{}", v.code[0]);
        assert!(!v.code[1].contains('a'));
        assert!(!v.code[2].contains("HashMap"));
        assert!(v.code[3].contains("let z"));
        assert!(!v.code[3].contains("HashMap"));
    }

    #[test]
    fn lexer_blanks_string_quotes_entirely() {
        let v = lex("let s = \"a[0].unwrap()\";\nlet r = r#\"x[1]\"#;\n");
        assert!(!v.code[0].contains('"'), "{:?}", v.code[0]);
        assert!(!v.code[0].contains("unwrap"));
        assert!(!v.code[1].contains('"'), "{:?}", v.code[1]);
        assert!(!v.code[1].contains("x[1]"));
    }

    #[test]
    fn lexer_keeps_lifetimes() {
        let v = lex("impl<'a> Foo<'a> { fn f(&'a self) {} }\n");
        assert!(v.code[0].contains("<'a>"));
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let v = lex("fn a() {}\n#[cfg(test)]\nmod test {\n    fn b() {}\n}\nfn c() {}\n");
        assert_eq!(v.test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
    }
}
