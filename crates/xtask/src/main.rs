//! `cargo run -p xtask -- analyze [--root DIR]`
//!
//! Runs the determinism and unsafe-audit lints over the workspace and
//! prints the report (findings, unsafe inventory, allowlist accounting).
//! Exits non-zero when any finding survives the allowlist.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- analyze [--root DIR]

Runs the workspace static-analysis suite:
  determinism lints   hash_iteration, wall_clock, rng_stream, float_ord
  unsafe audit        undocumented_unsafe, missing_forbid
  escape hatch        // xtask: allow(<lint>) -- <justification>

--root DIR   analyze DIR instead of the enclosing workspace root
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<&str> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "analyze" if cmd.is_none() => cmd = Some("analyze"),
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("analyze") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace that contains this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("crates/xtask sits two levels below the workspace root")
            .to_path_buf()
    });

    let report = match xtask::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
