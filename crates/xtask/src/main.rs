//! `cargo run -p xtask -- <analyze|ratchet> [..]`
//!
//! `analyze` runs the determinism, panic-freedom, and unsafe-audit lints
//! over the workspace and prints the report (text, JSON, or GitHub
//! annotations). Exits non-zero when any finding survives the allowlist.
//!
//! `ratchet` compares the run's per-lint counts (suppressed findings
//! included) against the committed `xtask-baseline.json`: any rise fails,
//! any fall rewrites the baseline so the improvement locks in.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::{Baseline, BASELINE_FILE};

const USAGE: &str = "\
usage: cargo run -p xtask -- analyze [--root DIR] [--format text|json|github]
       cargo run -p xtask -- ratchet [--root DIR] [--baseline FILE] [--check]

analyze runs the workspace static-analysis suite:
  determinism lints   hash_iteration, wall_clock, rng_stream, float_ord
  panic freedom       panic_path, stream_registry, pool_pairing, must_use_api
  unsafe audit        undocumented_unsafe, missing_forbid
  escape hatch        // xtask: allow(<lint>[, file]) -- <justification>

ratchet compares per-lint counts (allow-suppressed findings included)
against the committed baseline: a rise fails, a fall tightens the file.

--root DIR       analyze DIR instead of the enclosing workspace root
--format FMT     analyze output: text (default), json, github annotations
--baseline FILE  ratchet against FILE instead of <root>/xtask-baseline.json
--check          read-only ratchet: fail on rises, never rewrite the file
";

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut cmd: Option<&str> = None;
    let mut format = "text".to_string();
    let mut baseline_path: Option<PathBuf> = None;
    let mut check = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "analyze" | "ratchet" if cmd.is_none() => {
                cmd = Some(if a == "analyze" { "analyze" } else { "ratchet" })
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return fail_usage("--root needs a directory"),
            },
            "--format" => match it.next() {
                Some(f) if matches!(f.as_str(), "text" | "json" | "github") => {
                    format = f.clone();
                }
                Some(f) => return fail_usage(&format!("unknown format `{f}`")),
                None => return fail_usage("--format needs text|json|github"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return fail_usage("--baseline needs a file"),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail_usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    // Default root: the workspace that contains this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("crates/xtask sits two levels below the workspace root")
            .to_path_buf()
    });

    let report = match xtask::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask {cmd}: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match cmd {
        "analyze" => {
            match format.as_str() {
                "json" => print!("{}", report.to_json()),
                "github" => {
                    print!("{}", report.render_github());
                    // Annotations alone hide the summary; keep it on the
                    // job log too.
                    eprint!("{}", report.render());
                }
                _ => print!("{}", report.render()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            let path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
            let counts = report.counts();
            let current = Baseline::new(counts);
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Bootstrap: no baseline yet — write today's counts.
                    if check {
                        eprintln!(
                            "xtask ratchet: no baseline at {} (run without --check to create it)",
                            path.display()
                        );
                        return ExitCode::FAILURE;
                    }
                    if let Err(e) = fs::write(&path, current.render()) {
                        eprintln!("xtask ratchet: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    println!("xtask ratchet: initialized baseline at {}", path.display());
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("xtask ratchet: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let baseline = match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("xtask ratchet: malformed {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let result = baseline.compare(&current.counts);
            for d in &result.rises {
                println!(
                    "xtask ratchet: `{}` rose {} -> {} (fix the regression or re-justify \
                     the baseline in review)",
                    d.key, d.baseline, d.current
                );
            }
            for d in &result.falls {
                println!(
                    "xtask ratchet: `{}` fell {} -> {}{}",
                    d.key,
                    d.baseline,
                    d.current,
                    if check { " (would tighten)" } else { "" }
                );
            }
            if !result.passed() {
                return ExitCode::FAILURE;
            }
            if !result.falls.is_empty() && !check {
                if let Err(e) = fs::write(&path, current.render()) {
                    eprintln!("xtask ratchet: cannot tighten {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("xtask ratchet: baseline tightened at {}", path.display());
            } else {
                println!(
                    "xtask ratchet: ok ({} counts at baseline)",
                    baseline.counts.len()
                );
            }
            ExitCode::SUCCESS
        }
    }
}
