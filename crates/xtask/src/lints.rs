//! The lint implementations: the line-based determinism lints and unsafe
//! audit carried over from the v1 analyzer, plus the expression-aware
//! families (`panic_path`, `stream_registry`, `pool_pairing`,
//! `must_use_api`) that run over the parsed item/expression model.

use crate::lexer::{contains_word, find_word, FileView};
use crate::parser::ParsedFile;
use crate::tokens::TokKind;
use crate::{Ctx, Finding, Lint, Report, UnsafeSite};

// ---------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------

/// Crates whose containers can leak iteration order into tie-breaks,
/// RNG draws, or serialized records.
pub const ENGINE_CRATES: [&str; 6] = [
    "mesh-sim",
    "scenario",
    "more-core",
    "baselines",
    "rlnc",
    "mesh-metrics",
];

/// Which crate (the `crates/<name>` directory) a workspace-relative path
/// belongs to, if any.
pub(crate) fn crate_of(file: &str) -> Option<&str> {
    let rest = file.strip_prefix("crates/")?;
    rest.split('/').next()
}

pub(crate) fn is_engine_crate(file: &str) -> bool {
    crate_of(file).is_some_and(|c| ENGINE_CRATES.contains(&c))
}

/// Library crates: everything that ships simulation or coding logic.
/// `bench` and `xtask` are operator tooling — panicking on bad input is
/// the right behavior there, so `panic_path` does not apply.
pub(crate) fn is_library_crate(file: &str) -> bool {
    match crate_of(file) {
        Some(c) => !matches!(c, "bench" | "xtask"),
        None => file.starts_with("src/"),
    }
}

/// Crates whose public APIs the `must_use_api` lint covers.
pub(crate) fn is_must_use_crate(file: &str) -> bool {
    matches!(crate_of(file), Some("scenario") | Some("mesh-sim"))
}

/// Paths that hold test or bench harness code: exempt from the
/// determinism and panic-path lints (tests pin literal seeds and unwrap
/// on purpose).
pub(crate) fn is_test_path(file: &str) -> bool {
    file.starts_with("tests/")
        || file.contains("/tests/")
        || file.starts_with("benches/")
        || file.contains("/benches/")
        || file.starts_with("examples/")
        || file.contains("/examples/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every
/// `crates/<name>/src/lib.rs` except gf256 (the one crate allowed
/// `unsafe`), plus the umbrella `src/lib.rs`.
pub(crate) fn requires_forbid(file: &str) -> bool {
    if file == "src/lib.rs" {
        return true;
    }
    match (
        crate_of(file),
        file.split('/').collect::<Vec<_>>().as_slice(),
    ) {
        (Some(c), ["crates", _, "src", "lib.rs"]) => c != "gf256",
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Line-based determinism lints (v1 families).
// ---------------------------------------------------------------------

pub(crate) fn run_line_lints(file: &str, view: &FileView, findings: &mut Vec<Finding>) {
    let in_bench_crate = crate_of(file) == Some("bench");
    let engine = is_engine_crate(file);
    let test_path = is_test_path(file);

    for (i, code) in view.code.iter().enumerate() {
        let line = i + 1;
        if test_path || view.test[i] {
            continue; // determinism lints skip test code
        }
        let push = |lint: Lint, message: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                lint,
                file: file.to_string(),
                line,
                message,
            });
        };

        if engine && (contains_word(code, "HashMap") || contains_word(code, "HashSet")) {
            push(
                Lint::HashIteration,
                "hash containers iterate in RandomState order, which can leak into \
                 tie-breaks, RNG draws, and serialized records; use BTreeMap/BTreeSet \
                 (or allowlist a lookup-only use with a justification)"
                    .to_string(),
                findings,
            );
        }

        if !in_bench_crate && (code.contains("Instant::now") || contains_word(code, "SystemTime")) {
            push(
                Lint::WallClock,
                "wall-clock reads outside crates/bench break run reproducibility; \
                 simulated time is the only clock the engine may consult"
                    .to_string(),
                findings,
            );
        }

        if !in_bench_crate {
            if contains_word(code, "thread_rng") || contains_word(code, "from_entropy") {
                push(
                    Lint::RngStream,
                    "entropy-seeded RNGs make runs irreproducible; derive every RNG \
                     from the run seed via a named *_STREAM constant"
                        .to_string(),
                    findings,
                );
            }
            for arg in call_args(code, "seed_from_u64") {
                if !seed_arg_ok(&arg) {
                    push(
                        Lint::RngStream,
                        format!(
                            "`seed_from_u64({arg})` is not derived from the run seed; \
                             pass the bare seed or `seed ^ <NAME>_STREAM` with a named \
                             stream constant"
                        ),
                        findings,
                    );
                }
            }
        }

        if code.contains("partial_cmp") && !code.contains("fn partial_cmp") {
            let next = view.code.get(i + 1).map(String::as_str).unwrap_or("");
            let unwrapped = [code, next].iter().any(|l| {
                l.contains(".unwrap()") || l.contains(".expect(") || l.contains(".unwrap_or(")
            });
            if unwrapped {
                push(
                    Lint::FloatOrd,
                    "float ordering via partial_cmp + unwrap/expect/unwrap_or panics \
                     (or lies) on NaN; use f64::total_cmp for a deterministic total \
                     order"
                        .to_string(),
                    findings,
                );
            }
        }
    }
}

/// Extracts the argument text of each `name(...)` call on a code line.
fn call_args(code: &str, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos + name.len();
        from = start;
        let rest = &code[start..];
        if !rest.starts_with('(') {
            continue;
        }
        let mut depth = 0usize;
        let mut end = rest.len();
        for (j, c) in rest.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(rest[1..end].trim().to_string());
    }
    out
}

/// A `seed_from_u64` argument is acceptable when it references a named
/// `*_STREAM` constant, or is a plain path expression mentioning the
/// seed (`seed`, `run_seed`, `self.seed`, …) with no arithmetic.
fn seed_arg_ok(arg: &str) -> bool {
    if arg.contains("_STREAM") {
        return true;
    }
    let plain = arg
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | ' '));
    plain && arg.to_lowercase().contains("seed")
}

// ---------------------------------------------------------------------
// Unsafe audit.
// ---------------------------------------------------------------------

pub(crate) fn run_unsafe_audit(
    file: &str,
    view: &FileView,
    findings: &mut Vec<Finding>,
    report: &mut Report,
) {
    for (i, code) in view.code.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = find_word(&code[from..], "unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            let after = code[from..].trim_start();
            let kind = if after.starts_with("fn") {
                "fn"
            } else if after.starts_with("impl") {
                "impl"
            } else if after.starts_with("trait") {
                "trait"
            } else {
                "block"
            };
            let safety = safety_comment(view, i);
            if safety.is_none() {
                findings.push(Finding {
                    lint: Lint::UndocumentedUnsafe,
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "unsafe {kind} without a `// SAFETY:` comment on or directly \
                         above it"
                    ),
                });
            }
            report.unsafe_sites.push(UnsafeSite {
                file: file.to_string(),
                line: i + 1,
                kind,
                safety,
            });
        }
    }
}

/// The `SAFETY:` text for an unsafe site on line `i` (0-based): trailing
/// on the same raw line, or in the contiguous block of comments and
/// attributes directly above.
fn safety_comment(view: &FileView, i: usize) -> Option<String> {
    let extract = |raw: &str| {
        raw.find("SAFETY:")
            .map(|p| raw[p + "SAFETY:".len()..].trim().to_string())
    };
    if let Some(text) = view.comment[i].as_deref().and_then(extract) {
        return Some(text);
    }
    for j in (0..i).rev() {
        let t = view.raw[j].trim();
        if t.starts_with("//") {
            if let Some(text) = extract(t) {
                return Some(text);
            }
        } else if !t.starts_with("#[") && !t.starts_with("#![") {
            break;
        }
    }
    None
}

pub(crate) fn run_forbid_lint(file: &str, view: &FileView, findings: &mut Vec<Finding>) {
    if !requires_forbid(file) {
        return;
    }
    let has = view
        .code
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has {
        findings.push(Finding {
            lint: Lint::MissingForbid,
            file: file.to_string(),
            line: 1,
            message: "crate root lacks #![forbid(unsafe_code)]; only crates/gf256 may \
                      contain unsafe so the audit inventory stays in one place"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// Expression-aware lints (v2 families).
// ---------------------------------------------------------------------

/// Panicking method calls `panic_path` flags.
const PANICKY_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
/// Panicking macros `panic_path` flags. `assert*!` is deliberately not
/// here: an explicit assertion is a documented contract, not an
/// accidental panic path.
const PANICKY_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that make a following `[` an array literal or pattern, not an
/// index expression.
const NON_INDEX_PREV: [&str; 16] = [
    "return", "break", "continue", "if", "else", "match", "in", "loop", "while", "for", "move",
    "ref", "let", "use", "mod", "where",
];

pub(crate) fn run_expr_lints(
    file: &str,
    pf: &ParsedFile,
    view: &FileView,
    ctx: &Ctx,
    findings: &mut Vec<Finding>,
) {
    let test_path = is_test_path(file);
    let exempt = |line: usize| test_path || view.test.get(line - 1).copied().unwrap_or(false);
    let library = is_library_crate(file);
    let is_registry = ctx.registry_files.iter().any(|f| f == file);

    for (i, t) in pf.tokens.iter().enumerate() {
        if pf.in_attr(i) || exempt(t.line) {
            continue;
        }

        // --- stream_registry: every *_STREAM identifier must resolve to
        // a constant defined in the canonical registry module.
        if t.kind == TokKind::Ident && t.text.ends_with("_STREAM") && t.text.len() > "_STREAM".len()
        {
            let is_def_here = pf
                .consts
                .iter()
                .any(|c| c.name == t.text && c.line == t.line);
            if is_def_here {
                if !is_registry {
                    findings.push(Finding {
                        lint: Lint::StreamRegistry,
                        file: file.to_string(),
                        line: t.line,
                        message: format!(
                            "stream constant `{}` is defined outside the canonical \
                             registry module (the file marked `// xtask: \
                             stream-registry`); move it there so every RNG stream \
                             stays workspace-unique and auditable in one place",
                            t.text
                        ),
                    });
                }
            } else if !ctx.streams.contains_key(&t.text) {
                let hint = if ctx.registry_files.is_empty() {
                    "no stream-registry module exists yet (mark one with a `// xtask: \
                     stream-registry` comment)"
                } else {
                    "add it to the registry module"
                };
                findings.push(Finding {
                    lint: Lint::StreamRegistry,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` does not name a registered stream constant; {hint}",
                        t.text
                    ),
                });
            }
        }

        if !library {
            continue;
        }

        // --- panic_path: unwrap/expect method calls.
        if t.is(".") {
            if let (Some(name), Some(paren)) = (pf.tokens.get(i + 1), pf.tokens.get(i + 2)) {
                if name.kind == TokKind::Ident
                    && PANICKY_METHODS.contains(&name.text.as_str())
                    && paren.is("(")
                    && !exempt(name.line)
                {
                    findings.push(Finding {
                        lint: Lint::PanicPath,
                        file: file.to_string(),
                        line: name.line,
                        message: format!(
                            "`.{}(..)` panics in library code; return a typed error \
                             (or justify the invariant with an allow)",
                            name.text
                        ),
                    });
                }
            }
        }

        // --- panic_path: panicking macros.
        if t.kind == TokKind::Ident
            && PANICKY_MACROS.contains(&t.text.as_str())
            && pf.tokens.get(i + 1).is_some_and(|n| n.is("!"))
        {
            findings.push(Finding {
                lint: Lint::PanicPath,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{}!` in library code aborts the whole simulation; return a \
                     typed error (or justify the invariant with an allow)",
                    t.text
                ),
            });
        }

        // --- panic_path: direct indexing inside fn bodies.
        if t.is("[") && i > 0 && pf.enclosing_fn(i).is_some() {
            let prev = &pf.tokens[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_PREV.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is("]") || prev.is(")"),
                _ => false,
            };
            // `[..]` (RangeFull) cannot panic on a slice/Vec.
            let range_full = pf.tokens.get(i + 1).is_some_and(|n| n.is(".."))
                && pf.tokens.get(i + 2).is_some_and(|n| n.is("]"));
            if indexes && !range_full && !pf.in_attr(i - 1) {
                findings.push(Finding {
                    lint: Lint::PanicPath,
                    file: file.to_string(),
                    line: t.line,
                    message: "direct indexing panics when out of bounds; use get()/\
                              iterators, or justify the bound with an allow"
                        .to_string(),
                });
            }
        }

        // --- pool_pairing: acquire sites need a reachable release.
        if t.kind == TokKind::Ident
            && t.is("pool")
            && pf.tokens.get(i + 1).is_some_and(|n| n.is("::"))
        {
            if let Some(callee) = pf.tokens.get(i + 2) {
                let flavor = match callee.text.as_str() {
                    "acquire" => Some(PoolFlavor::Buffer),
                    "acquire_vec" => Some(PoolFlavor::Vec),
                    _ => None,
                };
                if let Some(flavor) = flavor {
                    if !acquire_is_paired(pf, i, flavor) {
                        findings.push(Finding {
                            lint: Lint::PoolPairing,
                            file: file.to_string(),
                            line: callee.line,
                            message: format!(
                                "`pool::{}` has no reachable `pool::{}` in the same \
                                 impl (or a Drop impl for the same type in this \
                                 file); pair it, or document the ownership transfer \
                                 with an allow",
                                callee.text,
                                flavor.release_names().join("`/`pool::"),
                            ),
                        });
                    }
                }
            }
        }
    }

    run_must_use_lint(file, pf, ctx, findings, &exempt);
}

#[derive(Clone, Copy, PartialEq)]
enum PoolFlavor {
    /// Flat packet buffers: `acquire` ↔ `release`/`release_mut`.
    Buffer,
    /// Row vectors: `acquire_vec` ↔ `release_vec`.
    Vec,
}

impl PoolFlavor {
    fn release_names(self) -> &'static [&'static str] {
        match self {
            PoolFlavor::Buffer => &["release", "release_mut"],
            PoolFlavor::Vec => &["release_vec"],
        }
    }
}

/// Whether the acquire at token `i` has a matching release in the same
/// impl block, in a Drop impl for the same type in this file, or (for
/// free functions) in the same fn body.
fn acquire_is_paired(pf: &ParsedFile, i: usize, flavor: PoolFlavor) -> bool {
    let released_within = |span: (usize, usize)| {
        (span.0..=span.1.min(pf.tokens.len().saturating_sub(1))).any(|j| {
            pf.tokens[j].is("pool")
                && pf.tokens.get(j + 1).is_some_and(|n| n.is("::"))
                && pf
                    .tokens
                    .get(j + 2)
                    .is_some_and(|n| flavor.release_names().contains(&n.text.as_str()))
        })
    };
    match pf.enclosing_impl(i) {
        // The release may live in the same impl, a sibling *inherent*
        // impl of the same type, or that type's Drop impl — but a release
        // inside some unrelated trait impl doesn't make the acquire safe.
        Some(im) => pf.impls.iter().any(|other| {
            other.type_name == im.type_name
                && (other.span == im.span
                    || other.trait_name.is_none()
                    || other.trait_name.as_deref() == Some("Drop"))
                && released_within(other.span)
        }),
        None => pf
            .enclosing_fn(i)
            .and_then(|f| f.body)
            .is_some_and(released_within),
    }
}

/// `must_use_api`: public builder- or `Self`-returning fns in the
/// scenario and mesh-sim crates must be un-ignorable. `Result`/`Option`
/// returns satisfy the lint intrinsically (the std types are already
/// `#[must_use]`, and doubling the attribute would trip
/// `clippy::double_must_use`).
fn run_must_use_lint(
    file: &str,
    pf: &ParsedFile,
    ctx: &Ctx,
    findings: &mut Vec<Finding>,
    exempt: &dyn Fn(usize) -> bool,
) {
    if !is_must_use_crate(file) {
        return;
    }
    for f in &pf.fns {
        if !f.is_pub || exempt(f.line) || f.ret.is_empty() {
            continue;
        }
        // By-reference and opaque returns don't need the attribute: the
        // receiver still owns the data.
        if matches!(f.ret[0].as_str(), "&" | "impl" | "(") {
            continue;
        }
        let base = leading_path_segment(&f.ret);
        if base.is_empty() || matches!(base.as_str(), "Result" | "Option") {
            continue; // Result/Option are intrinsically #[must_use]
        }
        let needs = base == "Self" || base.ends_with("Builder");
        if !needs {
            continue;
        }
        let resolved = if base == "Self" {
            match &f.impl_type {
                Some(t) => t.clone(),
                None => continue, // trait signature: impls resolve it
            }
        } else {
            base.clone()
        };
        let satisfied = f.must_use || ctx.must_use_types.contains(&resolved);
        if !satisfied {
            findings.push(Finding {
                lint: Lint::MustUseApi,
                file: file.to_string(),
                line: f.line,
                message: format!(
                    "public fn `{}` returns `{base}` by value; dropping it silently \
                     discards the configured {resolved} — add #[must_use] to the fn \
                     or to `{resolved}` itself",
                    f.name
                ),
            });
        }
    }
}

/// Last identifier of the leading path of a return-type token list:
/// `io :: Result < () >` → `Result`, `Self` → `Self`.
fn leading_path_segment(ret: &[String]) -> String {
    let mut last = String::new();
    let mut i = 0;
    while i < ret.len() {
        let t = &ret[i];
        let is_ident = t
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_');
        if is_ident {
            last = t.clone();
            match ret.get(i + 1) {
                Some(n) if n == "::" => i += 2,
                _ => break,
            }
        } else {
            break;
        }
    }
    last
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn seed_args_classified() {
        assert!(seed_arg_ok("seed"));
        assert!(seed_arg_ok("run_seed"));
        assert!(seed_arg_ok("self.seed"));
        assert!(seed_arg_ok("seed ^ CHANNEL_STREAM"));
        assert!(seed_arg_ok("seed ^ attempt.wrapping_mul(GEO_STREAM)"));
        assert!(!seed_arg_ok("12345"));
        assert!(!seed_arg_ok("seed * 31 + k"));
        assert!(!seed_arg_ok("k as u64"));
    }

    #[test]
    fn engine_crate_classification() {
        assert!(is_engine_crate("crates/mesh-sim/src/simulator.rs"));
        assert!(is_engine_crate("crates/scenario/src/sink.rs"));
        assert!(!is_engine_crate("crates/bench/src/stats.rs"));
        assert!(!is_engine_crate("crates/gf256/src/wide.rs"));
        assert!(!is_engine_crate("src/lib.rs"));
        assert!(!is_engine_crate("examples/quickstart.rs"));
    }

    #[test]
    fn library_crate_classification() {
        assert!(is_library_crate("crates/rlnc/src/decoder.rs"));
        assert!(is_library_crate("crates/gf256/src/wide.rs"));
        assert!(is_library_crate("crates/mesh-topology/src/json.rs"));
        assert!(is_library_crate("src/lib.rs"));
        assert!(!is_library_crate("crates/bench/src/stats.rs"));
        assert!(!is_library_crate("crates/xtask/src/lints.rs"));
        assert!(!is_library_crate("examples/quickstart.rs"));
    }

    #[test]
    fn forbid_required_everywhere_but_gf256() {
        assert!(requires_forbid("src/lib.rs"));
        assert!(requires_forbid("crates/mesh-sim/src/lib.rs"));
        assert!(requires_forbid("crates/xtask/src/lib.rs"));
        assert!(!requires_forbid("crates/gf256/src/lib.rs"));
        assert!(!requires_forbid("crates/mesh-sim/src/simulator.rs"));
    }

    #[test]
    fn leading_path_segment_resolves() {
        let toks = |s: &str| s.split(' ').map(str::to_string).collect::<Vec<_>>();
        assert_eq!(leading_path_segment(&toks("Self")), "Self");
        assert_eq!(
            leading_path_segment(&toks("io :: Result < ( ) >")),
            "Result"
        );
        assert_eq!(
            leading_path_segment(&toks("ScenarioBuilder")),
            "ScenarioBuilder"
        );
        assert_eq!(leading_path_segment(&toks("Vec < u8 >")), "Vec");
    }
}
