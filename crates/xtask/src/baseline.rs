//! The lint ratchet: a committed baseline of per-lint counts that CI
//! compares against every run.
//!
//! The counts include findings *suppressed by allows*, so the workspace
//! can be `analyze`-clean while the ratchet still tracks escape-hatch
//! creep: adding an allow raises a count and fails the ratchet until the
//! baseline is deliberately re-committed. When counts fall, `ratchet`
//! rewrites the baseline in place so the improvement locks in.
//!
//! The file format is a tiny, stable JSON object (hand-rolled here —
//! xtask takes no dependencies):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "counts": { "panic_path": 12, "unsafe_sites": 19 }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "xtask-baseline.json";

/// The committed per-lint counts the ratchet compares against.
#[derive(Debug, PartialEq, Eq)]
pub struct Baseline {
    /// Ratchet key (lint name, `unsafe_sites`, `unused_allows`) → count.
    pub counts: BTreeMap<String, usize>,
}

/// One count that moved between the baseline and the current run.
#[derive(Debug, PartialEq, Eq)]
pub struct Delta {
    /// The ratchet key that moved.
    pub key: String,
    /// The committed count.
    pub baseline: usize,
    /// The count this run produced.
    pub current: usize,
}

/// Outcome of comparing current counts against the baseline.
#[derive(Debug, Default)]
pub struct RatchetResult {
    /// Counts that rose — each one fails the ratchet.
    pub rises: Vec<Delta>,
    /// Counts that fell — the baseline should tighten to these.
    pub falls: Vec<Delta>,
}

impl RatchetResult {
    /// No count rose above its baseline.
    pub fn passed(&self) -> bool {
        self.rises.is_empty()
    }
}

impl Baseline {
    /// A baseline holding exactly these counts.
    pub fn new(counts: BTreeMap<String, usize>) -> Self {
        Baseline { counts }
    }

    /// Compares `current` counts against this baseline. Keys absent from
    /// the baseline start at zero (a brand-new lint with findings is a
    /// rise); keys absent from `current` count as zero now (a retired
    /// lint's findings fall away).
    pub fn compare(&self, current: &BTreeMap<String, usize>) -> RatchetResult {
        let mut keys: Vec<&String> = self.counts.keys().chain(current.keys()).collect();
        keys.sort();
        keys.dedup();
        let mut result = RatchetResult::default();
        for key in keys {
            let base = self.counts.get(key).copied().unwrap_or(0);
            let cur = current.get(key).copied().unwrap_or(0);
            let delta = Delta {
                key: key.clone(),
                baseline: base,
                current: cur,
            };
            if cur > base {
                result.rises.push(delta);
            } else if cur < base {
                result.falls.push(delta);
            }
        }
        result
    }

    /// Canonical serialized form — stable key order, one count per line,
    /// so baseline diffs in review show exactly which lint moved.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"counts\": {\n");
        let last = self.counts.len().saturating_sub(1);
        for (i, (key, count)) in self.counts.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(out, "    \"{key}\": {count}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the baseline file. The grammar is exactly what `render`
    /// emits plus whitespace freedom: string keys mapped to non-negative
    /// integers inside the `"counts"` object.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let counts_at = text
            .find("\"counts\"")
            .ok_or_else(|| "baseline has no \"counts\" key".to_string())?;
        let rest = &text[counts_at + "\"counts\"".len()..];
        let open = rest
            .find('{')
            .ok_or_else(|| "\"counts\" is not an object".to_string())?;
        let body = &rest[open + 1..];
        let close = body
            .find('}')
            .ok_or_else(|| "unterminated \"counts\" object".to_string())?;
        let body = &body[..close];

        let mut counts = BTreeMap::new();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key_part, val_part) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed counts entry `{entry}`"))?;
            let key = key_part.trim().trim_matches('"');
            if key.is_empty() {
                return Err(format!("empty key in counts entry `{entry}`"));
            }
            let value: usize = val_part
                .trim()
                .parse()
                .map_err(|_| format!("non-integer count in `{entry}`"))?;
            if counts.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate counts key `{key}`"));
            }
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod test {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::new(counts(&[("panic_path", 12), ("unsafe_sites", 19)]));
        let parsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn parse_tolerates_whitespace() {
        let b = Baseline::parse("{\"schema\":1,\"counts\":{\"a\":1,  \"b\" : 2 }}").unwrap();
        assert_eq!(b.counts, counts(&[("a", 1), ("b", 2)]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"counts\": {\"a\": -1}}").is_err());
        assert!(Baseline::parse("{\"counts\": {\"a\": 1, \"a\": 2}}").is_err());
    }

    #[test]
    fn rises_fail_falls_tighten() {
        let b = Baseline::new(counts(&[("panic_path", 5), ("pool_pairing", 2)]));
        let r = b.compare(&counts(&[("panic_path", 6), ("pool_pairing", 1)]));
        assert!(!r.passed());
        assert_eq!(r.rises.len(), 1);
        assert_eq!(r.rises[0].key, "panic_path");
        assert_eq!(r.falls.len(), 1);
        assert_eq!(r.falls[0].key, "pool_pairing");
    }

    #[test]
    fn new_keys_count_from_zero() {
        let b = Baseline::new(counts(&[]));
        let r = b.compare(&counts(&[("stream_registry", 1)]));
        assert_eq!(r.rises.len(), 1);
        let r2 = Baseline::new(counts(&[("gone", 3)])).compare(&counts(&[]));
        assert!(r2.passed());
        assert_eq!(r2.falls.len(), 1);
    }
}
