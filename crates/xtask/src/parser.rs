//! Lightweight item/expression model over the token stream.
//!
//! One pass over a file's tokens recovers the structure the
//! expression-aware lints need: function signatures (visibility,
//! `#[must_use]`, return-type tokens, body spans), `impl` blocks (type
//! name, optional trait, span), `const` items, `#[must_use]`-annotated
//! type declarations, and attribute spans (so expression scans never
//! mistake `#[derive(..)]` brackets for indexing).
//!
//! This is deliberately not a full Rust parser: it tracks brace/angle
//! nesting and item-introducer keywords, which is exactly enough to
//! answer "which impl/fn contains token *i*" and "what does this pub fn
//! return" on the subset of Rust this workspace writes (no macro_rules
//! definitions, no exotic item positions).

use crate::tokens::{TokKind, Token};

/// One `fn` item (free, inherent, trait-required, or nested).
pub(crate) struct FnSig {
    pub name: String,
    pub line: usize,
    /// `pub` without a restriction — `pub(crate)`/`pub(super)` are not
    /// public API and count as private here.
    pub is_pub: bool,
    /// Carried a `#[must_use]` attribute.
    pub must_use: bool,
    /// Return-type token texts (empty when the fn returns `()`).
    pub ret: Vec<String>,
    /// Token-index span of the body `{ .. }`, inclusive; `None` for
    /// trait-required signatures ending in `;`.
    pub body: Option<(usize, usize)>,
    /// Self type of the enclosing `impl` block, when inside one.
    pub impl_type: Option<String>,
}

/// One `impl` block.
pub(crate) struct ImplBlock {
    /// Last path segment of the self type (`Decoder`, `ScenarioBuilder`).
    pub type_name: String,
    /// Last path segment of the trait, for trait impls (`Drop`, `Clone`).
    pub trait_name: Option<String>,
    /// Token-index span of the `{ .. }`, inclusive.
    pub span: (usize, usize),
}

/// One `const NAME: ty = value;` item.
pub(crate) struct ConstItem {
    pub name: String,
    pub line: usize,
    /// Joined token texts of the initializer expression.
    pub value: String,
}

/// Everything the parser recovered from one file.
pub(crate) struct ParsedFile {
    pub tokens: Vec<Token>,
    pub fns: Vec<FnSig>,
    pub impls: Vec<ImplBlock>,
    pub consts: Vec<ConstItem>,
    /// Names of `struct`/`enum` declarations carrying `#[must_use]`.
    pub must_use_types: Vec<String>,
    /// Token-index spans (inclusive) of `#[..]` / `#![..]` attributes.
    attr_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Whether token `i` sits inside an attribute.
    pub fn in_attr(&self, i: usize) -> bool {
        // Spans are few and sorted; a linear probe keeps this simple.
        self.attr_spans.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// The innermost impl block whose span contains token `i`.
    pub fn enclosing_impl(&self, i: usize) -> Option<&ImplBlock> {
        self.impls
            .iter()
            .filter(|im| im.span.0 <= i && i <= im.span.1)
            .min_by_key(|im| im.span.1 - im.span.0)
    }

    /// The innermost fn whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSig> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= i && i <= b))
            .min_by_key(|f| {
                let (a, b) = f.body.unwrap_or((0, usize::MAX));
                b - a
            })
    }
}

/// What an open `{` belonged to, so the matching `}` can patch its span.
enum Open {
    Fn(usize),
    Impl(usize),
    Other,
}

pub(crate) fn parse(tokens: Vec<Token>) -> ParsedFile {
    let mut fns: Vec<FnSig> = Vec::new();
    let mut impls: Vec<ImplBlock> = Vec::new();
    let mut consts: Vec<ConstItem> = Vec::new();
    let mut must_use_types: Vec<String> = Vec::new();
    let mut attr_spans: Vec<(usize, usize)> = Vec::new();

    // Pending state between an attribute/visibility run and its item.
    let mut pending_must_use = false;
    let mut pending_pub = false;

    let mut stack: Vec<Open> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "#") => {
                // `#[..]` or `#![..]`: record the span, harvest idents.
                let start = i;
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is("!")) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is("[")) {
                    let mut bd = 0usize;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "[" => bd += 1,
                            "]" => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if tokens[start + 1..j.min(tokens.len())]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.is("must_use"))
                    {
                        pending_must_use = true;
                    }
                    attr_spans.push((start, j.min(tokens.len().saturating_sub(1))));
                    i = j + 1;
                } else {
                    i += 1;
                }
            }
            (TokKind::Ident, "pub") => {
                // `pub(crate)`/`pub(super)`/`pub(in ..)` are not public.
                if tokens.get(i + 1).is_some_and(|t| t.is("(")) {
                    i = skip_group(&tokens, i + 1, "(", ")");
                } else {
                    pending_pub = true;
                    i += 1;
                }
            }
            (TokKind::Ident, "fn") => {
                let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let mut sig = FnSig {
                    name: name_tok.text.clone(),
                    line: name_tok.line,
                    is_pub: pending_pub,
                    must_use: pending_must_use,
                    ret: Vec::new(),
                    body: None,
                    impl_type: stack.iter().rev().find_map(|o| match o {
                        Open::Impl(k) => Some(impls[*k].type_name.clone()),
                        _ => None,
                    }),
                };
                pending_pub = false;
                pending_must_use = false;
                let mut j = i + 2;
                j = skip_generics(&tokens, j);
                j = skip_group(&tokens, j, "(", ")");
                if tokens.get(j).is_some_and(|t| t.is("->")) {
                    j += 1;
                    while j < tokens.len() {
                        let tt = &tokens[j];
                        if tt.is("{") || tt.is(";") || tt.is("where") {
                            break;
                        }
                        sig.ret.push(tt.text.clone());
                        j += 1;
                    }
                }
                // Scan to the body `{` (skipping a where clause) or `;`.
                while j < tokens.len() && !tokens[j].is("{") && !tokens[j].is(";") {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is("{")) {
                    sig.body = Some((j, j)); // end patched on close
                    fns.push(sig);
                    stack.push(Open::Fn(fns.len() - 1));
                } else {
                    fns.push(sig);
                }
                i = j + 1;
            }
            (TokKind::Ident, "impl") => {
                let mut j = skip_generics(&tokens, i + 1);
                // Path(s) up to `{`: the self type is the segment after
                // `for` when present, otherwise the first path.
                let mut ty: Vec<&Token> = Vec::new();
                while j < tokens.len() {
                    let tt = &tokens[j];
                    if tt.is("{") || tt.is("where") {
                        break;
                    }
                    if tt.is("for") {
                        ty.clear(); // what came before was the trait
                        j += 1;
                        continue;
                    }
                    if tt.is("<") {
                        j = skip_generics(&tokens, j);
                        continue;
                    }
                    ty.push(tt);
                    j += 1;
                }
                let trait_name = trait_of(&tokens, i + 1, j);
                while j < tokens.len() && !tokens[j].is("{") {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is("{")) {
                    impls.push(ImplBlock {
                        type_name: last_path_segment(&ty),
                        trait_name,
                        span: (j, j), // end patched on close
                    });
                    stack.push(Open::Impl(impls.len() - 1));
                    i = j + 1;
                } else {
                    i = j;
                }
                pending_pub = false;
                pending_must_use = false;
            }
            (TokKind::Ident, "struct" | "enum" | "union" | "trait") => {
                if pending_must_use && !t.is("trait") {
                    if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        must_use_types.push(name.text.clone());
                    }
                }
                pending_pub = false;
                pending_must_use = false;
                i += 1;
            }
            (TokKind::Ident, "const") => {
                // `const NAME: ty = value;` — but not `const fn`, not the
                // anonymous `const { .. }` block.
                let is_item = tokens
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && !n.is("fn"))
                    && tokens.get(i + 2).is_some_and(|t| t.is(":"));
                if is_item {
                    let name = &tokens[i + 1];
                    let mut j = i + 3;
                    while j < tokens.len() && !tokens[j].is("=") && !tokens[j].is(";") {
                        j += 1;
                    }
                    let mut value = Vec::new();
                    if tokens.get(j).is_some_and(|t| t.is("=")) {
                        j += 1;
                        while j < tokens.len() && !tokens[j].is(";") {
                            value.push(tokens[j].text.clone());
                            j += 1;
                        }
                    }
                    consts.push(ConstItem {
                        name: name.text.clone(),
                        line: name.line,
                        value: value.join(" "),
                    });
                    pending_pub = false;
                    pending_must_use = false;
                    i = j;
                } else {
                    // `const fn` keeps pending attrs for the fn; `const {`
                    // is an expression block.
                    i += 1;
                }
            }
            (TokKind::Punct, "{") => {
                stack.push(Open::Other);
                i += 1;
            }
            (TokKind::Punct, "}") => {
                match stack.pop() {
                    Some(Open::Fn(k)) => {
                        if let Some(body) = &mut fns[k].body {
                            body.1 = i;
                        }
                    }
                    Some(Open::Impl(k)) => impls[k].span.1 = i,
                    _ => {}
                }
                i += 1;
            }
            (TokKind::Ident, other) if !is_item_modifier(other) => {
                pending_pub = false;
                pending_must_use = false;
                i += 1;
            }
            (TokKind::Punct, _) => {
                pending_pub = false;
                pending_must_use = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    ParsedFile {
        tokens,
        fns,
        impls,
        consts,
        must_use_types,
        attr_spans,
    }
}

/// Keywords that may sit between an attribute and the item it gates
/// without dropping the pending attribute set.
fn is_item_modifier(text: &str) -> bool {
    matches!(text, "unsafe" | "async" | "extern" | "default")
}

/// The trait name of `impl .. for ..`, if a `for` appears before `end`.
fn trait_of(tokens: &[Token], from: usize, end: usize) -> Option<String> {
    let mut path: Vec<&Token> = Vec::new();
    let mut j = from;
    while j < end.min(tokens.len()) {
        let tt = &tokens[j];
        if tt.is("for") {
            return Some(last_path_segment(&path));
        }
        if tt.is("<") {
            j = skip_generics(tokens, j);
            continue;
        }
        path.push(tt);
        j += 1;
    }
    None
}

/// Skips a balanced `<..>` generics group starting at `i` (no-op when the
/// token there is not `<`). `->` is a single token, so it never unbalances
/// the angle count.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    if !tokens.get(i).is_some_and(|t| t.is("<")) {
        return i;
    }
    let mut d = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "<" => d += 1,
            ">" => {
                d -= 1;
                if d == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skips a balanced group opened by `open` at `i` (no-op otherwise).
fn skip_group(tokens: &[Token], mut i: usize, open: &str, close: &str) -> usize {
    if !tokens.get(i).is_some_and(|t| t.is(open)) {
        return i;
    }
    let mut d = 0usize;
    while i < tokens.len() {
        if tokens[i].is(open) {
            d += 1;
        } else if tokens[i].is(close) {
            d -= 1;
            if d == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Last identifier of the leading path in a type token list, skipping
/// references, lifetimes, and `dyn`/`mut`: `&mut fmt::Display` →
/// `Display`, `ScenarioBuilder` → `ScenarioBuilder`.
fn last_path_segment(ty: &[&Token]) -> String {
    let mut last = String::new();
    for t in ty {
        match t.kind {
            TokKind::Ident if !matches!(t.text.as_str(), "dyn" | "mut") => {
                last = t.text.clone();
            }
            TokKind::Punct if t.is("&") || t.is("::") => continue,
            TokKind::Lifetime => continue,
            _ => break,
        }
    }
    last
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::lexer::lex;
    use crate::tokens::tokenize;

    fn parsed(src: &str) -> ParsedFile {
        parse(tokenize(&lex(src)))
    }

    #[test]
    fn fn_signature_with_return_type() {
        let p = parsed("pub fn topology(mut self, spec: TopologySpec) -> Self {\n    self\n}\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "topology");
        assert!(f.is_pub);
        assert!(!f.must_use);
        assert_eq!(f.ret, ["Self"]);
        assert!(f.body.is_some());
    }

    #[test]
    fn must_use_attr_and_type_registry() {
        let p = parsed("#[must_use]\npub fn f() -> Self { self }\n#[must_use = \"reason\"]\npub struct ScenarioBuilder {\n    x: u8,\n}\n");
        assert!(p.fns[0].must_use);
        assert_eq!(p.must_use_types, ["ScenarioBuilder"]);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let p = parsed("pub(crate) fn f() -> Self {}\npub fn g() {}\n");
        assert!(!p.fns[0].is_pub);
        assert!(p.fns[1].is_pub);
    }

    #[test]
    fn impl_blocks_carry_type_and_trait() {
        let p = parsed(
            "impl<'a> Decoder<'a> {\n    fn a(&self) {}\n}\nimpl Drop for Decoder<'_> {\n    fn drop(&mut self) {}\n}\n",
        );
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].type_name, "Decoder");
        assert_eq!(p.impls[0].trait_name, None);
        assert_eq!(p.impls[1].type_name, "Decoder");
        assert_eq!(p.impls[1].trait_name.as_deref(), Some("Drop"));
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Decoder"));
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("Decoder"));
    }

    #[test]
    fn const_items_capture_value_tokens() {
        let p = parsed("pub const CHANNEL_STREAM: u64 = 0xC4A2_2E1C_51A7_0DE1;\n");
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.consts[0].name, "CHANNEL_STREAM");
        assert_eq!(p.consts[0].value, "0xC4A2_2E1C_51A7_0DE1");
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let p = parsed("pub const fn k(&self) -> usize { self.k }\n");
        assert!(p.consts.is_empty());
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "k");
        assert!(p.fns[0].is_pub);
    }

    #[test]
    fn attr_spans_cover_brackets() {
        let p = parsed("#[derive(Clone, Debug)]\nstruct X {\n    v: Vec<u8>,\n}\n");
        // The `[` of the derive attribute is inside an attr span.
        let bracket = p
            .tokens
            .iter()
            .position(|t| t.is("["))
            .expect("derive bracket");
        assert!(p.in_attr(bracket));
    }

    #[test]
    fn enclosing_fn_and_impl_resolve() {
        let p = parsed(
            "impl Foo {\n    fn a(&self) {\n        let x = 1;\n    }\n}\nfn free() {\n    let y = 2;\n}\n",
        );
        let x = p.tokens.iter().position(|t| t.is("x")).expect("x token");
        assert_eq!(p.enclosing_fn(x).map(|f| f.name.as_str()), Some("a"));
        assert_eq!(
            p.enclosing_impl(x).map(|im| im.type_name.as_str()),
            Some("Foo")
        );
        let y = p.tokens.iter().position(|t| t.is("y")).expect("y token");
        assert_eq!(p.enclosing_fn(y).map(|f| f.name.as_str()), Some("free"));
        assert!(p.enclosing_impl(y).is_none());
    }

    #[test]
    fn where_clause_does_not_pollute_return_type() {
        let p = parsed("pub fn protocols<I, S>(mut self, names: I) -> Self\nwhere\n    I: IntoIterator<Item = S>,\n{\n    self\n}\n");
        assert_eq!(p.fns[0].ret, ["Self"]);
        assert!(p.fns[0].body.is_some());
    }
}
