//! Workspace static-analysis suite: the determinism, panic-freedom, and
//! unsafe-audit lints behind `cargo run -p xtask -- analyze`, plus the
//! CI lint ratchet behind `cargo run -p xtask -- ratchet`.
//!
//! Every result this repo produces rests on the claim that a run is a
//! pure function of `(topology, agent, seed, channel, traffic)`, and
//! that the packet path neither panics nor leaks pooled buffers. The
//! engine enforces pieces of that contract at runtime (golden files,
//! double-run byte equality, the alloc-budget harness); this crate
//! enforces the *source-level hygiene* those runtime checks depend on,
//! with a staged, hand-rolled analyzer (no crates.io here, mirroring how
//! `mesh_topology::json` hand-rolls JSON):
//!
//! 1. `lexer` blanks comments and string/char literals per line and
//!    marks `#[cfg(test)]` regions;
//! 2. `tokens` turns the blanked lines into a real token stream;
//! 3. `parser` recovers a lightweight item model — fn signatures,
//!    impl blocks, const items, `#[must_use]` types, attribute spans —
//!    so the expression-aware lints reason about scopes, not lines.
//!
//! ## Lint families
//!
//! **Determinism** (line-based) —
//! * [`Lint::HashIteration`]: `HashMap`/`HashSet` in an engine crate.
//! * [`Lint::WallClock`]: `Instant::now`/`SystemTime` outside
//!   `crates/bench`.
//! * [`Lint::RngStream`]: RNG construction not derived from the run seed
//!   (`seed_from_u64` must take the bare seed or `seed ^ *_STREAM`).
//! * [`Lint::FloatOrd`]: float ordering via `partial_cmp` + unwrap-style
//!   methods instead of `total_cmp`.
//!
//! **Panic freedom & resource pairing** (expression-aware) —
//! * [`Lint::PanicPath`]: `unwrap`/`expect`, panicking macros, and
//!   direct indexing in non-test library-crate code.
//! * [`Lint::StreamRegistry`]: every `*_STREAM` constant must live in
//!   the one module marked `// xtask: stream-registry`, be
//!   workspace-unique in both name and value, and every reference must
//!   resolve to a registered constant.
//! * [`Lint::PoolPairing`]: every `pool::acquire`/`acquire_vec` site
//!   needs a reachable `pool::release*` in an impl of the same type (or
//!   the same free fn) in the same file.
//! * [`Lint::MustUseApi`]: public builder-/`Self`-returning fns in
//!   `scenario`/`mesh-sim` must be `#[must_use]` (directly or via the
//!   returned type); `Result`/`Option` returns satisfy this
//!   intrinsically.
//!
//! **Unsafe audit** —
//! * [`Lint::UndocumentedUnsafe`]: every `unsafe` needs a `// SAFETY:`
//!   comment; all sites are inventoried.
//! * [`Lint::MissingForbid`]: every crate root except `crates/gf256`
//!   must carry `#![forbid(unsafe_code)]`.
//!
//! **Escape-hatch accounting** — a finding is suppressed by
//!
//! ```text
//! // xtask: allow(<lint>) -- <justification>          (this line + the next)
//! // xtask: allow(<lint>, file) -- <justification>    (whole file)
//! ```
//!
//! (`allow(missing_forbid)` may sit anywhere in the crate root). Every
//! entry — used or not — is printed in the report, a malformed one is
//! itself a finding ([`Lint::BadAllow`]), and every *suppressed* finding
//! still counts toward the [`baseline`] ratchet: `analyze` can be green
//! while `ratchet` fails on escape-hatch creep.
//!
//! Test code (paths under `tests/`/`benches/`/`examples/`, and
//! `#[cfg(test)]` regions) is exempt from the determinism and
//! panic-path lints: tests may pin literal seeds and unwrap freely. The
//! unsafe audit applies everywhere.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod baseline;
mod lexer;
mod lints;
mod parser;
mod tokens;

use lexer::FileView;
use parser::ParsedFile;

// ---------------------------------------------------------------------
// Public model.
// ---------------------------------------------------------------------

/// The lint families, in report order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lint {
    /// `HashMap`/`HashSet` in an engine crate (RandomState order).
    HashIteration,
    /// Wall-clock reads outside `crates/bench`.
    WallClock,
    /// RNG construction not derived from the run seed.
    RngStream,
    /// Float ordering via `partial_cmp` + unwrap-style methods.
    FloatOrd,
    /// Panicking calls/macros/indexing in library code.
    PanicPath,
    /// `*_STREAM` constants outside (or missing from) the registry.
    StreamRegistry,
    /// `pool::acquire*` without a reachable `pool::release*` path.
    PoolPairing,
    /// Discardable builder/`Self` returns in scenario/mesh-sim.
    MustUseApi,
    /// `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// Crate root lacking `#![forbid(unsafe_code)]`.
    MissingForbid,
    /// Malformed `// xtask: allow(..)` comment.
    BadAllow,
}

impl Lint {
    /// Every lint, in report order.
    pub const ALL: [Lint; 11] = [
        Lint::HashIteration,
        Lint::WallClock,
        Lint::RngStream,
        Lint::FloatOrd,
        Lint::PanicPath,
        Lint::StreamRegistry,
        Lint::PoolPairing,
        Lint::MustUseApi,
        Lint::UndocumentedUnsafe,
        Lint::MissingForbid,
        Lint::BadAllow,
    ];

    /// The lint's snake_case name, as used in allow comments, reports,
    /// and the ratchet baseline.
    pub fn name(self) -> &'static str {
        match self {
            Lint::HashIteration => "hash_iteration",
            Lint::WallClock => "wall_clock",
            Lint::RngStream => "rng_stream",
            Lint::FloatOrd => "float_ord",
            Lint::PanicPath => "panic_path",
            Lint::StreamRegistry => "stream_registry",
            Lint::PoolPairing => "pool_pairing",
            Lint::MustUseApi => "must_use_api",
            Lint::UndocumentedUnsafe => "undocumented_unsafe",
            Lint::MissingForbid => "missing_forbid",
            Lint::BadAllow => "bad_allow",
        }
    }

    /// Resolves an allow-comment lint name. `bad_allow` is deliberately
    /// absent: a malformed escape hatch cannot be escaped.
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL
            .into_iter()
            .find(|l| *l != Lint::BadAllow && l.name() == name)
    }
}

/// One lint violation.
#[derive(Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Why this is a contract violation and what to do instead.
    pub message: String,
}

/// How far a `// xtask: allow(..)` comment reaches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllowScope {
    /// The comment's own line and the line below it.
    Line,
    /// The whole file (`allow(<lint>, file)`).
    File,
}

/// One parsed `// xtask: allow(<lint>[, file]) -- <justification>`.
#[derive(Debug)]
pub struct AllowEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// The lint being suppressed.
    pub lint: Lint,
    /// Line-scoped or file-scoped.
    pub scope: AllowScope,
    /// The text after `--`.
    pub justification: String,
    /// Whether the entry suppressed at least one finding.
    pub used: bool,
}

/// One `unsafe` occurrence, documented or not.
#[derive(Debug)]
pub struct UnsafeSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// The `SAFETY:` text, when present.
    pub safety: Option<String>,
}

/// Everything one `analyze` run produced.
#[derive(Default)]
pub struct Report {
    /// Unsuppressed violations, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Every allow entry seen, with its usage accounted.
    pub allows: Vec<AllowEntry>,
    /// The full unsafe inventory (documented sites included).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Findings suppressed by allows, counted per lint.
    pub suppressed: BTreeMap<Lint, usize>,
    /// Registered stream constants: name → (file, line).
    pub stream_registry: BTreeMap<String, (String, usize)>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// No unsuppressed findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The unsuppressed findings of one lint.
    pub fn of(&self, lint: Lint) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.lint == lint).collect()
    }

    /// The ratchet counts: per-lint totals *including* findings
    /// suppressed by allows, plus the unsafe inventory size and the
    /// number of unused allow entries. A clean `analyze` can therefore
    /// still regress the ratchet by adding escape hatches.
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for lint in Lint::ALL {
            let visible = self.findings.iter().filter(|f| f.lint == lint).count();
            let hidden = self.suppressed.get(&lint).copied().unwrap_or(0);
            out.insert(lint.name().to_string(), visible + hidden);
        }
        out.insert("unsafe_sites".to_string(), self.unsafe_sites.len());
        out.insert(
            "unused_allows".to_string(),
            self.allows.iter().filter(|a| !a.used).count(),
        );
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "xtask analyze: {} file(s) scanned, {} finding(s)",
            self.files_scanned,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "  {}:{}  [{}] {}",
                f.file,
                f.line,
                f.lint.name(),
                f.message
            );
        }
        let _ = writeln!(out, "allowlist entries: {}", self.allows.len());
        for a in &self.allows {
            let scope = match a.scope {
                AllowScope::Line => "",
                AllowScope::File => ", file",
            };
            let state = if a.used { "used" } else { "UNUSED" };
            let _ = writeln!(
                out,
                "  {}:{}  allow({}{}) {} -- {}",
                a.file,
                a.line,
                a.lint.name(),
                scope,
                state,
                a.justification
            );
        }
        let suppressed_total: usize = self.suppressed.values().sum();
        if suppressed_total > 0 {
            let pairs: Vec<String> = self
                .suppressed
                .iter()
                .filter(|(_, n)| **n > 0)
                .map(|(l, n)| format!("{}={n}", l.name()))
                .collect();
            let _ = writeln!(
                out,
                "suppressed by allows: {} ({})",
                suppressed_total,
                pairs.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "stream registry: {} constant(s)",
            self.stream_registry.len()
        );
        let documented = self
            .unsafe_sites
            .iter()
            .filter(|s| s.safety.is_some())
            .count();
        let _ = writeln!(
            out,
            "unsafe inventory: {} site(s), {} documented",
            self.unsafe_sites.len(),
            documented
        );
        for s in &self.unsafe_sites {
            let safety = s.safety.as_deref().unwrap_or("<undocumented>");
            let _ = writeln!(
                out,
                "  {}:{}  unsafe {}  SAFETY: {}",
                s.file, s.line, s.kind, safety
            );
        }
        out
    }

    /// Machine-readable report for tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
                f.lint.name(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            );
        }
        out.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let comma = if i + 1 == self.allows.len() { "" } else { "," };
            let scope = match a.scope {
                AllowScope::Line => "line",
                AllowScope::File => "file",
            };
            let _ = writeln!(
                out,
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"scope\": \"{scope}\", \"used\": {}, \"justification\": \"{}\"}}{comma}",
                a.lint.name(),
                json_escape(&a.file),
                a.line,
                a.used,
                json_escape(&a.justification)
            );
        }
        out.push_str("  ],\n  \"counts\": {\n");
        let counts = self.counts();
        let last = counts.len().saturating_sub(1);
        for (i, (key, n)) in counts.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(out, "    \"{key}\": {n}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// GitHub Actions workflow annotations: one `::error` per finding,
    /// one `::warning` per unused allow.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "::error file={},line={},title=xtask {}::{}",
                f.file,
                f.line,
                f.lint.name(),
                f.message
            );
        }
        for a in self.allows.iter().filter(|a| !a.used) {
            let _ = writeln!(
                out,
                "::warning file={},line={},title=xtask unused allow::allow({}) suppresses nothing; remove it",
                a.file,
                a.line,
                a.lint.name()
            );
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Workspace context (phase 2 of analyze_root).
// ---------------------------------------------------------------------

/// Comment marker that designates the canonical stream-registry module.
const REGISTRY_MARKER: &str = "xtask: stream-registry";

/// Cross-file facts the expression lints consult.
pub(crate) struct Ctx {
    /// Files carrying the registry marker (at most one is legitimate).
    pub registry_files: Vec<String>,
    /// Registered stream constants: name → (file, line, value tokens).
    pub streams: BTreeMap<String, (String, usize, String)>,
    /// All `#[must_use]`-annotated type names, workspace-wide.
    pub must_use_types: BTreeSet<String>,
}

struct FileEntry {
    rel: String,
    view: FileView,
    parsed: ParsedFile,
}

fn build_ctx(entries: &[FileEntry]) -> (Ctx, Vec<Finding>) {
    let mut findings = Vec::new();

    let mut registry_files = Vec::new();
    for e in entries {
        // The marker must be the whole line comment (mentions in doc
        // comments and strings don't count).
        if e.view
            .comment
            .iter()
            .any(|c| c.as_deref().is_some_and(|c| c.trim() == REGISTRY_MARKER))
        {
            registry_files.push(e.rel.clone());
        }
    }
    registry_files.sort();
    for extra in registry_files.iter().skip(1) {
        findings.push(Finding {
            lint: Lint::StreamRegistry,
            file: extra.clone(),
            line: 1,
            message: format!(
                "second `// {REGISTRY_MARKER}` marker (canonical module is `{}`); \
                 the workspace allows exactly one registry",
                registry_files[0]
            ),
        });
    }

    // Every *_STREAM const in the workspace, for uniqueness checks; the
    // registered subset is those inside registry files.
    let mut streams: BTreeMap<String, (String, usize, String)> = BTreeMap::new();
    let mut seen: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for e in entries {
        for c in &e.parsed.consts {
            if !c.name.ends_with("_STREAM") || c.name.len() == "_STREAM".len() {
                continue;
            }
            if e.view.test.get(c.line - 1).copied().unwrap_or(false) {
                continue;
            }
            if let Some((first_file, first_line)) = seen.get(&c.name) {
                findings.push(Finding {
                    lint: Lint::StreamRegistry,
                    file: e.rel.clone(),
                    line: c.line,
                    message: format!(
                        "stream constant `{}` is already defined at \
                         {first_file}:{first_line}; stream names must be \
                         workspace-unique",
                        c.name
                    ),
                });
            } else {
                seen.insert(c.name.clone(), (e.rel.clone(), c.line));
            }
            if registry_files.contains(&e.rel) {
                streams.insert(c.name.clone(), (e.rel.clone(), c.line, c.value.clone()));
            }
        }
    }

    // Registered stream *values* must be unique too: two streams with
    // the same XOR constant would collapse into one RNG sequence.
    let mut by_value: BTreeMap<&str, &str> = BTreeMap::new();
    for (name, (file, line, value)) in &streams {
        if value.is_empty() {
            continue;
        }
        if let Some(other) = by_value.get(value.as_str()) {
            findings.push(Finding {
                lint: Lint::StreamRegistry,
                file: file.clone(),
                line: *line,
                message: format!(
                    "stream constant `{name}` has the same value as `{other}`; \
                     identical streams collapse into one RNG sequence"
                ),
            });
        } else {
            by_value.insert(value, name);
        }
    }

    let mut must_use_types = BTreeSet::new();
    for e in entries {
        for t in &e.parsed.must_use_types {
            must_use_types.insert(t.clone());
        }
    }

    (
        Ctx {
            registry_files,
            streams,
            must_use_types,
        },
        findings,
    )
}

// ---------------------------------------------------------------------
// Allow parsing and resolution.
// ---------------------------------------------------------------------

const ALLOW_MARKER: &str = "xtask: allow(";

fn parse_allows(file: &str, view: &FileView, findings: &mut Vec<Finding>) -> Vec<AllowEntry> {
    let mut allows = Vec::new();
    // The directive must be the whole line comment: `// xtask: allow(..)`.
    // Matching against the lexer's comment text (not the raw line) keeps
    // mentions inside strings and `///`/`//!` docs from parsing as allows.
    for (i, comment) in view.comment.iter().enumerate() {
        let Some(comment) = comment.as_deref().map(str::trim_start) else {
            continue;
        };
        if !comment.starts_with(ALLOW_MARKER) {
            continue;
        }
        let pos = 0;
        let line = i + 1;
        let bad = |message: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                lint: Lint::BadAllow,
                file: file.to_string(),
                line,
                message,
            });
        };
        let rest = &comment[pos + ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            bad("allow comment has no closing `)`".to_string(), findings);
            continue;
        };
        let spec = &rest[..close];
        let (name, scope) = match spec.split_once(',') {
            None => (spec.trim(), AllowScope::Line),
            Some((name, modifier)) if modifier.trim() == "file" => (name.trim(), AllowScope::File),
            Some((_, modifier)) => {
                bad(
                    format!(
                        "unknown allow modifier `{}`; the only modifier is `file`",
                        modifier.trim()
                    ),
                    findings,
                );
                continue;
            }
        };
        let Some(lint) = Lint::from_name(name) else {
            bad(format!("unknown lint `{name}` in allow comment"), findings);
            continue;
        };
        let after = rest[close + 1..].trim();
        let Some(justification) = after.strip_prefix("--").map(str::trim) else {
            bad(
                "allow comment lacks a `-- <justification>`".to_string(),
                findings,
            );
            continue;
        };
        if justification.is_empty() {
            bad("allow justification is empty".to_string(), findings);
            continue;
        }
        allows.push(AllowEntry {
            file: file.to_string(),
            line,
            lint,
            scope,
            justification: justification.to_string(),
            used: false,
        });
    }
    allows
}

/// Moves unsuppressed findings into the report, marks matching allows
/// used, and counts what the allows hid.
fn resolve(findings: Vec<Finding>, allows: &mut [AllowEntry], report: &mut Report) {
    for f in findings {
        if f.lint == Lint::BadAllow {
            report.findings.push(f);
            continue;
        }
        let matched = allows.iter_mut().find(|a| {
            a.lint == f.lint
                && match a.scope {
                    // An allow covers its own line and the line below it
                    // (comment-above style). `missing_forbid` anchors to
                    // line 1, so any allow of it in the file counts.
                    AllowScope::Line => {
                        a.line == f.line || a.line + 1 == f.line || f.lint == Lint::MissingForbid
                    }
                    AllowScope::File => true,
                }
        });
        match matched {
            Some(a) => {
                a.used = true;
                *report.suppressed.entry(f.lint).or_insert(0) += 1;
            }
            None => report.findings.push(f),
        }
    }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

/// Analyzes every tracked `.rs` file under `root`.
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&root.to_path_buf(), &mut files)?;
    files.sort();

    let mut entries = Vec::with_capacity(files.len());
    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let view = lexer::lex(&text);
        let parsed = parser::parse(tokens::tokenize(&view));
        entries.push(FileEntry { rel, view, parsed });
    }

    let (ctx, ctx_findings) = build_ctx(&entries);

    let mut report = Report {
        files_scanned: entries.len(),
        ..Report::default()
    };
    let mut leftover_ctx = ctx_findings;
    for e in &entries {
        let mut findings = Vec::new();
        lints::run_line_lints(&e.rel, &e.view, &mut findings);
        lints::run_forbid_lint(&e.rel, &e.view, &mut findings);
        lints::run_unsafe_audit(&e.rel, &e.view, &mut findings, &mut report);
        lints::run_expr_lints(&e.rel, &e.parsed, &e.view, &ctx, &mut findings);
        let (mine, rest): (Vec<Finding>, Vec<Finding>) =
            leftover_ctx.drain(..).partition(|f| f.file == e.rel);
        leftover_ctx = rest;
        findings.extend(mine);

        let mut allows = parse_allows(&e.rel, &e.view, &mut findings);
        resolve(findings, &mut allows, &mut report);
        report.allows.extend(allows);
    }
    report.findings.extend(leftover_ctx);

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    for (name, (file, line, _)) in &ctx.streams {
        report
            .stream_registry
            .insert(name.clone(), (file.clone(), *line));
    }
    Ok(report)
}

fn collect_rs_files(dir: &PathBuf, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Skip build output, VCS state, vendored crates, experiment
            // results, and the analyzer's own lint fixtures.
            if matches!(
                &*name,
                "target" | ".git" | "vendor" | "results" | "fixtures"
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod test {
    use super::*;

    fn entry(rel: &str, src: &str) -> FileEntry {
        let view = lexer::lex(src);
        let parsed = parser::parse(tokens::tokenize(&view));
        FileEntry {
            rel: rel.to_string(),
            view,
            parsed,
        }
    }

    #[test]
    fn allow_scopes_parse() {
        let view = lexer::lex(
            "// xtask: allow(panic_path) -- bounds checked above\n\
             // xtask: allow(panic_path, file) -- GF(256) kernel, bounds by construction\n\
             // xtask: allow(panic_path, crate) -- nope\n\
             // xtask: allow(made_up) -- nope\n\
             // xtask: allow(panic_path)\n",
        );
        let mut findings = Vec::new();
        let allows = parse_allows("crates/rlnc/src/x.rs", &view, &mut findings);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].scope, AllowScope::Line);
        assert_eq!(allows[1].scope, AllowScope::File);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.lint == Lint::BadAllow));
    }

    #[test]
    fn file_scope_allow_suppresses_everywhere_and_counts() {
        let mut report = Report::default();
        let findings = vec![
            Finding {
                lint: Lint::PanicPath,
                file: "f.rs".into(),
                line: 10,
                message: String::new(),
            },
            Finding {
                lint: Lint::PanicPath,
                file: "f.rs".into(),
                line: 90,
                message: String::new(),
            },
        ];
        let mut allows = vec![AllowEntry {
            file: "f.rs".into(),
            line: 1,
            lint: Lint::PanicPath,
            scope: AllowScope::File,
            justification: "kernel".into(),
            used: false,
        }];
        resolve(findings, &mut allows, &mut report);
        assert!(report.is_clean());
        assert!(allows[0].used);
        assert_eq!(report.suppressed.get(&Lint::PanicPath), Some(&2));
        assert_eq!(report.counts()["panic_path"], 2);
    }

    #[test]
    fn line_scope_allow_reaches_one_line_down_only() {
        let mut report = Report::default();
        let findings = vec![Finding {
            lint: Lint::PanicPath,
            file: "f.rs".into(),
            line: 12,
            message: String::new(),
        }];
        let mut allows = vec![AllowEntry {
            file: "f.rs".into(),
            line: 10,
            lint: Lint::PanicPath,
            scope: AllowScope::Line,
            justification: "x".into(),
            used: false,
        }];
        resolve(findings, &mut allows, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert!(!allows[0].used);
    }

    #[test]
    fn ctx_flags_duplicate_stream_names_and_values() {
        let entries = vec![
            entry(
                "crates/mesh-topology/src/streams.rs",
                "// xtask: stream-registry\n\
                 pub const A_STREAM: u64 = 1;\n\
                 pub const B_STREAM: u64 = 1;\n",
            ),
            entry(
                "crates/mesh-sim/src/channel.rs",
                "pub const A_STREAM: u64 = 2;\n",
            ),
        ];
        let (ctx, findings) = build_ctx(&entries);
        assert_eq!(ctx.registry_files, ["crates/mesh-topology/src/streams.rs"]);
        assert_eq!(ctx.streams.len(), 2);
        // One duplicate-name finding (A_STREAM redefined), one
        // duplicate-value finding (B_STREAM == A_STREAM).
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == Lint::StreamRegistry));
    }

    #[test]
    fn github_format_is_one_annotation_per_finding() {
        let report = Report {
            findings: vec![Finding {
                lint: Lint::PanicPath,
                file: "crates/rlnc/src/decoder.rs".into(),
                line: 7,
                message: "boom".into(),
            }],
            ..Report::default()
        };
        let gh = report.render_github();
        assert_eq!(
            gh,
            "::error file=crates/rlnc/src/decoder.rs,line=7,title=xtask panic_path::boom\n"
        );
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
