//! Workspace static-analysis suite: the determinism and unsafe-audit
//! lints behind `cargo run -p xtask -- analyze`.
//!
//! Every result this repo produces rests on the claim that a run is a
//! pure function of `(topology, agent, seed, channel)`. The engine
//! enforces pieces of that contract at runtime (golden files, double-run
//! byte equality, the cross-thread-count test); this crate enforces the
//! *source-level hygiene* the runtime checks depend on, with a
//! hand-rolled line/token analyzer over the workspace's `.rs` files (no
//! crates.io here, mirroring how `mesh_topology::json` hand-rolls JSON).
//!
//! ## Lint families
//!
//! **Determinism** —
//! * [`Lint::HashIteration`]: `HashMap`/`HashSet` in an engine crate
//!   (mesh-sim, scenario, more-core, baselines, rlnc, mesh-metrics).
//!   `RandomState` iteration order can leak into tie-breaks, RNG draws,
//!   and serialized records; engine containers must be `BTreeMap`/
//!   `BTreeSet` (or justified via the allowlist).
//! * [`Lint::WallClock`]: `Instant::now`/`SystemTime` outside
//!   `crates/bench`. Simulated time is the only clock the engine may
//!   read.
//! * [`Lint::RngStream`]: RNG construction not derived from the run seed
//!   — `seed_from_u64` must take the bare seed or `seed ^ *_STREAM` with
//!   a named stream constant (the `CHANNEL_STREAM`/`TRAFFIC_STREAM`/
//!   `PROBE_STREAM` discipline); `thread_rng`/`from_entropy` are always
//!   errors.
//! * [`Lint::FloatOrd`]: float ordering via `partial_cmp(..).unwrap()`
//!   (or `.expect(..)`/`.unwrap_or(..)`) instead of `total_cmp` — a NaN
//!   turns those into panics or, worse, an inconsistent comparator.
//!
//! **Unsafe audit** —
//! * [`Lint::UndocumentedUnsafe`]: every `unsafe` block/fn/impl needs a
//!   `// SAFETY:` comment on or directly above it. All sites (documented
//!   or not) are listed in the report's unsafe inventory.
//! * [`Lint::MissingForbid`]: every crate root except `crates/gf256`
//!   must carry `#![forbid(unsafe_code)]`, so the inventory can only
//!   ever live in one place.
//!
//! **Escape-hatch accounting** — a finding is suppressed by
//!
//! ```text
//! // xtask: allow(<lint>) -- <justification>
//! ```
//!
//! trailing the flagged line or on the line above it
//! (`allow(missing_forbid)` may sit anywhere in the crate root). Every
//! allowlist entry — used or not — is printed in the report so
//! suppressions stay reviewable; an allow without a justification or
//! naming an unknown lint is itself a finding ([`Lint::BadAllow`]).
//!
//! Test code (paths under `tests/`/`benches/`, and `#[cfg(test)]`
//! regions) is exempt from the determinism lints: tests may pin literal
//! seeds and use hash containers freely. The unsafe audit applies
//! everywhere.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose containers can leak iteration order into tie-breaks,
/// RNG draws, or serialized records.
pub const ENGINE_CRATES: [&str; 6] = [
    "mesh-sim",
    "scenario",
    "more-core",
    "baselines",
    "rlnc",
    "mesh-metrics",
];

/// The lints `analyze` runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lint {
    /// `HashMap`/`HashSet` in an engine crate.
    HashIteration,
    /// `Instant::now`/`SystemTime` outside `crates/bench`.
    WallClock,
    /// RNG construction not derived from the run seed via a named
    /// `*_STREAM` constant.
    RngStream,
    /// Float ordering via `partial_cmp(..).unwrap()`-family instead of
    /// `total_cmp`.
    FloatOrd,
    /// `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// Crate root without `#![forbid(unsafe_code)]`.
    MissingForbid,
    /// Malformed allowlist entry (unknown lint or missing justification).
    BadAllow,
}

impl Lint {
    /// The name used in `// xtask: allow(<name>)` and in the report.
    pub fn name(self) -> &'static str {
        match self {
            Lint::HashIteration => "hash_iteration",
            Lint::WallClock => "wall_clock",
            Lint::RngStream => "rng_stream",
            Lint::FloatOrd => "float_ord",
            Lint::UndocumentedUnsafe => "undocumented_unsafe",
            Lint::MissingForbid => "missing_forbid",
            Lint::BadAllow => "bad_allow",
        }
    }

    fn from_name(name: &str) -> Option<Lint> {
        [
            Lint::HashIteration,
            Lint::WallClock,
            Lint::RngStream,
            Lint::FloatOrd,
            Lint::UndocumentedUnsafe,
            Lint::MissingForbid,
        ]
        .into_iter()
        .find(|l| l.name() == name)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One unsuppressed lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// One `// xtask: allow(..) -- ..` comment, wherever it appeared.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Path relative to the analysis root.
    pub file: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The lint being allowed.
    pub lint: Lint,
    /// The ` -- ` justification text.
    pub justification: String,
    /// Whether the entry suppressed at least one finding.
    pub used: bool,
}

/// One `unsafe` site, documented or not.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// Path relative to the analysis root.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `"fn"`, `"impl"`, `"trait"`, or `"block"`.
    pub kind: &'static str,
    /// The `SAFETY:` comment text, when present.
    pub safety: Option<String>,
}

/// Everything one `analyze` pass produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Every allowlist entry seen, in (file, line) order.
    pub allows: Vec<AllowEntry>,
    /// Every `unsafe` site seen, in (file, line) order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one lint (test helper).
    pub fn of(&self, lint: Lint) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.lint == lint).collect()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "xtask analyze: {} file(s) scanned\n\n",
            self.files_scanned
        ));

        if self.findings.is_empty() {
            out.push_str("findings: none\n");
        } else {
            out.push_str(&format!("findings: {}\n", self.findings.len()));
            let mut by_lint: BTreeMap<Lint, Vec<&Finding>> = BTreeMap::new();
            for f in &self.findings {
                by_lint.entry(f.lint).or_default().push(f);
            }
            for (lint, findings) in by_lint {
                out.push_str(&format!("\n[{lint}] {} finding(s)\n", findings.len()));
                for f in findings {
                    out.push_str(&format!("  {}:{}: {}\n", f.file, f.line, f.message));
                }
            }
        }

        out.push_str(&format!(
            "\nunsafe inventory: {} site(s)\n",
            self.unsafe_sites.len()
        ));
        for s in &self.unsafe_sites {
            match &s.safety {
                Some(text) => out.push_str(&format!(
                    "  {}:{} [{}] SAFETY: {}\n",
                    s.file, s.line, s.kind, text
                )),
                None => out.push_str(&format!(
                    "  {}:{} [{}] (no SAFETY comment)\n",
                    s.file, s.line, s.kind
                )),
            }
        }

        out.push_str(&format!("\nallowlist entries: {}\n", self.allows.len()));
        for a in &self.allows {
            out.push_str(&format!(
                "  {}:{} allow({}) -- {} [{}]\n",
                a.file,
                a.line,
                a.lint,
                a.justification,
                if a.used { "used" } else { "UNUSED" },
            ));
        }
        out
    }
}

/// Analyzes every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// `.git/`, and `tests/fixtures/` trees) and returns the [`Report`].
///
/// Deterministic: directory entries are visited in sorted order, and no
/// lint consults anything but file contents and paths.
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        analyze_file(&rel_display(rel), &text, &mut report);
    }
    report.files_scanned = files.len();
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

fn rel_display(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | "vendor" | ".git" | "results") {
                continue;
            }
            // The analyzer's own deliberately-bad test fixtures.
            if name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths live under root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Which crate (the `crates/<name>` directory) a workspace-relative path
/// belongs to, if any.
fn crate_of(file: &str) -> Option<&str> {
    let rest = file.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn is_engine_crate(file: &str) -> bool {
    crate_of(file).is_some_and(|c| ENGINE_CRATES.contains(&c))
}

/// Paths that hold test or bench harness code: exempt from the
/// determinism lints (tests pin literal seeds on purpose).
fn is_test_path(file: &str) -> bool {
    file.starts_with("tests/")
        || file.contains("/tests/")
        || file.starts_with("benches/")
        || file.contains("/benches/")
        || file.starts_with("examples/")
        || file.contains("/examples/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every
/// `crates/<name>/src/lib.rs` except gf256 (the one crate allowed
/// `unsafe`), plus the umbrella `src/lib.rs`.
fn requires_forbid(file: &str) -> bool {
    if file == "src/lib.rs" {
        return true;
    }
    match (
        crate_of(file),
        file.split('/').collect::<Vec<_>>().as_slice(),
    ) {
        (Some(c), ["crates", _, "src", "lib.rs"]) => c != "gf256",
        _ => false,
    }
}

/// Per-line views of one source file.
struct FileView {
    /// Raw lines, as written.
    raw: Vec<String>,
    /// Lines with comments and string/char-literal contents blanked to
    /// spaces — what the token lints scan.
    code: Vec<String>,
    /// Whether each line sits in a `#[cfg(test)]` region.
    test: Vec<bool>,
    /// The text after a line comment's `//`, when the lexer saw one in
    /// code position (so `//` inside a string never counts).
    comment: Vec<Option<String>>,
}

fn analyze_file(file: &str, text: &str, report: &mut Report) {
    let view = lex(text);
    let mut allows = parse_allows(file, &view, report);

    let mut findings = Vec::new();
    run_token_lints(file, &view, &mut findings);
    run_unsafe_audit(file, &view, &mut findings, report);
    run_forbid_lint(file, &view, &mut findings);

    // Escape-hatch accounting: an allow suppresses findings of its lint
    // on its own line or the line below (missing_forbid: anywhere in the
    // crate root, since the finding pins to line 1).
    for f in findings {
        let allow = allows.iter_mut().find(|a| {
            a.lint == f.lint
                && (a.line == f.line || a.line + 1 == f.line || f.lint == Lint::MissingForbid)
        });
        match allow {
            Some(a) => a.used = true,
            None => report.findings.push(f),
        }
    }
    report.allows.extend(allows);
}

fn parse_allows(file: &str, view: &FileView, report: &mut Report) -> Vec<AllowEntry> {
    // The directive must be the whole line comment: `// xtask: allow(..)`.
    // Matching against the lexer's comment text (not the raw line) keeps
    // mentions inside strings and `///`/`//!` docs from parsing as allows.
    const MARKER: &str = "xtask: allow(";
    let mut out = Vec::new();
    for (i, comment) in view.comment.iter().enumerate() {
        let Some(text) = comment.as_deref().map(str::trim_start) else {
            continue;
        };
        if !text.starts_with(MARKER) {
            continue;
        }
        let line = i + 1;
        let rest = &text[MARKER.len()..];
        let bad = |msg: String, report: &mut Report| {
            report.findings.push(Finding {
                lint: Lint::BadAllow,
                file: file.to_string(),
                line,
                message: msg,
            });
        };
        let Some(close) = rest.find(')') else {
            bad("unclosed `// xtask: allow(`".to_string(), report);
            continue;
        };
        let name = rest[..close].trim();
        let Some(lint) = Lint::from_name(name) else {
            bad(
                format!("unknown lint `{name}` in allow (see `xtask analyze --help`)"),
                report,
            );
            continue;
        };
        let after = &rest[close + 1..];
        let justification = after
            .split_once("--")
            .map(|(_, j)| j.trim().to_string())
            .unwrap_or_default();
        if justification.is_empty() {
            bad(
                format!("allow({name}) needs a justification: `// xtask: allow({name}) -- <why>`"),
                report,
            );
            continue;
        }
        out.push(AllowEntry {
            file: file.to_string(),
            line,
            lint,
            justification,
            used: false,
        });
    }
    out
}

fn run_token_lints(file: &str, view: &FileView, findings: &mut Vec<Finding>) {
    let in_bench_crate = crate_of(file) == Some("bench");
    let engine = is_engine_crate(file);
    let test_path = is_test_path(file);

    for (i, code) in view.code.iter().enumerate() {
        let line = i + 1;
        if test_path || view.test[i] {
            continue; // determinism lints skip test code
        }
        let push = |lint: Lint, message: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                lint,
                file: file.to_string(),
                line,
                message,
            });
        };

        if engine && (contains_word(code, "HashMap") || contains_word(code, "HashSet")) {
            push(
                Lint::HashIteration,
                "hash containers iterate in RandomState order, which can leak into \
                 tie-breaks, RNG draws, and serialized records; use BTreeMap/BTreeSet \
                 (or allowlist a lookup-only use with a justification)"
                    .to_string(),
                findings,
            );
        }

        if !in_bench_crate && (code.contains("Instant::now") || contains_word(code, "SystemTime")) {
            push(
                Lint::WallClock,
                "wall-clock reads outside crates/bench break run reproducibility; \
                 simulated time is the only clock the engine may consult"
                    .to_string(),
                findings,
            );
        }

        if !in_bench_crate {
            if contains_word(code, "thread_rng") || contains_word(code, "from_entropy") {
                push(
                    Lint::RngStream,
                    "entropy-seeded RNGs make runs irreproducible; derive every RNG \
                     from the run seed via a named *_STREAM constant"
                        .to_string(),
                    findings,
                );
            }
            for arg in call_args(code, "seed_from_u64") {
                if !seed_arg_ok(&arg) {
                    push(
                        Lint::RngStream,
                        format!(
                            "`seed_from_u64({arg})` is not derived from the run seed; \
                             pass the bare seed or `seed ^ <NAME>_STREAM` with a named \
                             stream constant"
                        ),
                        findings,
                    );
                }
            }
        }

        if code.contains("partial_cmp") && !code.contains("fn partial_cmp") {
            let next = view.code.get(i + 1).map(String::as_str).unwrap_or("");
            let unwrapped = [code, next].iter().any(|l| {
                l.contains(".unwrap()") || l.contains(".expect(") || l.contains(".unwrap_or(")
            });
            if unwrapped {
                push(
                    Lint::FloatOrd,
                    "float ordering via partial_cmp + unwrap/expect/unwrap_or panics \
                     (or lies) on NaN; use f64::total_cmp for a deterministic total \
                     order"
                        .to_string(),
                    findings,
                );
            }
        }
    }
}

/// Extracts the argument text of each `name(...)` call on a code line.
fn call_args(code: &str, name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos + name.len();
        from = start;
        let rest = &code[start..];
        if !rest.starts_with('(') {
            continue;
        }
        let mut depth = 0usize;
        let mut end = rest.len();
        for (j, c) in rest.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(rest[1..end].trim().to_string());
    }
    out
}

/// A `seed_from_u64` argument is acceptable when it references a named
/// `*_STREAM` constant, or is a plain path expression mentioning the
/// seed (`seed`, `run_seed`, `self.seed`, …) with no arithmetic.
fn seed_arg_ok(arg: &str) -> bool {
    if arg.contains("_STREAM") {
        return true;
    }
    let plain = arg
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | ' '));
    plain && arg.to_lowercase().contains("seed")
}

fn run_unsafe_audit(file: &str, view: &FileView, findings: &mut Vec<Finding>, report: &mut Report) {
    for (i, code) in view.code.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = find_word(&code[from..], "unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            let after = code[from..].trim_start();
            let kind = if after.starts_with("fn") {
                "fn"
            } else if after.starts_with("impl") {
                "impl"
            } else if after.starts_with("trait") {
                "trait"
            } else {
                "block"
            };
            let safety = safety_comment(view, i);
            if safety.is_none() {
                findings.push(Finding {
                    lint: Lint::UndocumentedUnsafe,
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "unsafe {kind} without a `// SAFETY:` comment on or directly \
                         above it"
                    ),
                });
            }
            report.unsafe_sites.push(UnsafeSite {
                file: file.to_string(),
                line: i + 1,
                kind,
                safety,
            });
        }
    }
}

/// The `SAFETY:` text for an unsafe site on line `i` (0-based): trailing
/// on the same raw line, or in the contiguous block of comments and
/// attributes directly above.
fn safety_comment(view: &FileView, i: usize) -> Option<String> {
    let extract = |raw: &str| {
        raw.find("SAFETY:")
            .map(|p| raw[p + "SAFETY:".len()..].trim().to_string())
    };
    if let Some(text) = view.comment[i].as_deref().and_then(extract) {
        return Some(text);
    }
    for j in (0..i).rev() {
        let t = view.raw[j].trim();
        if t.starts_with("//") {
            if let Some(text) = extract(t) {
                return Some(text);
            }
        } else if !t.starts_with("#[") && !t.starts_with("#![") {
            break;
        }
    }
    None
}

fn run_forbid_lint(file: &str, view: &FileView, findings: &mut Vec<Finding>) {
    if !requires_forbid(file) {
        return;
    }
    let has = view
        .code
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has {
        findings.push(Finding {
            lint: Lint::MissingForbid,
            file: file.to_string(),
            line: 1,
            message: "crate root lacks #![forbid(unsafe_code)]; only crates/gf256 may \
                      contain unsafe so the audit inventory stays in one place"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// Lexer: raw lines + comment/string-blanked code lines + test regions.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    /// Nesting depth of `/* */`.
    Block(usize),
    Str,
    /// `r##"..."##` with this many hashes.
    RawStr(usize),
}

fn lex(text: &str) -> FileView {
    let raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut code = Vec::with_capacity(raw.len());
    let mut comment: Vec<Option<String>> = Vec::with_capacity(raw.len());
    let mut state = LexState::Normal;

    for line in &raw {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut line_comment: Option<String> = None;
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match state {
                LexState::Block(depth) => {
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::Block(depth - 1)
                        };
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Normal;
                        out.push('"');
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        state = LexState::Normal;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                LexState::Normal => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: record its text, blank the rest.
                        if line_comment.is_none() {
                            line_comment = Some(bytes[i + 2..].iter().collect());
                        }
                        while i < bytes.len() {
                            out.push(' ');
                            i += 1;
                        }
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        out.push('"');
                        i += 1;
                    } else if c == 'r' && is_raw_str_start(&bytes, i) {
                        let hashes = count_hashes(&bytes, i + 1);
                        state = LexState::RawStr(hashes);
                        out.push('r');
                        for _ in 0..hashes + 1 {
                            out.push(' ');
                        }
                        i += hashes + 2;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes with
                        // a quote after one (possibly escaped) character.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(bytes.len() - 1) {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            out.push_str("   ");
                            i += 3;
                        } else {
                            // Lifetime: keep as code.
                            out.push('\'');
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
        code.push(out);
        comment.push(line_comment);
    }

    let test = mark_test_regions(&code);
    FileView {
        raw,
        code,
        test,
        comment,
    }
}

fn is_raw_str_start(bytes: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, not part of an identifier like `striped_r`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let hashes = count_hashes(bytes, i + 1);
    bytes.get(i + 1 + hashes) == Some(&'"')
}

fn count_hashes(bytes: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while bytes.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Marks the lines covered by `#[cfg(test)]` items: from the attribute
/// through the matching close brace of the item it gates.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut depth = 0usize;
    let mut region_depth: Option<usize> = None;
    let mut pending = false;

    for (i, line) in code.iter().enumerate() {
        if region_depth.is_some() || pending {
            test[i] = true;
        }
        if line.contains("#[cfg(test") {
            pending = true;
            test[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending = false;
                        test[i] = true;
                    }
                }
                '}' => {
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use …;` — the attribute gated a
                // braceless item; the region ends here.
                ';' if pending && region_depth.is_none() => pending = false,
                _ => {}
            }
        }
    }
    test
}

/// `needle` appears in `haystack` delimited by non-identifier chars.
fn contains_word(haystack: &str, needle: &str) -> bool {
    find_word(haystack, needle).is_some()
}

fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !haystack[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod test {
    use super::*;

    fn report_for(file: &str, text: &str) -> Report {
        let mut r = Report::default();
        analyze_file(file, text, &mut r);
        r
    }

    #[test]
    fn lexer_blanks_comments_and_strings() {
        let v = lex(
            "let x = \"HashMap\"; // HashMap\nlet y = 'a';\n/* HashMap\nHashMap */ let z = 1;\n",
        );
        assert!(!v.code[0].contains("HashMap"), "{}", v.code[0]);
        assert!(!v.code[1].contains('a'));
        assert!(!v.code[2].contains("HashMap"));
        assert!(v.code[3].contains("let z"));
        assert!(!v.code[3].contains("HashMap"));
    }

    #[test]
    fn lexer_keeps_lifetimes() {
        let v = lex("impl<'a> Foo<'a> { fn f(&'a self) {} }\n");
        assert!(v.code[0].contains("<'a>"));
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let v = lex("fn a() {}\n#[cfg(test)]\nmod test {\n    fn b() {}\n}\nfn c() {}\n");
        assert_eq!(v.test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
    }

    #[test]
    fn seed_args_classified() {
        assert!(seed_arg_ok("seed"));
        assert!(seed_arg_ok("run_seed"));
        assert!(seed_arg_ok("self.seed"));
        assert!(seed_arg_ok("seed ^ CHANNEL_STREAM"));
        assert!(seed_arg_ok("seed ^ attempt.wrapping_mul(GEO_STREAM)"));
        assert!(!seed_arg_ok("12345"));
        assert!(!seed_arg_ok("seed * 31 + k"));
        assert!(!seed_arg_ok("k as u64"));
    }

    #[test]
    fn engine_crate_classification() {
        assert!(is_engine_crate("crates/mesh-sim/src/simulator.rs"));
        assert!(is_engine_crate("crates/scenario/src/sink.rs"));
        assert!(!is_engine_crate("crates/bench/src/stats.rs"));
        assert!(!is_engine_crate("crates/gf256/src/wide.rs"));
        assert!(!is_engine_crate("src/lib.rs"));
        assert!(!is_engine_crate("examples/quickstart.rs"));
    }

    #[test]
    fn forbid_required_everywhere_but_gf256() {
        assert!(requires_forbid("src/lib.rs"));
        assert!(requires_forbid("crates/mesh-sim/src/lib.rs"));
        assert!(requires_forbid("crates/xtask/src/lib.rs"));
        assert!(!requires_forbid("crates/gf256/src/lib.rs"));
        assert!(!requires_forbid("crates/mesh-sim/src/simulator.rs"));
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let r = report_for(
            "crates/mesh-sim/src/x.rs",
            "// xtask: allow(hash_iteration)\nuse std::collections::BTreeMap;\n",
        );
        assert_eq!(r.of(Lint::BadAllow).len(), 1);
    }

    #[test]
    fn unknown_allow_lint_is_a_finding() {
        let r = report_for(
            "crates/mesh-sim/src/x.rs",
            "// xtask: allow(no_such_lint) -- why\n",
        );
        assert_eq!(r.of(Lint::BadAllow).len(), 1);
    }

    #[test]
    fn multiline_partial_cmp_chain_is_caught() {
        let text = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| a\n        .partial_cmp(b)\n        .unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        let r = report_for("crates/mesh-metrics/src/x.rs", text);
        assert_eq!(r.of(Lint::FloatOrd).len(), 1);
        assert_eq!(r.of(Lint::FloatOrd)[0].line, 3);
    }

    #[test]
    fn safety_comment_above_attribute_counts() {
        let text = "// SAFETY: caller guarantees the target feature.\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}\n";
        let r = report_for("crates/gf256/src/x.rs", text);
        assert!(r.of(Lint::UndocumentedUnsafe).is_empty());
        assert_eq!(r.unsafe_sites.len(), 1);
        assert_eq!(r.unsafe_sites[0].kind, "fn");
        assert!(r.unsafe_sites[0]
            .safety
            .as_deref()
            .unwrap()
            .contains("target feature"));
    }
}
