//! Structured run results with hand-rolled JSON and CSV writers.

use mesh_sim::SEC;
use mesh_topology::NodeId;

/// One flow's outcome within a run.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowRecord {
    /// Source node.
    pub src: NodeId,
    /// First (or only) destination; multicast flows list all in `dsts`.
    pub dsts: Vec<NodeId>,
    /// Packets delivered end-to-end.
    pub delivered: usize,
    /// Delivered packets / elapsed seconds (deadline-limited runs use
    /// the deadline as the denominator — the Figs 4-2…4-7 convention).
    pub throughput_pps: f64,
    /// Frames of this flow dropped by transmit queues anywhere in the
    /// mesh. Always 0 (and the JSON key omitted) for the unbounded
    /// default, which has no queues to drop from.
    pub queue_drops: u64,
    /// The transfer finished before the deadline.
    pub completed: bool,
    /// Completion time in simulated seconds, when completed.
    pub completed_at_s: Option<f64>,
    /// When the flow arrived, simulated seconds. `None` for static
    /// workloads (every flow starts at 0), and the `started_at_s` /
    /// `stopped_at_s` / `latency_s` JSON keys are omitted entirely so
    /// static output stays byte-identical to the pre-traffic-model
    /// engine.
    pub started_at_s: Option<f64>,
    /// When the traffic model withdrew the flow mid-run, simulated
    /// seconds; `None` when it ran to completion or deadline.
    pub stopped_at_s: Option<f64>,
    /// Completion latency: `completed_at_s − started_at_s`, for completed
    /// flows of dynamic workloads.
    pub latency_s: Option<f64>,
}

/// One simulator run: a (scenario, protocol, sweep point, seed,
/// flow set) coordinate and everything measured there.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Scenario name (the builder's `named`).
    pub scenario: String,
    /// Protocol registry name.
    pub protocol: String,
    /// Topology the run used.
    pub topology: String,
    /// Channel-model label ([`mesh_sim::ChannelSpec::label`]); `"static"`
    /// for the default §5.3.1 air. Omitted from JSON when static so
    /// static output stays byte-identical to the pre-channel engine.
    pub channel: String,
    /// Queue-discipline label ([`mesh_sim::QueueSpec::label`]);
    /// `"unbounded"` for the default pull-on-demand engine. Omitted from
    /// JSON — together with the `queue_drops` and `fairness` keys — when
    /// unbounded, so default output stays byte-identical to the pre-queue
    /// engine (enforced by `tests/queue_equivalence.rs`).
    pub queue: String,
    /// Sweep parameter name, when the scenario sweeps one.
    pub param: Option<&'static str>,
    /// Sweep parameter value at this point.
    pub value: Option<f64>,
    /// Run seed.
    pub seed: u64,
    /// Index of the flow set within the traffic expansion (e.g. which
    /// random pair).
    pub traffic_index: usize,
    /// Per-flow outcomes, in flow order.
    pub flows: Vec<FlowRecord>,
    /// Whole-run data-frame transmissions.
    pub total_tx: u64,
    /// Whole-run transmit-queue drops, all causes (overflow, early
    /// marking, CHOKe flow matches). 0 under the unbounded default.
    pub queue_drops: u64,
    /// Jain's fairness index over the per-flow throughputs
    /// ([`mesh_metrics::fairness::jain`]): 1.0 when every flow gets an
    /// equal share, `1/n` when one flow monopolizes the medium.
    pub fairness: f64,
    /// Fraction of airtime with ≥ 2 concurrent transmissions.
    pub concurrency: f64,
    /// Simulated time at exit, seconds.
    pub sim_time_s: f64,
}

impl RunRecord {
    /// Throughputs of all flows in the run.
    pub fn throughputs(&self) -> impl Iterator<Item = f64> + '_ {
        self.flows.iter().map(|f| f.throughput_pps)
    }

    /// Mean per-flow throughput of the run.
    pub fn mean_throughput(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.throughputs().sum::<f64>() / self.flows.len() as f64
    }

    /// All flows completed before the deadline.
    pub fn all_completed(&self) -> bool {
        self.flows.iter().all(|f| f.completed)
    }

    /// The record as a single JSON object — one JSON-Lines line, exactly
    /// the array element [`to_json`] emits (the contract the
    /// [`crate::sink::JsonLines`] sink streams under).
    pub fn to_json_line(&self) -> String {
        // Queue keys only exist for bounded disciplines: the unbounded
        // default must stay byte-identical to the pre-queue engine
        // (tests/queue_equivalence.rs), like the channel and lifecycle
        // keys below.
        let queued = self.queue != "unbounded";
        let flows: Vec<String> = self
            .flows
            .iter()
            .map(|f| {
                let dsts: Vec<String> = f.dsts.iter().map(|d| d.0.to_string()).collect();
                // Flow-lifecycle keys only exist for dynamic workloads:
                // static runs must stay byte-identical to the
                // pre-traffic-model engine (tests/traffic_equivalence.rs).
                let lifecycle = match f.started_at_s {
                    None => String::new(),
                    Some(start) => format!(
                        ", \"started_at_s\": {}, \"stopped_at_s\": {}, \"latency_s\": {}",
                        fmt_f64(start),
                        f.stopped_at_s
                            .map(fmt_f64)
                            .unwrap_or_else(|| "null".to_string()),
                        f.latency_s
                            .map(fmt_f64)
                            .unwrap_or_else(|| "null".to_string()),
                    ),
                };
                let qdrops = if queued {
                    format!(", \"queue_drops\": {}", f.queue_drops)
                } else {
                    String::new()
                };
                format!(
                    "{{\"src\": {}, \"dsts\": [{}], \"delivered\": {}, \
                     \"throughput_pps\": {}, \"completed\": {}, \"completed_at_s\": {}{}{}}}",
                    f.src.0,
                    dsts.join(", "),
                    f.delivered,
                    fmt_f64(f.throughput_pps),
                    f.completed,
                    f.completed_at_s
                        .map(fmt_f64)
                        .unwrap_or_else(|| "null".to_string()),
                    lifecycle,
                    qdrops,
                )
            })
            .collect();
        // The channel key is omitted for the default static air: static
        // runs must serialize byte-identically to the pre-channel engine
        // (enforced by tests/channel_equivalence.rs).
        let channel = if self.channel == "static" {
            String::new()
        } else {
            format!("\"channel\": {}, ", esc(&self.channel))
        };
        let queue = if queued {
            format!(
                "\"queue\": {}, \"queue_drops\": {}, \"fairness\": {}, ",
                esc(&self.queue),
                self.queue_drops,
                fmt_f64(self.fairness),
            )
        } else {
            String::new()
        };
        format!(
            "{{\"scenario\": {}, \"protocol\": {}, \"topology\": {}, {}{}\
             \"param\": {}, \"value\": {}, \"seed\": {}, \"traffic_index\": {}, \
             \"total_tx\": {}, \"concurrency\": {}, \"sim_time_s\": {}, \"flows\": [{}]}}",
            esc(&self.scenario),
            esc(&self.protocol),
            esc(&self.topology),
            channel,
            queue,
            self.param
                .map(|p| format!("\"{p}\""))
                .unwrap_or_else(|| "null".to_string()),
            self.value
                .map(fmt_f64)
                .unwrap_or_else(|| "null".to_string()),
            self.seed,
            self.traffic_index,
            self.total_tx,
            fmt_f64(self.concurrency),
            fmt_f64(self.sim_time_s),
            flows.join(", "),
        )
    }

    /// The CSV header matching [`RunRecord::to_csv_rows`]. One CSV row
    /// per flow (runs with several flows emit several rows).
    pub const CSV_HEADER: &'static str = "scenario,protocol,topology,channel,queue,param,value,\
         seed,traffic_index,flow_index,src,dst,delivered,throughput_pps,queue_drops,completed,\
         completed_at_s,started_at_s,stopped_at_s,latency_s,total_tx,total_queue_drops,fairness,\
         concurrency,sim_time_s";

    /// One CSV row per flow, matching [`RunRecord::CSV_HEADER`]. Unlike
    /// JSON, the queue columns always exist (CSV has no optional keys);
    /// unbounded runs carry `unbounded`, zero drops, and the fairness
    /// index.
    pub fn to_csv_rows(&self) -> Vec<String> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    csv_field(&self.scenario),
                    csv_field(&self.protocol),
                    csv_field(&self.topology),
                    csv_field(&self.channel),
                    csv_field(&self.queue),
                    // `param` and the joined `dsts` go through the same
                    // quoting as every other string column: a
                    // comma-bearing sweep-parameter name must not shear
                    // the row (built-in labels never quote, so ordinary
                    // output is byte-identical).
                    csv_field(self.param.unwrap_or("")),
                    self.value.map(fmt_f64).unwrap_or_default(),
                    self.seed,
                    self.traffic_index,
                    i,
                    f.src.0,
                    csv_field(
                        &f.dsts
                            .iter()
                            .map(|d| d.0.to_string())
                            .collect::<Vec<_>>()
                            .join("|")
                    ),
                    f.delivered,
                    fmt_f64(f.throughput_pps),
                    f.queue_drops,
                    f.completed,
                    f.completed_at_s.map(fmt_f64).unwrap_or_default(),
                    f.started_at_s.map(fmt_f64).unwrap_or_default(),
                    f.stopped_at_s.map(fmt_f64).unwrap_or_default(),
                    f.latency_s.map(fmt_f64).unwrap_or_default(),
                    self.total_tx,
                    self.queue_drops,
                    fmt_f64(self.fairness),
                    fmt_f64(self.concurrency),
                    fmt_f64(self.sim_time_s),
                )
            })
            .collect()
    }
}

/// Serializes a record set to a JSON array.
pub fn to_json(records: &[RunRecord]) -> String {
    let objs: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.to_json_line()))
        .collect();
    format!("[\n{}\n]\n", objs.join(",\n"))
}

/// Serializes a record set to CSV (header + one row per flow).
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = String::from(RunRecord::CSV_HEADER);
    out.push('\n');
    for r in records {
        for row in r.to_csv_rows() {
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// Writes records as JSON to `path` (creating parent directories).
pub fn write_json(path: &str, records: &[RunRecord]) -> std::io::Result<()> {
    write_with(path, to_json(records))
}

/// Writes records as CSV to `path` (creating parent directories).
pub fn write_csv(path: &str, records: &[RunRecord]) -> std::io::Result<()> {
    write_with(path, to_csv(records))
}

fn write_with(path: &str, contents: String) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Converts a completion time to seconds.
pub fn time_to_s(t: mesh_sim::Time) -> f64 {
    t as f64 / SEC as f64
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn esc(s: &str) -> String {
    format!("\"{}\"", mesh_topology::json::escape(s))
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A representative record for unit tests across the crate.
    pub(crate) fn sample_record() -> RunRecord {
        RunRecord {
            scenario: "test".into(),
            protocol: "MORE".into(),
            topology: "testbed".into(),
            channel: "static".into(),
            queue: "unbounded".into(),
            param: Some("k"),
            value: Some(32.0),
            seed: 1,
            traffic_index: 0,
            flows: vec![FlowRecord {
                src: NodeId(0),
                dsts: vec![NodeId(19)],
                delivered: 384,
                throughput_pps: 151.25,
                queue_drops: 0,
                completed: true,
                completed_at_s: Some(2.54),
                started_at_s: None,
                stopped_at_s: None,
                latency_s: None,
            }],
            total_tx: 900,
            queue_drops: 0,
            fairness: 1.0,
            concurrency: 0.12,
            sim_time_s: 2.54,
        }
    }
}

#[cfg(test)]
mod test {
    use super::*;

    fn sample() -> RunRecord {
        test_support::sample_record()
    }

    #[test]
    fn json_is_parseable() {
        let json = to_json(&[sample(), sample()]);
        let v = mesh_topology::json::parse(&json).expect("valid JSON");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("protocol").unwrap().as_str(), Some("MORE"));
        assert_eq!(
            arr[0].get("flows").unwrap().as_arr().unwrap()[0]
                .get("delivered")
                .unwrap()
                .as_f64(),
            Some(384.0)
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut r = sample();
        r.scenario = "line1\nline2\ttabbed".into();
        let json = to_json(&[r]);
        let v = mesh_topology::json::parse(&json).expect("control chars must be escaped");
        assert_eq!(
            v.as_arr().unwrap()[0].get("scenario").unwrap().as_str(),
            Some("line1\nline2\ttabbed")
        );
    }

    #[test]
    fn channel_key_omitted_when_static_present_otherwise() {
        // Static: byte-compat with the pre-channel engine, no channel key.
        assert!(!to_json(&[sample()]).contains("\"channel\""));
        // Non-static: the label is surfaced.
        let mut r = sample();
        r.channel = "ge(good=1.25;bad=0;to_bad=0.05;to_good=0.2;epoch=10ms)".into();
        let json = to_json(&[r.clone()]);
        let v = mesh_topology::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.as_arr().unwrap()[0].get("channel").unwrap().as_str(),
            Some(r.channel.as_str())
        );
        // CSV always carries the column.
        assert!(RunRecord::CSV_HEADER.contains(",channel,"));
        let csv = to_csv(&[r.clone()]);
        assert!(csv.contains(&r.channel));
    }

    #[test]
    fn queue_keys_omitted_when_unbounded_present_otherwise() {
        // Unbounded: byte-compat with the pre-queue engine — none of the
        // queue-subsystem keys exist.
        let json = to_json(&[sample()]);
        for key in ["\"queue\"", "\"queue_drops\"", "\"fairness\""] {
            assert!(!json.contains(key), "unexpected {key} in {json}");
        }
        // Bounded: label, drop counts, and the fairness index surface at
        // both the run and flow level.
        let mut r = sample();
        r.queue = "droptail(cap=16)".into();
        r.queue_drops = 7;
        r.fairness = 0.5;
        r.flows[0].queue_drops = 7;
        let json = to_json(&[r.clone()]);
        let v = mesh_topology::json::parse(&json).expect("valid JSON");
        let obj = &v.as_arr().unwrap()[0];
        assert_eq!(obj.get("queue").unwrap().as_str(), Some(r.queue.as_str()));
        assert_eq!(obj.get("queue_drops").unwrap().as_f64(), Some(7.0));
        assert_eq!(obj.get("fairness").unwrap().as_f64(), Some(0.5));
        let flow = &obj.get("flows").unwrap().as_arr().unwrap()[0];
        assert_eq!(flow.get("queue_drops").unwrap().as_f64(), Some(7.0));
        // CSV always carries the columns.
        for col in [
            ",queue,",
            ",queue_drops,",
            ",total_queue_drops,",
            ",fairness,",
        ] {
            assert!(RunRecord::CSV_HEADER.contains(col), "missing {col}");
        }
        let csv = to_csv(&[r.clone()]);
        assert!(csv.contains(&r.queue));
    }

    #[test]
    fn lifecycle_keys_omitted_for_static_flows_present_otherwise() {
        // Static flow (started_at_s = None): byte-compat, no lifecycle keys.
        assert!(!to_json(&[sample()]).contains("started_at_s"));
        // Dynamic flow: all three keys appear.
        let mut r = sample();
        r.flows[0].started_at_s = Some(1.5);
        r.flows[0].stopped_at_s = Some(9.0);
        r.flows[0].latency_s = Some(1.04);
        let json = to_json(&[r]);
        let v = mesh_topology::json::parse(&json).expect("valid JSON");
        let flow = &v.as_arr().unwrap()[0]
            .get("flows")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert_eq!(flow.get("started_at_s").unwrap().as_f64(), Some(1.5));
        assert_eq!(flow.get("stopped_at_s").unwrap().as_f64(), Some(9.0));
        assert_eq!(flow.get("latency_s").unwrap().as_f64(), Some(1.04));
        // CSV always carries the columns.
        for col in ["started_at_s", "stopped_at_s", "latency_s"] {
            assert!(RunRecord::CSV_HEADER.contains(col), "missing {col}");
        }
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let csv = to_csv(&[sample()]);
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), header_cols, "line {line:?}");
        }
    }

    /// Splits one CSV row respecting double-quoted fields (what any CSV
    /// reader does) — the arity oracle for the quoting tests below.
    fn csv_split(line: &str) -> Vec<String> {
        let mut fields = vec![String::new()];
        let mut quoted = false;
        for c in line.chars() {
            match c {
                '"' => quoted = !quoted,
                ',' if !quoted => fields.push(String::new()),
                c => fields.last_mut().unwrap().push(c),
            }
        }
        fields
    }

    #[test]
    fn comma_bearing_param_is_quoted_not_sheared() {
        // A sweep-parameter name with a comma previously went out
        // unquoted and shifted every later column by one.
        let mut r = sample();
        r.param = Some("k,variant");
        let row = &r.to_csv_rows()[0];
        assert!(row.contains("\"k,variant\""), "param must be quoted: {row}");
        let header_cols = RunRecord::CSV_HEADER.split(',').count();
        assert_eq!(csv_split(row).len(), header_cols, "sheared row: {row}");
        assert_eq!(csv_split(row)[5], "k,variant");
    }

    #[test]
    fn multicast_dsts_ride_the_same_quoting_path() {
        let mut r = sample();
        r.flows[0].dsts = vec![NodeId(3), NodeId(7)];
        let row = &r.to_csv_rows()[0];
        // '|'-joined destinations carry no comma, so the field stays
        // unquoted — but it must flow through csv_field like every other
        // string column (arity stays fixed either way).
        assert_eq!(csv_split(row)[11], "3|7");
        assert_eq!(
            csv_split(row).len(),
            RunRecord::CSV_HEADER.split(',').count()
        );
    }
}
