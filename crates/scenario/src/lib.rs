//! Composable scenario builder and pluggable protocol registry for the
//! MORE reproduction.
//!
//! The paper's evaluation is a *comparison* — MORE vs ExOR vs Srcr over
//! identical topologies, traffic, and seeds. This crate makes that
//! comparison (and every workload beyond it) declarative:
//!
//! ```
//! use more_scenario::{Scenario, Sweep, TrafficSpec};
//!
//! let records = Scenario::named("demo")
//!     .testbed(1)
//!     .traffic(TrafficSpec::RandomPairs { count: 4, seed: 7 })
//!     .protocols(["Srcr", "ExOR", "MORE"])
//!     .packets(64)
//!     .deadline(120)
//!     .run();
//! assert_eq!(records.len(), 3 * 4); // 3 protocols × 4 pairs
//! let json = more_scenario::record::to_json(&records);
//! assert!(json.contains("\"protocol\": \"MORE\""));
//! ```
//!
//! Key pieces:
//!
//! * [`Scenario`] / [`ScenarioBuilder`] — fluent declaration of
//!   topology, traffic, protocols, parameter sweeps, seeds, and
//!   deadlines; [`ScenarioBuilder::run`] executes the whole grid on a
//!   worker pool and returns structured [`RunRecord`]s (JSON/CSV
//!   serializable via [`record`]).
//! * [`ProtocolFactory`] / [`ProtocolRegistry`] — protocols are
//!   pluggable objects, not enum arms. [`ProtocolRegistry::with_defaults`]
//!   ships MORE, ExOR, Srcr, and Srcr-autorate; anything implementing
//!   [`ProtocolFactory`] (over any [`mesh_sim::FlowAgent`]) registers
//!   alongside them — from outside this crate — and runs in the same
//!   scenarios on the same seeds.
//! * [`TrafficModel`] / [`TrafficModelSpec`] — workloads are pluggable
//!   objects too: the legacy static [`TrafficSpec`] expansion is one
//!   model among several (Poisson arrivals, on-off sources, staggered
//!   ramps), and dynamic models start and stop flows *mid-run* through
//!   the protocol's [`mesh_sim::FlowAgent`] lifecycle hooks.
//! * [`exec::par_map`] — the scoped-thread parallel map underneath
//!   every sweep.

#![deny(missing_docs)]

pub mod builder;
pub mod exec;
pub mod protocols;
pub mod record;
pub mod registry;
pub mod spec;
pub mod traffic;

pub use builder::{Scenario, ScenarioBuilder};
pub use mesh_sim::{ChannelModel, ChannelSpec};
pub use protocols::{ExorFactory, MoreFactory, SrcrFactory};
pub use record::{FlowRecord, RunRecord};
pub use registry::{BuildError, ProtocolFactory, ProtocolRegistry};
pub use spec::{random_pairs, scale_loss, ExpConfig, FlowSpec, Sweep, TopologySpec, TrafficSpec};
pub use traffic::{
    FlowEvent, OnOffModel, PoissonModel, StaggeredModel, StaticModel, TrafficModel,
    TrafficModelSpec, TRAFFIC_STREAM,
};
