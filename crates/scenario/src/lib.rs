//! Composable scenario builder and pluggable protocol registry for the
//! MORE reproduction.
//!
//! The paper's evaluation is a *comparison* — MORE vs ExOR vs Srcr over
//! identical topologies, traffic, and seeds. This crate makes that
//! comparison (and every workload beyond it) declarative:
//!
//! ```
//! use more_scenario::{Scenario, Sweep, TrafficSpec};
//!
//! let records = Scenario::named("demo")
//!     .testbed(1)
//!     .traffic(TrafficSpec::RandomPairs { count: 4, seed: 7 })
//!     .protocols(["Srcr", "ExOR", "MORE"])
//!     .packets(64)
//!     .deadline(120)
//!     .run();
//! assert_eq!(records.len(), 3 * 4); // 3 protocols × 4 pairs
//! let json = more_scenario::record::to_json(&records);
//! assert!(json.contains("\"protocol\": \"MORE\""));
//! ```
//!
//! Key pieces:
//!
//! * [`Scenario`] / [`ScenarioBuilder`] — fluent declaration of
//!   topology, traffic, protocols, parameter sweeps, seeds, and
//!   deadlines; [`ScenarioBuilder::run`] executes the whole grid on a
//!   worker pool and returns structured [`RunRecord`]s (JSON/CSV
//!   serializable via [`record`]).
//! * [`ProtocolFactory`] / [`ProtocolRegistry`] — protocols are
//!   pluggable objects, not enum arms. [`ProtocolRegistry::with_defaults`]
//!   ships MORE, ExOR, Srcr, and Srcr-autorate; anything implementing
//!   [`ProtocolFactory`] (over any [`mesh_sim::FlowAgent`]) registers
//!   alongside them — from outside this crate — and runs in the same
//!   scenarios on the same seeds.
//! * [`TrafficModel`] / [`TrafficModelSpec`] — workloads are pluggable
//!   objects too: the legacy static [`TrafficSpec`] expansion is one
//!   model among several (Poisson arrivals, on-off sources, staggered
//!   ramps), and dynamic models start and stop flows *mid-run* through
//!   the protocol's [`mesh_sim::FlowAgent`] lifecycle hooks.
//! * [`sink::RunSink`] — results *stream*: each record is handed to a
//!   sink the moment its grid cell completes (in deterministic grid
//!   order). [`sink::Collect`] reproduces the legacy `Vec<RunRecord>`
//!   byte for byte; [`sink::JsonLines`] / [`sink::CsvAppend`] write
//!   files incrementally; [`sink::Aggregate`] folds bounded-memory
//!   per-cell summaries; [`sink::Tee`] fans out. With
//!   [`ScenarioBuilder::checkpoint`] a sweep becomes resumable: a
//!   manifest of completed grid cells lets an interrupted run skip
//!   finished work and append — byte-identical to an uninterrupted run.
//! * [`exec::par_map`] / [`exec::par_map_streaming`] — the sharded
//!   scoped-thread executor underneath every sweep: workers forward
//!   completions through a channel drained by the caller, no global
//!   lock on a slot vector.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod exec;
pub mod manifest;
mod pairs;
pub mod protocols;
pub mod record;
pub mod registry;
pub mod sink;
pub mod spec;
pub mod traffic;

pub use builder::{Progress, RunSummary, Scenario, ScenarioBuilder};
pub use mesh_sim::{AimdConfig, ChannelModel, ChannelSpec, QueueSpec};
pub use protocols::{ExorFactory, MoreFactory, SrcrFactory};
pub use record::{FlowRecord, RunRecord};
pub use registry::{BuildError, ProtocolFactory, ProtocolRegistry};
pub use sink::{Aggregate, Collect, CsvAppend, JsonLines, RunSink, Tee};
pub use spec::{random_pairs, scale_loss, ExpConfig, FlowSpec, Sweep, TopologySpec, TrafficSpec};
pub use traffic::{
    validate_schedule, FlowEvent, OnOffModel, PoissonModel, StaggeredModel, StaticModel,
    TrafficModel, TrafficModelSpec, TRAFFIC_STREAM,
};
