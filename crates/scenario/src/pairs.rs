//! Lazily indexable reachable-pair pools.
//!
//! Pair-sampling traffic (Poisson arrivals, `RandomPairs`) draws from
//! "all reachable ordered pairs, in node order". Materializing that list
//! is O(n²) memory — ~10⁸ pairs on a 10k-node city mesh — even though a
//! Poisson run touches only a few thousand of them. A [`PairPool`]
//! exposes the *same sequence* (source-major, destination ascending)
//! through `len()` + `get(k)` while holding O(n) state: per-source
//! prefix counts plus memoized destination lists for the sources
//! actually drawn.
//!
//! Reachability counts come from one of two strategies:
//!
//! * **Symmetric support** (every `p > 0` link has a `p > 0` reverse —
//!   true of every built-in generator): reachable-from-`s` is exactly
//!   the connected component of `s`, so one O(links) BFS sweep labels
//!   every node and counts are component sizes.
//! * **Directed fallback**: one BFS per source, O(n · links) time but
//!   still O(n) memory.
//!
//! Determinism: `get(k)` is a pure function of `(topology, k)`; RNG
//! consumers that previously indexed the materialized list draw
//! byte-identical pairs through the pool.

// xtask: allow(panic_path, file) -- prefix/comp vectors are sized n+1/n at construction; get() asserts k < len() up front, partition_point over a prefix ending in len() keeps the source index in range, and a source always appears in its own memoized member list (it reaches itself in 0 hops).

use mesh_topology::{NodeId, Topology};
use std::collections::{BTreeMap, VecDeque};

/// The reachable ordered pairs of one topology, indexable without being
/// materialized.
#[must_use = "a pair pool does nothing until indexed"]
pub(crate) struct PairPool<'a> {
    topo: &'a Topology,
    /// `prefix[s]` = reachable pairs with source `< s`; `prefix[n]` = total.
    prefix: Vec<usize>,
    /// Component id per node when link support is symmetric; `None`
    /// selects the per-source BFS fallback.
    comp: Option<Vec<u32>>,
    /// Memoized ascending member lists, keyed by component id (symmetric)
    /// or source id (directed fallback). Each list contains the source
    /// itself; `get` skips over it.
    members: BTreeMap<u32, Vec<NodeId>>,
}

/// Component labels and sizes of the undirected support graph, or `None`
/// when some link lacks a `p > 0` reverse (reachability is then truly
/// directed and components would over-count).
fn symmetric_components(topo: &Topology) -> Option<(Vec<u32>, Vec<usize>)> {
    for l in topo.links() {
        if topo.delivery(l.to, l.from) <= 0.0 {
            return None;
        }
    }
    let n = topo.n();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        comp[s] = id;
        let mut size = 0usize;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for v in topo.neighbors(NodeId(u)) {
                if comp[v.0] == u32::MAX {
                    comp[v.0] = id;
                    queue.push_back(v.0);
                }
            }
        }
        sizes.push(size);
    }
    Some((comp, sizes))
}

impl<'a> PairPool<'a> {
    /// Builds the index for `topo`: O(links) when support is symmetric,
    /// O(n · links) otherwise — never O(n²) memory.
    pub(crate) fn new(topo: &'a Topology) -> Self {
        let n = topo.n();
        let sym = symmetric_components(topo);
        let counts: Vec<usize> = match &sym {
            Some((comp, sizes)) => (0..n).map(|i| sizes[comp[i] as usize] - 1).collect(),
            None => (0..n)
                .map(|i| {
                    let reach = topo
                        .hops_from(NodeId(i))
                        .iter()
                        .filter(|h| h.is_some())
                        .count();
                    reach - 1 // hops_from counts the source itself
                })
                .collect(),
        };
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for c in counts {
            acc += c;
            prefix.push(acc);
        }
        PairPool {
            topo,
            prefix,
            comp: sym.map(|(c, _)| c),
            members: BTreeMap::new(),
        }
    }

    /// Total number of reachable ordered pairs.
    pub(crate) fn len(&self) -> usize {
        *self.prefix.last().expect("prefix always has n + 1 entries")
    }

    /// True when no ordered pair is reachable at all.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sources with at least one reachable destination.
    pub(crate) fn sources_with_destinations(&self) -> usize {
        self.prefix.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Pair `k` of the source-major, destination-ascending sequence —
    /// exactly `reachable_pairs(topo)[k]`, computed lazily.
    pub(crate) fn get(&mut self, k: usize) -> (NodeId, NodeId) {
        assert!(k < self.len(), "pair index {k} out of {}", self.len());
        let s = self.prefix.partition_point(|&p| p <= k) - 1;
        let r = k - self.prefix[s];
        let key = match &self.comp {
            Some(comp) => comp[s],
            None => s as u32,
        };
        let (topo, comp) = (self.topo, &self.comp);
        let members = self.members.entry(key).or_insert_with(|| match comp {
            Some(comp) => (0..topo.n())
                .filter(|&i| comp[i] == key)
                .map(NodeId)
                .collect(),
            None => topo
                .hops_from(NodeId(s))
                .iter()
                .enumerate()
                .filter(|(_, h)| h.is_some())
                .map(|(i, _)| NodeId(i))
                .collect(),
        });
        let pos = members
            .binary_search(&NodeId(s))
            .expect("a source always appears in its own reachable set");
        let d = if r < pos { members[r] } else { members[r + 1] };
        (NodeId(s), d)
    }

    /// The full materialized sequence — only for consumers that must
    /// shuffle the whole pool (O(n²) on dense topologies; avoid at city
    /// scale).
    pub(crate) fn materialize(&mut self) -> Vec<(NodeId, NodeId)> {
        let mut all = Vec::with_capacity(self.len());
        for k in 0..self.len() {
            all.push(self.get(k));
        }
        all
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    /// The historical definition: a BFS reachability test per ordered
    /// pair, in node order.
    fn naive_pairs(topo: &Topology) -> Vec<(NodeId, NodeId)> {
        let mut all = Vec::new();
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s != d && topo.hop_count(s, d).is_some() {
                    all.push((s, d));
                }
            }
        }
        all
    }

    #[test]
    fn pool_matches_naive_enumeration_symmetric() {
        for topo in [generate::testbed(1), generate::grid(3, 3, 0.8, 0.4, 30.0)] {
            let naive = naive_pairs(&topo);
            let mut pool = PairPool::new(&topo);
            assert!(pool.comp.is_some(), "{}: support is symmetric", topo.name);
            assert_eq!(pool.len(), naive.len(), "{}", topo.name);
            assert_eq!(pool.materialize(), naive, "{}", topo.name);
        }
        // The diamond is a DAG (src → forwarders → dst): asymmetric
        // support, so the pool must take the per-source BFS fallback and
        // still reproduce the sequence.
        let topo = generate::diamond(4, 0.5);
        let mut pool = PairPool::new(&topo);
        assert!(pool.comp.is_none(), "diamond support is directed");
        assert_eq!(pool.materialize(), naive_pairs(&topo));
    }

    #[test]
    fn pool_matches_naive_enumeration_directed() {
        // A one-way chain plus an isolated node: support is asymmetric,
        // forcing the per-source BFS fallback.
        let mut m = vec![vec![0.0; 4]; 4];
        m[0][1] = 0.9;
        m[1][2] = 0.8;
        let topo = Topology::from_matrix("oneway", m);
        let mut pool = PairPool::new(&topo);
        assert!(
            pool.comp.is_none(),
            "asymmetric support must not use components"
        );
        let naive = naive_pairs(&topo);
        assert_eq!(
            naive,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
            ]
        );
        assert_eq!(pool.len(), naive.len());
        assert_eq!(pool.materialize(), naive);
        assert_eq!(pool.sources_with_destinations(), 2);
    }

    #[test]
    fn random_access_agrees_with_sequence() {
        let topo = generate::testbed(3);
        let mut pool = PairPool::new(&topo);
        let all = naive_pairs(&topo);
        // Out-of-order access must not disturb the indexing.
        for &k in &[all.len() - 1, 0, all.len() / 2, 1] {
            assert_eq!(pool.get(k), all[k], "pair {k}");
        }
    }

    #[test]
    fn split_topology_spans_components() {
        let mut m = vec![vec![0.0; 5]; 5];
        m[0][1] = 0.9;
        m[1][0] = 0.9;
        m[2][3] = 0.9;
        m[3][2] = 0.9;
        // Node 4 is isolated.
        let topo = Topology::from_matrix("split", m);
        let mut pool = PairPool::new(&topo);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.sources_with_destinations(), 4);
        assert_eq!(pool.materialize(), naive_pairs(&topo));
    }

    #[test]
    fn empty_and_single_node_pools() {
        let empty = Topology::from_matrix("none", Vec::new());
        assert_eq!(PairPool::new(&empty).len(), 0);
        let one = Topology::from_matrix("lone", vec![vec![0.0]]);
        let pool = PairPool::new(&one);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.sources_with_destinations(), 0);
    }
}
