//! Declarative scenario ingredients: topology, traffic, parameters, and
//! sweeps.

// xtask: allow(panic_path, file) -- FlowSpec validation guarantees a non-empty destination list, and Sweep::value(i) is only called with i < len() by the sweep driver iterating 0..len().

use mesh_sim::{Bitrate, ChannelSpec, QueueSpec};
use mesh_topology::{generate, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shared experiment parameters (§4.1.2 defaults). The same struct the
/// pre-scenario harness used, now owned by the scenario layer.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Packets per transfer (the paper sends a 5 MB file ≈ 3500 packets;
    /// experiments default to 12 batches ≈ 384 so sweeps stay tractable).
    pub packets: usize,
    /// Batch size K for MORE and ExOR.
    pub k: usize,
    /// Fixed data bit-rate.
    pub bitrate: Bitrate,
    /// Simulated-time budget per run.
    pub deadline_s: u64,
    /// RNG seed (medium + protocol randomness).
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            packets: 384,
            k: 32,
            bitrate: Bitrate::B5_5,
            deadline_s: 240,
            seed: 1,
        }
    }
}

/// One transfer: a source, one or more destinations (several =
/// multicast), and a packet count.
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// One destination (unicast) or several (multicast).
    pub dsts: Vec<NodeId>,
    /// Packet budget of the transfer.
    pub packets: usize,
}

impl FlowSpec {
    /// A single-destination flow.
    pub fn unicast(src: NodeId, dst: NodeId, packets: usize) -> Self {
        FlowSpec {
            src,
            dsts: vec![dst],
            packets,
        }
    }

    /// More than one destination?
    pub fn is_multicast(&self) -> bool {
        self.dsts.len() > 1
    }

    /// The single destination of a unicast flow.
    pub fn dst(&self) -> NodeId {
        self.dsts[0]
    }
}

/// How the topology of a run is produced.
#[derive(Clone)]
pub enum TopologySpec {
    /// The 20-node, 3-floor testbed generator (Fig 4-1), by seed.
    Testbed {
        /// Placement seed.
        seed: u64,
    },
    /// Smaller/larger testbed-style mesh.
    TestbedSized {
        /// Node count.
        n: usize,
        /// Placement seed.
        seed: u64,
    },
    /// A line of `hops` hops (`hops + 1` nodes).
    Line {
        /// Hop count.
        hops: usize,
        /// Adjacent-link delivery probability.
        p_adj: f64,
        /// Per-skipped-hop delivery decay.
        skip_decay: f64,
        /// Node spacing, meters.
        spacing: f64,
    },
    /// A `w × h` grid.
    Grid {
        /// Grid width in nodes.
        w: usize,
        /// Grid height in nodes.
        h: usize,
        /// Adjacent-link delivery probability.
        p_adj: f64,
        /// Diagonal-link delivery probability.
        p_diag: f64,
        /// Node spacing, meters.
        spacing: f64,
    },
    /// A random scattered mesh, by seed.
    RandomMesh {
        /// Node count.
        n: usize,
        /// Area width, meters.
        width: f64,
        /// Area depth, meters.
        depth: f64,
        /// Placement seed.
        seed: u64,
    },
    /// The Fig 5-1 diamond with `k` middle forwarders.
    Diamond {
        /// Number of middle forwarders.
        k: usize,
        /// Source→forwarder and forwarder→destination delivery.
        p: f64,
    },
    /// A city-scale sparse mesh (single floor, ~1250 m² per node) with
    /// per-pair link streams — the 10k-node scaling workload. Unlike
    /// [`TopologySpec::RandomMesh`] it never materializes a dense
    /// matrix and never retries for connectivity.
    City {
        /// Node count.
        n: usize,
        /// Placement/link seed.
        seed: u64,
    },
    /// A fixed, caller-supplied topology.
    Fixed(Arc<Topology>),
    /// Arbitrary generator; receives the *run seed* so per-run topologies
    /// are possible.
    Custom(Arc<dyn Fn(u64) -> Topology + Send + Sync>),
}

impl std::fmt::Debug for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::Testbed { seed } => write!(f, "Testbed{{seed:{seed}}}"),
            TopologySpec::TestbedSized { n, seed } => {
                write!(f, "TestbedSized{{n:{n},seed:{seed}}}")
            }
            TopologySpec::Line { hops, .. } => write!(f, "Line{{hops:{hops}}}"),
            TopologySpec::Grid { w, h, .. } => write!(f, "Grid{{{w}x{h}}}"),
            TopologySpec::RandomMesh { n, seed, .. } => {
                write!(f, "RandomMesh{{n:{n},seed:{seed}}}")
            }
            TopologySpec::Diamond { k, p } => write!(f, "Diamond{{k:{k},p:{p}}}"),
            TopologySpec::City { n, seed } => write!(f, "City{{n:{n},seed:{seed}}}"),
            TopologySpec::Fixed(t) => write!(f, "Fixed({})", t.name),
            TopologySpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl TopologySpec {
    /// Builds the topology for a run. `run_seed` only matters for
    /// [`TopologySpec::Custom`] generators that opt into it.
    pub fn instantiate(&self, run_seed: u64) -> Topology {
        match self {
            TopologySpec::Testbed { seed } => generate::testbed(*seed),
            TopologySpec::TestbedSized { n, seed } => generate::testbed_sized(*n, *seed),
            TopologySpec::Line {
                hops,
                p_adj,
                skip_decay,
                spacing,
            } => generate::line(*hops, *p_adj, *skip_decay, *spacing),
            TopologySpec::Grid {
                w,
                h,
                p_adj,
                p_diag,
                spacing,
            } => generate::grid(*w, *h, *p_adj, *p_diag, *spacing),
            TopologySpec::RandomMesh {
                n,
                width,
                depth,
                seed,
            } => generate::random_mesh(*n, *width, *depth, *seed),
            TopologySpec::Diamond { k, p } => generate::diamond(*k, *p),
            TopologySpec::City { n, seed } => generate::city_mesh(*n, *seed),
            TopologySpec::Fixed(t) => (**t).clone(),
            TopologySpec::Custom(f) => f(run_seed),
        }
    }
}

/// Scales every link's *loss* by `factor` (a loss-scale sweep): delivery
/// `p` becomes `1 − min(1, (1 − p) · factor)`. `factor` 1.0 is identity;
/// 0.0 makes every existing link perfect; larger values degrade.
pub fn scale_loss(topo: &Topology, factor: f64) -> Topology {
    let n = topo.n();
    let mut m = vec![vec![0.0; n]; n];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let p = topo.delivery(NodeId(i), NodeId(j));
            if i != j && p > 0.0 {
                *cell = (1.0 - (1.0 - p) * factor).clamp(0.0, 1.0);
            }
        }
    }
    let name = format!("{}*loss{factor}", topo.name);
    let scaled = Topology::from_matrix(name, m);
    match topo.positions() {
        Some(pos) => scaled.with_positions(pos.to_vec()),
        None => scaled,
    }
}

/// How the flows of each run are produced.
///
/// A traffic spec expands to one or more *flow sets*; each flow set is
/// one simulator run (its flows are concurrent).
#[derive(Clone, Debug)]
pub enum TrafficSpec {
    /// One unicast transfer.
    SinglePair {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// One independent run per listed pair.
    EachPair(Vec<(NodeId, NodeId)>),
    /// Deterministically samples `count` distinct reachable ordered pairs
    /// (seeded independently of the run seed), one run per pair.
    RandomPairs {
        /// Number of pairs (capped at the reachable-pair count).
        count: usize,
        /// Sampling seed, independent of the run seed.
        seed: u64,
    },
    /// One run with all listed flows concurrent.
    Concurrent(Vec<(NodeId, NodeId)>),
    /// One run of `n_flows` concurrent flows whose endpoints are sampled
    /// per run-seed (so every seed sees a different random flow set, the
    /// Fig 4-5 construction). Sources are distinct when
    /// `distinct_sources`.
    RandomConcurrent {
        /// Concurrent flow count.
        n_flows: usize,
        /// Added to the run seed for endpoint sampling.
        seed_offset: u64,
        /// Require pairwise-distinct sources.
        distinct_sources: bool,
    },
    /// One run with a single multicast flow.
    Multicast {
        /// Source node.
        src: NodeId,
        /// Destination set (must be non-empty).
        dsts: Vec<NodeId>,
    },
}

impl TrafficSpec {
    /// Expands to the flow sets of one run seed. Pair sampling is
    /// restricted to reachable ordered pairs.
    pub fn flow_sets(&self, topo: &Topology, run_seed: u64, packets: usize) -> Vec<Vec<FlowSpec>> {
        match self {
            TrafficSpec::SinglePair { src, dst } => {
                vec![vec![FlowSpec::unicast(*src, *dst, packets)]]
            }
            TrafficSpec::EachPair(pairs) => pairs
                .iter()
                .map(|&(s, d)| vec![FlowSpec::unicast(s, d, packets)])
                .collect(),
            TrafficSpec::RandomPairs { count, seed } => random_pairs(topo, *count, *seed)
                .into_iter()
                .map(|(s, d)| vec![FlowSpec::unicast(s, d, packets)])
                .collect(),
            TrafficSpec::Concurrent(pairs) => vec![pairs
                .iter()
                .map(|&(s, d)| FlowSpec::unicast(s, d, packets))
                .collect()],
            TrafficSpec::RandomConcurrent {
                n_flows,
                seed_offset,
                distinct_sources,
            } => {
                let pool = random_pairs(topo, topo.n() * topo.n(), seed_offset + run_seed);
                let mut flows = Vec::new();
                let mut used = BTreeSet::new();
                for (s, d) in pool {
                    if *distinct_sources && !used.insert(s) {
                        continue;
                    }
                    flows.push(FlowSpec::unicast(s, d, packets));
                    if flows.len() == *n_flows {
                        break;
                    }
                }
                assert_eq!(
                    flows.len(),
                    *n_flows,
                    "topology {} cannot host {} distinct-source flows",
                    topo.name,
                    n_flows
                );
                vec![flows]
            }
            TrafficSpec::Multicast { src, dsts } => {
                assert!(
                    !dsts.is_empty(),
                    "multicast flow from {src} needs at least one destination"
                );
                vec![vec![FlowSpec {
                    src: *src,
                    dsts: dsts.clone(),
                    packets,
                }]]
            }
        }
    }
}

/// All reachable ordered pairs of a topology, in node order — the one
/// definition of "reachable pair" shared by pair sampling and the
/// traffic models. Materializes the full list (O(n²) on connected
/// topologies); consumers that only *sample* pairs should use
/// [`crate::pairs::PairPool`] and stay O(n).
pub(crate) fn reachable_pairs(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    crate::pairs::PairPool::new(topo).materialize()
}

/// Deterministically samples `count` distinct reachable ordered pairs.
pub fn random_pairs(topo: &Topology, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut all = reachable_pairs(topo);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(count);
    all
}

/// A parameter grid swept by a scenario; each sweep point is a full
/// (protocol × seed × flow-set) sub-grid.
#[derive(Clone, Debug)]
pub enum Sweep {
    /// Transfer sizes.
    Packets(Vec<usize>),
    /// Batch sizes (Fig 4-7).
    K(Vec<usize>),
    /// Data bit-rates (Fig 4-6 uses a fixed one; sweeps compare).
    Bitrate(Vec<Bitrate>),
    /// Loss scaling applied to the topology (see [`scale_loss`]).
    LossScale(Vec<f64>),
    /// Concurrent random flow counts (Fig 4-5).
    Flows(Vec<usize>),
    /// Channel models (static vs bursty vs shadowed air; the numeric
    /// sweep value is the point's index, the record's `channel` key
    /// carries the spec label).
    Channel(Vec<ChannelSpec>),
    /// Offered-load sweep: flow arrival rates (flows/s) applied to a
    /// [`crate::TrafficModelSpec::Poisson`] traffic model — the classic
    /// offered-load-vs-throughput construction.
    Load(Vec<f64>),
    /// Queue disciplines (unbounded vs DropTail vs RED vs CHOKe; the
    /// numeric sweep value is the point's index, the record's `queue`
    /// key carries the spec label).
    Queue(Vec<QueueSpec>),
}

impl Sweep {
    /// The record's `param` key for this sweep axis.
    pub fn label(&self) -> &'static str {
        match self {
            Sweep::Packets(_) => "packets",
            Sweep::K(_) => "k",
            Sweep::Bitrate(_) => "bitrate",
            Sweep::LossScale(_) => "loss_scale",
            Sweep::Flows(_) => "flows",
            Sweep::Channel(_) => "channel",
            Sweep::Load(_) => "load",
            Sweep::Queue(_) => "queue",
        }
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        match self {
            Sweep::Packets(v) => v.len(),
            Sweep::K(v) => v.len(),
            Sweep::Bitrate(v) => v.len(),
            Sweep::LossScale(v) => v.len(),
            Sweep::Flows(v) => v.len(),
            Sweep::Channel(v) => v.len(),
            Sweep::Load(v) => v.len(),
            Sweep::Queue(v) => v.len(),
        }
    }

    /// No sweep points at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Numeric value of point `i` (bitrates report Mb/s).
    pub fn value(&self, i: usize) -> f64 {
        match self {
            Sweep::Packets(v) => v[i] as f64,
            Sweep::K(v) => v[i] as f64,
            Sweep::Bitrate(v) => v[i].bits_per_us(),
            Sweep::LossScale(v) => v[i],
            Sweep::Flows(v) => v[i] as f64,
            Sweep::Channel(_) => i as f64,
            Sweep::Load(v) => v[i],
            Sweep::Queue(_) => i as f64,
        }
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn random_pairs_are_deterministic_and_reachable() {
        let topo = generate::testbed(2);
        let a = random_pairs(&topo, 30, 7);
        let b = random_pairs(&topo, 30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for (s, d) in a {
            assert_ne!(s, d);
            assert!(topo.hop_count(s, d).is_some());
        }
    }

    #[test]
    fn loss_scaling_bounds() {
        let topo = generate::testbed(1);
        let perfect = scale_loss(&topo, 0.0);
        let worse = scale_loss(&topo, 2.0);
        for l in topo.links() {
            assert_eq!(perfect.delivery(l.from, l.to), 1.0);
            let w = worse.delivery(l.from, l.to);
            assert!(w <= l.delivery + 1e-12, "loss must not shrink");
            assert!((0.0..=1.0).contains(&w));
        }
        // Identity preserves the matrix.
        let same = scale_loss(&topo, 1.0);
        for l in topo.links() {
            assert!((same.delivery(l.from, l.to) - l.delivery).abs() < 1e-12);
        }
    }

    /// Two disconnected cliques: pairs across the gap are unreachable.
    fn split_topology() -> Topology {
        let mut m = vec![vec![0.0; 4]; 4];
        m[0][1] = 0.9;
        m[1][0] = 0.9;
        m[2][3] = 0.9;
        m[3][2] = 0.9;
        Topology::from_matrix("split", m)
    }

    #[test]
    fn random_pairs_skips_unreachable_pairs_and_truncates() {
        let topo = split_topology();
        // 4 nodes → 12 ordered pairs, but only 4 are reachable; asking
        // for more must yield every reachable pair, never an unreachable
        // one, and never panic.
        let pairs = random_pairs(&topo, 100, 3);
        assert_eq!(pairs.len(), 4, "only the intra-component pairs exist");
        for (s, d) in &pairs {
            assert!(topo.hop_count(*s, *d).is_some(), "{s}->{d} unreachable");
        }
        let sets = TrafficSpec::RandomPairs {
            count: 100,
            seed: 3,
        }
        .flow_sets(&topo, 1, 16);
        assert_eq!(sets.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn random_concurrent_infeasible_distinct_sources_panics_clearly() {
        // 3 hops of line: 4 nodes, so at most 4 distinct sources exist
        // (fewer with distinct reachable targets); asking for 5 is
        // impossible and must fail loudly, not silently under-provision.
        let topo = generate::line(3, 0.9, 0.3, 25.0);
        let spec = TrafficSpec::RandomConcurrent {
            n_flows: 5,
            seed_offset: 0,
            distinct_sources: true,
        };
        let _ = spec.flow_sets(&topo, 1, 16);
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn multicast_with_no_destinations_panics_clearly() {
        let topo = generate::testbed(1);
        let spec = TrafficSpec::Multicast {
            src: NodeId(0),
            dsts: Vec::new(),
        };
        let _ = spec.flow_sets(&topo, 1, 16);
    }

    #[test]
    fn random_concurrent_depends_on_run_seed() {
        let topo = generate::testbed(1);
        let spec = TrafficSpec::RandomConcurrent {
            n_flows: 3,
            seed_offset: 1000,
            distinct_sources: true,
        };
        let a = spec.flow_sets(&topo, 1, 64);
        let b = spec.flow_sets(&topo, 1, 64);
        let c = spec.flow_sets(&topo, 2, 64);
        assert_eq!(a, b, "same run seed, same flows");
        assert_ne!(a, c, "different run seed, different flows");
        assert_eq!(a[0].len(), 3);
        let sources: BTreeSet<NodeId> = a[0].iter().map(|f| f.src).collect();
        assert_eq!(sources.len(), 3, "distinct sources");
    }
}
