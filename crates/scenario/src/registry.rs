//! The pluggable protocol registry.
//!
//! Replaces the closed `Protocol` enum of the pre-scenario harness:
//! protocols are [`ProtocolFactory`] objects registered by name, so new
//! baselines, MORE ablations, or user-defined agents plug in without
//! touching this crate — see the `custom_protocol` integration test in
//! the umbrella crate for an end-to-end external registration.

use crate::spec::{ExpConfig, FlowSpec};
use mesh_sim::ErasedFlowAgent;
use mesh_topology::Topology;
use std::fmt;
use std::sync::Arc;

/// Why a factory refused to build an agent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The protocol cannot express this traffic (e.g. multicast on a
    /// strictly unicast routing protocol).
    Unsupported(String),
    /// No factory under that name.
    UnknownProtocol(String),
    /// A user traffic model emitted a schedule violating the
    /// [`crate::TrafficModel`] contract (a `Stop` for a flow that never
    /// started, a `Stop` before its `Start`, events past the horizon, or
    /// an unsorted event list).
    InvalidSchedule(String),
    /// A [`mesh_sim::QueueSpec`] or congestion-control configuration is
    /// internally inconsistent (zero capacity, inverted RED thresholds,
    /// out-of-range marking probability, …).
    InvalidQueue(String),
    /// A [`crate::sink::RunSink`] or checkpoint-manifest I/O operation
    /// failed.
    Sink(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unsupported(msg) => write!(f, "unsupported scenario: {msg}"),
            BuildError::UnknownProtocol(name) => {
                write!(f, "no protocol named {name:?} in the registry")
            }
            BuildError::InvalidSchedule(msg) => write!(f, "invalid traffic schedule: {msg}"),
            BuildError::InvalidQueue(msg) => write!(f, "invalid queue configuration: {msg}"),
            BuildError::Sink(msg) => write!(f, "result sink failed: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a ready-to-run agent for one simulator run.
///
/// Object-safe on purpose: registries hold `Arc<dyn ProtocolFactory>`.
/// `build` receives the topology, the run's flows (already expanded from
/// the traffic spec), and the experiment parameters; it must add every
/// flow to the agent (ids `1..=flows.len()`, in order) and perform any
/// protocol-specific arming (e.g. ExOR's `start`). The scenario engine
/// kicks each flow's source after construction.
pub trait ProtocolFactory: Send + Sync {
    /// Registry key and display name ("MORE", "Srcr-autorate", …).
    fn name(&self) -> &str;

    /// Constructs the agent with all flows installed.
    fn build(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        cfg: &ExpConfig,
    ) -> Result<Box<dyn ErasedFlowAgent>, BuildError>;
}

/// An ordered, name-keyed set of protocol factories.
///
/// Cheap to clone (factories are shared `Arc`s); lookup is
/// case-insensitive.
#[derive(Clone, Default)]
#[must_use]
pub struct ProtocolRegistry {
    factories: Vec<Arc<dyn ProtocolFactory>>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry::default()
    }

    /// A registry pre-populated with the paper's four protocols:
    /// MORE, ExOR, Srcr, and Srcr-autorate.
    pub fn with_defaults() -> Self {
        let mut reg = ProtocolRegistry::new();
        reg.register(crate::protocols::MoreFactory::default());
        reg.register(crate::protocols::ExorFactory::default());
        reg.register(crate::protocols::SrcrFactory::fixed_rate());
        reg.register(crate::protocols::SrcrFactory::autorate());
        reg
    }

    /// Registers a factory; a same-named factory is replaced (latest
    /// wins), so callers can override the built-ins.
    pub fn register(&mut self, factory: impl ProtocolFactory + 'static) -> &mut Self {
        self.register_arc(Arc::new(factory))
    }

    /// Registers a shared factory.
    pub fn register_arc(&mut self, factory: Arc<dyn ProtocolFactory>) -> &mut Self {
        let name = factory.name().to_string();
        self.factories
            .retain(|f| !f.name().eq_ignore_ascii_case(&name));
        self.factories.push(factory);
        self
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ProtocolFactory>> {
        self.factories
            .iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
            .cloned()
    }

    /// Lookup that reports the miss.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn ProtocolFactory>, BuildError> {
        self.get(name)
            .ok_or_else(|| BuildError::UnknownProtocol(name.to_string()))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// No factories registered?
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProtocolRegistry")
            .field(&self.names())
            .finish()
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn defaults_hold_the_papers_protocols() {
        let reg = ProtocolRegistry::with_defaults();
        assert_eq!(reg.names(), vec!["MORE", "ExOR", "Srcr", "Srcr-autorate"]);
        assert!(reg.get("more").is_some(), "lookup is case-insensitive");
        assert!(matches!(
            reg.resolve("nope"),
            Err(BuildError::UnknownProtocol(_))
        ));
    }

    #[test]
    fn reregistration_replaces() {
        let mut reg = ProtocolRegistry::with_defaults();
        let before = reg.len();
        reg.register(crate::protocols::MoreFactory::default());
        assert_eq!(reg.len(), before, "same name replaces, not duplicates");
    }
}
