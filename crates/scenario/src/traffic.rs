//! Pluggable traffic models: how the flows of a run arrive and depart.
//!
//! The paper's evaluation only ever runs *static* workloads — a fixed set
//! of flows that all start at t = 0 and send a fixed packet budget. Real
//! mesh workloads are dynamic: streaming sources talk and pause, transfers
//! arrive mid-run and leave when they finish. The [`TrafficModel`] trait
//! makes the workload a first-class, swappable component, mirroring
//! [`mesh_sim::ChannelModel`] (loss processes) and
//! [`crate::ProtocolFactory`] (protocols):
//!
//! * [`TrafficModelSpec::Static`] — the legacy [`TrafficSpec`] expansion;
//!   byte-identical `RunRecord`s to the pre-redesign engine.
//! * [`TrafficModelSpec::Poisson`] — flows arrive with exponential
//!   inter-arrival times, hold for an exponential lifetime, and the
//!   active-flow count is capped (blocked arrivals are dropped).
//! * [`TrafficModelSpec::OnOff`] — a fixed set of endpoint pairs, each
//!   alternating exponential talk/silence periods (streaming-style).
//! * [`TrafficModelSpec::Staggered`] — a deterministic ramp: flow *i*
//!   starts at *i*·gap, for scaling studies.
//!
//! ## Determinism
//!
//! A model draws all of its randomness (arrival instants, lifetimes,
//! endpoint choices) from its **own** ChaCha8 stream derived from the run
//! seed (`seed ^ TRAFFIC_STREAM`), never from the engine's main stream —
//! so adding dynamics cannot perturb MAC backoffs or per-frame loss
//! draws, and a static workload stays byte-identical to the
//! pre-traffic-model engine.

use crate::pairs::PairPool;
use crate::spec::{reachable_pairs, FlowSpec, TrafficSpec};
use mesh_sim::{Time, SEC};
use mesh_topology::{NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

pub use mesh_topology::streams::TRAFFIC_STREAM;

/// A timestamped workload event within one simulator run.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowEvent {
    /// A flow arrives at simulated time `at` (µs).
    Start {
        /// The arriving flow.
        flow: FlowSpec,
        /// Arrival instant, µs of simulated time.
        at: Time,
    },
    /// A flow departs at simulated time `at` (µs).
    Stop {
        /// Index of the departing flow: the position of its `Start` among
        /// the schedule's `Start` events, in order.
        flow: usize,
        /// Departure instant, µs of simulated time.
        at: Time,
    },
}

impl FlowEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Time {
        match self {
            FlowEvent::Start { at, .. } | FlowEvent::Stop { at, .. } => *at,
        }
    }
}

/// A workload generator: expands a run seed into one or more *schedules*,
/// each the timestamped flow arrivals/departures of one simulator run.
///
/// Schedules must be sorted by timestamp, and every [`FlowEvent::Stop`]
/// must reference an earlier `Start` (by start order). Models draw their
/// randomness from `seed ^ TRAFFIC_STREAM` so runs stay a pure function
/// of `(topology, agent, seed, channel, traffic)`.
///
/// ```
/// use mesh_sim::SEC;
/// use mesh_topology::generate;
/// use more_scenario::{PoissonModel, TrafficModel};
///
/// let topo = generate::testbed(1);
/// let model = PoissonModel {
///     rate_per_s: 0.2,
///     mean_hold_s: 10.0,
///     max_active: 4,
/// };
/// let schedules = model.schedules(&topo, 1, 64, 120 * SEC);
/// assert_eq!(schedules.len(), 1, "Poisson emits one run per seed");
/// // Same seed ⇒ the identical arrival process, for every protocol.
/// assert_eq!(schedules, model.schedules(&topo, 1, 64, 120 * SEC));
/// ```
pub trait TrafficModel: Send + Sync {
    /// The schedules of one run seed; each schedule is one simulator run
    /// (its flows share the air). `packets` is the per-flow budget from
    /// [`crate::ExpConfig`], `horizon` the run's deadline in µs — no
    /// event may be scheduled at or beyond it.
    fn schedules(
        &self,
        topo: &Topology,
        run_seed: u64,
        packets: usize,
        horizon: Time,
    ) -> Vec<Vec<FlowEvent>>;
}

/// One flow's lifetime window within a schedule, derived from its events
/// (the builder-facing view of a schedule).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FlowWindow {
    pub spec: FlowSpec,
    pub start: Time,
    pub stop: Option<Time>,
}

/// Checks a schedule obeys the [`TrafficModel`] contract, so a
/// misbehaving [`TrafficModelSpec::Custom`] model surfaces as a
/// [`crate::BuildError::InvalidSchedule`] from `try_run` instead of a
/// panic inside a worker thread. Rejects: an unsorted event list, any
/// event at or beyond the horizon, and a `Stop` referencing a flow that
/// has not started yet (which covers both unknown indices and a `Stop`
/// ordered before its `Start`). A `Stop` at the same instant as its
/// `Start` is legal — a zero-width window reports `0.0` throughput.
///
/// The built-in models satisfy this by construction; validation runs on
/// every schedule anyway as a cheap invariant check.
pub fn validate_schedule(schedule: &[FlowEvent], horizon: Time) -> Result<(), String> {
    let mut starts = 0usize;
    let mut last: Time = 0;
    for ev in schedule {
        let at = ev.at();
        if at < last {
            return Err(format!(
                "events must be time-sorted: event at {at} µs follows one at {last} µs"
            ));
        }
        last = at;
        if at >= horizon {
            return Err(format!(
                "event at {at} µs lies at or beyond the {horizon} µs run horizon"
            ));
        }
        match ev {
            FlowEvent::Start { .. } => starts += 1,
            FlowEvent::Stop { flow, .. } => {
                if *flow >= starts {
                    return Err(format!(
                        "Stop references flow {flow}, but only {starts} flow(s) have \
                         started by {at} µs (unknown flow, or a Stop before its Start)"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Collapses a schedule into per-flow windows, in start order.
///
/// # Panics
///
/// Panics when a `Stop` references a flow that has not started (callers
/// inside the engine run [`validate_schedule`] first).
pub(crate) fn flow_windows(schedule: &[FlowEvent]) -> Vec<FlowWindow> {
    let mut windows: Vec<FlowWindow> = Vec::new();
    for ev in schedule {
        match ev {
            FlowEvent::Start { flow, at } => windows.push(FlowWindow {
                spec: flow.clone(),
                start: *at,
                stop: None,
            }),
            FlowEvent::Stop { flow, at } => {
                let w = windows
                    .get_mut(*flow)
                    // xtask: allow(panic_path) -- Stop events are only emitted for flows a Start already inserted
                    .expect("Stop references a flow that never started");
                w.stop = Some(*at);
            }
        }
    }
    windows
}

/// Builds a sorted event list from `(spec, start, stop)` intervals.
fn events_from_intervals(mut intervals: Vec<(FlowSpec, Time, Option<Time>)>) -> Vec<FlowEvent> {
    // Start order is chronological; ties keep generation order.
    intervals.sort_by_key(|&(_, start, _)| start);
    let mut events: Vec<(Time, FlowEvent)> = Vec::new();
    for (i, (spec, start, stop)) in intervals.into_iter().enumerate() {
        events.push((
            start,
            FlowEvent::Start {
                flow: spec,
                at: start,
            },
        ));
        if let Some(stop) = stop {
            events.push((stop, FlowEvent::Stop { flow: i, at: stop }));
        }
    }
    events.sort_by_key(|&(at, _)| at); // stable: Start precedes its Stop
    events.into_iter().map(|(_, ev)| ev).collect()
}

/// Draws exponentially-distributed µs with the given mean (in seconds).
fn exp_us(rng: &mut ChaCha8Rng, mean_s: f64) -> Time {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean_s * SEC as f64) as Time
}

/// The legacy workload: a [`TrafficSpec`] expansion with every flow
/// starting at t = 0 and running to completion.
pub struct StaticModel(pub TrafficSpec);

impl TrafficModel for StaticModel {
    fn schedules(
        &self,
        topo: &Topology,
        run_seed: u64,
        packets: usize,
        _horizon: Time,
    ) -> Vec<Vec<FlowEvent>> {
        self.0
            .flow_sets(topo, run_seed, packets)
            .into_iter()
            .map(|flows| {
                flows
                    .into_iter()
                    .map(|flow| FlowEvent::Start { flow, at: 0 })
                    .collect()
            })
            .collect()
    }
}

/// Poisson flow arrivals over the reachable pairs of the topology:
/// exponential inter-arrival times at `rate_per_s`, exponential lifetimes
/// of mean `mean_hold_s`, and at most `max_active` simultaneous flows
/// (arrivals that would exceed the cap are dropped, M/M/c/c-style).
pub struct PoissonModel {
    /// Mean flow arrivals per simulated second.
    pub rate_per_s: f64,
    /// Mean flow lifetime in simulated seconds; a flow that completes its
    /// packet budget earlier simply finishes early.
    pub mean_hold_s: f64,
    /// Cap on simultaneously active flows.
    pub max_active: usize,
}

impl TrafficModel for PoissonModel {
    fn schedules(
        &self,
        topo: &Topology,
        run_seed: u64,
        packets: usize,
        horizon: Time,
    ) -> Vec<Vec<FlowEvent>> {
        assert!(self.rate_per_s > 0.0, "arrival rate must be positive");
        assert!(self.max_active > 0, "max_active must be at least 1");
        // Lazy pool: Poisson samples a handful of the O(n²) reachable
        // pairs, so the list is indexed — never materialized — keeping a
        // 10k-node city run at O(n) traffic memory. Draw order and pair
        // sequence match the materialized list exactly.
        let mut pool = PairPool::new(topo);
        assert!(
            !pool.is_empty(),
            "topology {} has no reachable pairs",
            topo.name
        );
        let mut rng = ChaCha8Rng::seed_from_u64(run_seed ^ TRAFFIC_STREAM);
        let mut intervals: Vec<(FlowSpec, Time, Option<Time>)> = Vec::new();
        let mut active: Vec<Time> = Vec::new(); // departure instants
        let mut t: Time = 0;
        loop {
            t += exp_us(&mut rng, 1.0 / self.rate_per_s).max(1);
            if t >= horizon {
                break;
            }
            // Depart the flows whose lifetime ended before this arrival.
            active.retain(|&stop| stop > t);
            // Every arrival draws its endpoints and lifetime even when
            // blocked, so the accepted set only depends on the cap.
            let (src, dst) = pool.get(rng.gen_range(0..pool.len()));
            let hold = exp_us(&mut rng, self.mean_hold_s).max(1);
            if active.len() >= self.max_active {
                continue; // blocked arrival
            }
            let stop = t.saturating_add(hold);
            active.push(stop);
            let stop = (stop < horizon).then_some(stop);
            intervals.push((FlowSpec::unicast(src, dst, packets), t, stop));
        }
        vec![events_from_intervals(intervals)]
    }
}

/// A fixed set of endpoint pairs, each alternating exponential ON
/// (talking) and OFF (silent) periods — the streaming-source shape. Every
/// ON period arrives as a fresh flow and departs when the period ends.
pub struct OnOffModel {
    /// Number of on-off sources (distinct pairs sampled per run seed).
    pub n_flows: usize,
    /// Mean talk-period length, simulated seconds.
    pub mean_on_s: f64,
    /// Mean silence-period length, simulated seconds.
    pub mean_off_s: f64,
}

impl TrafficModel for OnOffModel {
    fn schedules(
        &self,
        topo: &Topology,
        run_seed: u64,
        packets: usize,
        horizon: Time,
    ) -> Vec<Vec<FlowEvent>> {
        let mut rng = ChaCha8Rng::seed_from_u64(run_seed ^ TRAFFIC_STREAM);
        let mut pool = reachable_pairs(topo);
        assert!(
            pool.len() >= self.n_flows,
            "topology {} cannot host {} on-off pairs",
            topo.name,
            self.n_flows
        );
        rand::seq::SliceRandom::shuffle(&mut pool[..], &mut rng);
        let mut intervals = Vec::new();
        for &(src, dst) in pool.iter().take(self.n_flows) {
            // Each source starts silent: a random offset decorrelates the
            // sources without a shared phase.
            let mut t = exp_us(&mut rng, self.mean_off_s);
            while t < horizon {
                let on = exp_us(&mut rng, self.mean_on_s).max(1);
                let stop = t.saturating_add(on);
                intervals.push((
                    FlowSpec::unicast(src, dst, packets),
                    t,
                    (stop < horizon).then_some(stop),
                ));
                t = stop.saturating_add(exp_us(&mut rng, self.mean_off_s).max(1));
            }
        }
        vec![events_from_intervals(intervals)]
    }
}

/// A deterministic arrival ramp for scaling studies: flow *i* (endpoints
/// sampled per run seed, distinct sources) starts at `i × gap_ms` and
/// optionally departs `hold_ms` later.
pub struct StaggeredModel {
    /// Number of flows in the ramp.
    pub n_flows: usize,
    /// Gap between consecutive arrivals, milliseconds.
    pub gap_ms: u64,
    /// Lifetime of each flow, milliseconds; `None` runs to completion.
    pub hold_ms: Option<u64>,
}

impl TrafficModel for StaggeredModel {
    fn schedules(
        &self,
        topo: &Topology,
        run_seed: u64,
        packets: usize,
        horizon: Time,
    ) -> Vec<Vec<FlowEvent>> {
        let mut rng = ChaCha8Rng::seed_from_u64(run_seed ^ TRAFFIC_STREAM);
        let mut pool = reachable_pairs(topo);
        rand::seq::SliceRandom::shuffle(&mut pool[..], &mut rng);
        // Distinct sources, like TrafficSpec::RandomConcurrent.
        let mut used = std::collections::BTreeSet::new();
        let mut flows = Vec::new();
        for (s, d) in pool {
            if !used.insert(s) {
                continue;
            }
            flows.push((s, d));
            if flows.len() == self.n_flows {
                break;
            }
        }
        assert_eq!(
            flows.len(),
            self.n_flows,
            "topology {} cannot host {} distinct-source flows",
            topo.name,
            self.n_flows
        );
        let gap = self.gap_ms * mesh_sim::MS;
        let intervals = flows
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| {
                let start = i as Time * gap;
                let stop = self
                    .hold_ms
                    .map(|h| start + h * mesh_sim::MS)
                    .filter(|&s| s < horizon);
                (FlowSpec::unicast(src, dst, packets), start, stop)
            })
            .filter(|&(_, start, _)| start < horizon)
            .collect();
        vec![events_from_intervals(intervals)]
    }
}

/// Serializable description of a traffic model; builds a fresh
/// [`TrafficModel`] via [`TrafficModelSpec::build`].
///
/// `Static` wraps the legacy [`TrafficSpec`] and reproduces its expansion
/// byte-for-byte (enforced by `tests/traffic_equivalence.rs`); the other
/// variants make flow arrival dynamics a sweepable axis.
#[derive(Clone)]
pub enum TrafficModelSpec {
    /// The legacy workload (see [`StaticModel`]). The default.
    Static(TrafficSpec),
    /// Poisson arrivals (see [`PoissonModel`]).
    Poisson {
        /// Mean flow arrivals per simulated second.
        rate_per_s: f64,
        /// Mean flow lifetime, simulated seconds.
        mean_hold_s: f64,
        /// Cap on simultaneously active flows.
        max_active: usize,
    },
    /// On-off streaming sources (see [`OnOffModel`]).
    OnOff {
        /// Number of on-off sources.
        n_flows: usize,
        /// Mean talk-period length, simulated seconds.
        mean_on_s: f64,
        /// Mean silence-period length, simulated seconds.
        mean_off_s: f64,
    },
    /// A deterministic arrival ramp (see [`StaggeredModel`]).
    Staggered {
        /// Number of flows in the ramp.
        n_flows: usize,
        /// Gap between consecutive arrivals, milliseconds.
        gap_ms: u64,
        /// Lifetime of each flow, milliseconds; `None` runs to completion.
        hold_ms: Option<u64>,
    },
    /// A caller-supplied model — the escape hatch for workload shapes the
    /// built-ins cannot express.
    Custom(Arc<dyn TrafficModel>),
}

impl Default for TrafficModelSpec {
    fn default() -> Self {
        TrafficModelSpec::Static(TrafficSpec::SinglePair {
            src: NodeId(0),
            dst: NodeId(19),
        })
    }
}

impl std::fmt::Debug for TrafficModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficModelSpec::Static(spec) => write!(f, "Static({spec:?})"),
            TrafficModelSpec::Poisson {
                rate_per_s,
                mean_hold_s,
                max_active,
            } => write!(
                f,
                "Poisson{{rate:{rate_per_s}/s,hold:{mean_hold_s}s,max:{max_active}}}"
            ),
            TrafficModelSpec::OnOff {
                n_flows,
                mean_on_s,
                mean_off_s,
            } => write!(f, "OnOff{{n:{n_flows},on:{mean_on_s}s,off:{mean_off_s}s}}"),
            TrafficModelSpec::Staggered {
                n_flows,
                gap_ms,
                hold_ms,
            } => write!(
                f,
                "Staggered{{n:{n_flows},gap:{gap_ms}ms,hold:{hold_ms:?}}}"
            ),
            TrafficModelSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl TrafficModelSpec {
    /// Instantiates the model this spec describes.
    pub fn build(&self) -> Arc<dyn TrafficModel> {
        match self {
            TrafficModelSpec::Static(spec) => Arc::new(StaticModel(spec.clone())),
            TrafficModelSpec::Poisson {
                rate_per_s,
                mean_hold_s,
                max_active,
            } => Arc::new(PoissonModel {
                rate_per_s: *rate_per_s,
                mean_hold_s: *mean_hold_s,
                max_active: *max_active,
            }),
            TrafficModelSpec::OnOff {
                n_flows,
                mean_on_s,
                mean_off_s,
            } => Arc::new(OnOffModel {
                n_flows: *n_flows,
                mean_on_s: *mean_on_s,
                mean_off_s: *mean_off_s,
            }),
            TrafficModelSpec::Staggered {
                n_flows,
                gap_ms,
                hold_ms,
            } => Arc::new(StaggeredModel {
                n_flows: *n_flows,
                gap_ms: *gap_ms,
                hold_ms: *hold_ms,
            }),
            TrafficModelSpec::Custom(model) => model.clone(),
        }
    }

    /// Validates the model against an instantiated topology, so
    /// infeasible endpoint demands surface as errors from the run grid
    /// instead of panicking inside a worker (the same pattern channel
    /// validation uses). The models keep equivalent asserts as backstops
    /// for direct trait use.
    pub fn validate_for(&self, topo: &Topology) -> Result<(), String> {
        match self {
            TrafficModelSpec::Static(_) | TrafficModelSpec::Custom(_) => Ok(()),
            TrafficModelSpec::Poisson { .. } => {
                // A reachable ordered pair exists iff any `p > 0` link
                // does — O(1), where counting the pool would be O(n²)
                // at city scale.
                if topo.link_count() == 0 {
                    return Err(format!("topology {} has no reachable pairs", topo.name));
                }
                Ok(())
            }
            TrafficModelSpec::OnOff { n_flows, .. } => {
                let pairs = PairPool::new(topo).len();
                if pairs < *n_flows {
                    return Err(format!(
                        "topology {} has {pairs} reachable pairs, fewer than the \
                         {n_flows} on-off sources requested",
                        topo.name
                    ));
                }
                Ok(())
            }
            TrafficModelSpec::Staggered { n_flows, .. } => {
                // The ramp needs n_flows distinct sources, each with at
                // least one reachable destination.
                let sources = PairPool::new(topo).sources_with_destinations();
                if sources < *n_flows {
                    return Err(format!(
                        "topology {} cannot host {n_flows} distinct-source flows \
                         ({sources} sources reach anything)",
                        topo.name
                    ));
                }
                Ok(())
            }
        }
    }

    /// Validates the model's parameters against a run deadline (seconds),
    /// so bad configurations fail at build time instead of panicking
    /// inside a sweep worker. `Custom` models validate themselves.
    pub fn validate(&self, deadline_s: u64) -> Result<(), String> {
        fn positive(v: f64, what: &str) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{what} must be positive and finite, got {v}"))
            }
        }
        match self {
            TrafficModelSpec::Static(_) | TrafficModelSpec::Custom(_) => Ok(()),
            TrafficModelSpec::Poisson {
                rate_per_s,
                mean_hold_s,
                max_active,
            } => {
                positive(*rate_per_s, "Poisson arrival rate")?;
                positive(*mean_hold_s, "Poisson mean hold time")?;
                if *max_active == 0 {
                    return Err("Poisson max_active must be at least 1".into());
                }
                Ok(())
            }
            TrafficModelSpec::OnOff {
                n_flows,
                mean_on_s,
                mean_off_s,
            } => {
                if *n_flows == 0 {
                    return Err("OnOff needs at least one source".into());
                }
                positive(*mean_on_s, "OnOff mean talk period")?;
                if !mean_off_s.is_finite() || *mean_off_s < 0.0 {
                    return Err(format!(
                        "OnOff mean silence period must be non-negative and finite, \
                         got {mean_off_s}"
                    ));
                }
                Ok(())
            }
            TrafficModelSpec::Staggered {
                n_flows, gap_ms, ..
            } => {
                if *n_flows == 0 {
                    return Err("Staggered needs at least one flow".into());
                }
                // The whole ramp must fit the deadline, otherwise the tail
                // of the ramp would be silently dropped and a Flows sweep
                // would report flow counts that never ran.
                let last_start = (*n_flows as Time - 1) * gap_ms * mesh_sim::MS;
                let horizon = deadline_s * SEC;
                if last_start >= horizon {
                    return Err(format!(
                        "Staggered ramp of {n_flows} flows every {gap_ms} ms ends at \
                         {last_start} µs, at or beyond the {deadline_s} s deadline"
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    const HORIZON: Time = 240 * SEC;

    #[test]
    fn static_model_matches_flow_sets() {
        let topo = generate::testbed(1);
        let spec = TrafficSpec::RandomPairs { count: 3, seed: 7 };
        let legacy = spec.flow_sets(&topo, 1, 64);
        let schedules = StaticModel(spec).schedules(&topo, 1, 64, HORIZON);
        assert_eq!(schedules.len(), legacy.len());
        for (sched, flows) in schedules.iter().zip(&legacy) {
            let windows = flow_windows(sched);
            assert_eq!(windows.len(), flows.len());
            for (w, f) in windows.iter().zip(flows) {
                assert_eq!(&w.spec, f);
                assert_eq!(w.start, 0);
                assert_eq!(w.stop, None);
            }
        }
    }

    #[test]
    fn poisson_is_deterministic_and_seed_sensitive() {
        let topo = generate::testbed(1);
        let model = PoissonModel {
            rate_per_s: 0.5,
            mean_hold_s: 10.0,
            max_active: 4,
        };
        let a = model.schedules(&topo, 1, 32, HORIZON);
        let b = model.schedules(&topo, 1, 32, HORIZON);
        let c = model.schedules(&topo, 2, 32, HORIZON);
        assert_eq!(a, b, "same seed must replay exactly");
        assert_ne!(a, c, "different seeds must differ");
        assert!(!a[0].is_empty(), "240 s at 0.5/s should see arrivals");
        for ev in &a[0] {
            assert!(ev.at() < HORIZON);
        }
    }

    #[test]
    fn poisson_respects_the_active_cap() {
        let topo = generate::testbed(1);
        let model = PoissonModel {
            rate_per_s: 5.0,
            mean_hold_s: 1e6, // effectively immortal flows
            max_active: 3,
        };
        let schedule = model.schedules(&topo, 1, 32, HORIZON).remove(0);
        let windows = flow_windows(&schedule);
        assert_eq!(windows.len(), 3, "cap must block the fourth arrival");
    }

    #[test]
    fn onoff_alternates_start_stop_per_pair() {
        let topo = generate::testbed(1);
        let model = OnOffModel {
            n_flows: 2,
            mean_on_s: 5.0,
            mean_off_s: 5.0,
        };
        let schedule = model.schedules(&topo, 3, 32, HORIZON).remove(0);
        let windows = flow_windows(&schedule);
        assert!(windows.len() >= 2, "each source talks at least once");
        for w in &windows {
            if let Some(stop) = w.stop {
                assert!(stop > w.start);
            }
        }
        // Windows of the same pair never overlap.
        for i in 0..windows.len() {
            for j in i + 1..windows.len() {
                let (a, b) = (&windows[i], &windows[j]);
                if a.spec.src == b.spec.src && a.spec.dsts == b.spec.dsts {
                    let a_end = a.stop.unwrap_or(Time::MAX);
                    assert!(b.start >= a_end || a.start >= b.stop.unwrap_or(Time::MAX));
                }
            }
        }
    }

    #[test]
    fn staggered_ramp_is_deterministic_spacing() {
        let topo = generate::testbed(1);
        let model = StaggeredModel {
            n_flows: 4,
            gap_ms: 2_000,
            hold_ms: None,
        };
        let schedule = model.schedules(&topo, 1, 32, HORIZON).remove(0);
        let windows = flow_windows(&schedule);
        assert_eq!(windows.len(), 4);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.start, i as Time * 2_000 * mesh_sim::MS);
            assert_eq!(w.stop, None);
        }
        let sources: std::collections::BTreeSet<NodeId> =
            windows.iter().map(|w| w.spec.src).collect();
        assert_eq!(sources.len(), 4, "distinct sources");
    }

    #[test]
    fn validate_schedule_rejects_contract_violations() {
        let flow = FlowSpec::unicast(NodeId(0), NodeId(1), 8);
        let start = |at| FlowEvent::Start {
            flow: flow.clone(),
            at,
        };
        // Legal: start, zero-width stop, later stop of a known flow.
        let ok = vec![
            start(0),
            FlowEvent::Stop { flow: 0, at: 0 },
            start(10),
            FlowEvent::Stop { flow: 1, at: 20 },
        ];
        assert!(validate_schedule(&ok, 100).is_ok());
        // Stop for a flow that never started.
        let unknown = vec![start(0), FlowEvent::Stop { flow: 3, at: 5 }];
        assert!(validate_schedule(&unknown, 100)
            .unwrap_err()
            .contains("Stop references flow 3"));
        // Stop ordered before its Start.
        let early = vec![FlowEvent::Stop { flow: 0, at: 0 }, start(5)];
        assert!(validate_schedule(&early, 100).is_err());
        // Unsorted events.
        let unsorted = vec![start(10), start(5)];
        assert!(validate_schedule(&unsorted, 100)
            .unwrap_err()
            .contains("time-sorted"));
        // Event at the horizon.
        assert!(validate_schedule(&[start(100)], 100)
            .unwrap_err()
            .contains("horizon"));
    }

    #[test]
    fn built_in_models_always_validate() {
        let topo = generate::testbed(1);
        let models: Vec<Box<dyn TrafficModel>> = vec![
            Box::new(StaticModel(TrafficSpec::RandomPairs { count: 3, seed: 7 })),
            Box::new(PoissonModel {
                rate_per_s: 0.5,
                mean_hold_s: 10.0,
                max_active: 4,
            }),
            Box::new(OnOffModel {
                n_flows: 3,
                mean_on_s: 4.0,
                mean_off_s: 4.0,
            }),
            Box::new(StaggeredModel {
                n_flows: 4,
                gap_ms: 1_000,
                hold_ms: Some(2_000),
            }),
        ];
        for model in &models {
            for seed in 1..=3 {
                for schedule in model.schedules(&topo, seed, 16, HORIZON) {
                    validate_schedule(&schedule, HORIZON).expect("built-in model contract");
                }
            }
        }
    }

    #[test]
    fn events_are_time_sorted_with_valid_stop_references() {
        let topo = generate::testbed(2);
        let model = OnOffModel {
            n_flows: 3,
            mean_on_s: 2.0,
            mean_off_s: 2.0,
        };
        let schedule = model.schedules(&topo, 5, 16, HORIZON).remove(0);
        let mut starts_seen = 0usize;
        let mut last = 0;
        for ev in &schedule {
            assert!(ev.at() >= last, "events must be time-sorted");
            last = ev.at();
            match ev {
                FlowEvent::Start { .. } => starts_seen += 1,
                FlowEvent::Stop { flow, .. } => {
                    assert!(*flow < starts_seen, "Stop must follow its Start")
                }
            }
        }
    }
}
