//! The fluent [`ScenarioBuilder`] and the parallel scenario engine.
//!
//! A scenario is the cross product
//!
//! ```text
//! protocols × sweep points × seeds × flow sets
//! ```
//!
//! over one declared topology and traffic shape. Each coordinate is one
//! deterministic simulator run producing one [`RunRecord`]; the grid is
//! executed on a worker pool ([`crate::exec::par_map`]) because runs are
//! independent by construction.

use crate::exec;
use crate::record::{time_to_s, FlowRecord, RunRecord};
use crate::registry::{BuildError, ProtocolRegistry};
use crate::spec::{scale_loss, ExpConfig, FlowSpec, Sweep, TopologySpec, TrafficSpec};
use mesh_sim::{Bitrate, ChannelSpec, ErasedFlowAgent, SimConfig, Simulator, SEC};
use mesh_topology::estimator::LinkEstimator;
use mesh_topology::{NodeId, Topology};

/// Entry point: `Scenario::named("fig4_2")` starts a builder.
pub struct Scenario;

impl Scenario {
    /// Starts a fluent [`ScenarioBuilder`] for a named experiment.
    ///
    /// A scenario declares *what* to compare; [`ScenarioBuilder::run`]
    /// executes the full protocol × sweep × seed × flow-set grid and
    /// returns one [`RunRecord`] per simulator run:
    ///
    /// ```
    /// use mesh_topology::NodeId;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .packets(16)
    ///     .deadline(60)
    ///     .run();
    /// assert_eq!(records.len(), 1);
    /// assert!(records[0].all_completed());
    /// ```
    pub fn named(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }
}

/// Fluent scenario construction; see the crate docs for a worked
/// example. Finish with [`ScenarioBuilder::run`] (or
/// [`ScenarioBuilder::try_run`] to surface configuration errors as
/// values).
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: String,
    topology: TopologySpec,
    traffic: TrafficSpec,
    protocols: Vec<String>,
    sweep: Option<Sweep>,
    seeds: Vec<u64>,
    base: ExpConfig,
    sim: SimConfig,
    channel: ChannelSpec,
    probe: Option<(LinkEstimator, u64)>,
    threads: Option<usize>,
    registry: ProtocolRegistry,
}

impl ScenarioBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            topology: TopologySpec::Testbed { seed: 1 },
            traffic: TrafficSpec::SinglePair {
                src: NodeId(0),
                dst: NodeId(19),
            },
            protocols: Vec::new(),
            sweep: None,
            seeds: vec![ExpConfig::default().seed],
            base: ExpConfig::default(),
            sim: SimConfig::default(),
            channel: ChannelSpec::Static,
            probe: None,
            threads: None,
            registry: ProtocolRegistry::with_defaults(),
        }
    }

    /// Sets the topology family.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Shorthand for the paper's 20-node testbed.
    pub fn testbed(self, seed: u64) -> Self {
        self.topology(TopologySpec::Testbed { seed })
    }

    /// Sets the traffic shape.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Shorthand for one unicast pair.
    pub fn pair(self, src: NodeId, dst: NodeId) -> Self {
        self.traffic(TrafficSpec::SinglePair { src, dst })
    }

    /// Adds a protocol by registry name.
    pub fn protocol(mut self, name: impl Into<String>) -> Self {
        self.protocols.push(name.into());
        self
    }

    /// Adds several protocols in order.
    pub fn protocols<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.protocols.extend(names.into_iter().map(Into::into));
        self
    }

    /// Registers a custom factory into this scenario's registry *and*
    /// selects it, so external protocols are one call away.
    pub fn register(mut self, factory: impl crate::registry::ProtocolFactory + 'static) -> Self {
        let name = factory.name().to_string();
        self.registry.register(factory);
        // Overriding an already-selected name must not run it twice.
        if !self.protocols.iter().any(|p| p.eq_ignore_ascii_case(&name)) {
            self.protocols.push(name);
        }
        self
    }

    /// Replaces the whole registry (defaults: the paper's four).
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sweeps a parameter grid.
    pub fn sweep(mut self, sweep: Sweep) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Run seeds; the grid runs every seed (default: just seed 1).
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Packets per transfer.
    pub fn packets(mut self, packets: usize) -> Self {
        self.base.packets = packets;
        self
    }

    /// Batch size K.
    pub fn k(mut self, k: usize) -> Self {
        self.base.k = k;
        self
    }

    /// Fixed data bit-rate.
    pub fn bitrate(mut self, bitrate: Bitrate) -> Self {
        self.base.bitrate = bitrate;
        self
    }

    /// Per-run simulated-time budget, seconds.
    pub fn deadline(mut self, seconds: u64) -> Self {
        self.base.deadline_s = seconds;
        self
    }

    /// Overrides the full experiment parameter block.
    pub fn exp_config(mut self, cfg: ExpConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Overrides MAC/PHY parameters.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Sets the channel model every run's air follows (default:
    /// [`ChannelSpec::Static`], the paper's §5.3.1 model). Non-static
    /// channels are surfaced in each record's `channel` key.
    ///
    /// ```
    /// use mesh_sim::ChannelSpec;
    /// use mesh_topology::NodeId;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("bursty-doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .channel(ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10))
    ///     .packets(16)
    ///     .deadline(60)
    ///     .run();
    /// assert!(records[0].channel.starts_with("ge("));
    /// ```
    pub fn channel(mut self, spec: ChannelSpec) -> Self {
        self.channel = spec;
        self
    }

    /// Routes on *measured* beliefs instead of the truth matrix: before
    /// each run, the channel is probed for [`LinkEstimator::probes`]
    /// rounds spaced `interval_us` apart (the paper's §4.1.2 warm-up),
    /// and the estimated topology — not the truth — is handed to the
    /// protocol factories. The medium still follows the live channel, so
    /// scenarios can separate what routing believes from what the air
    /// does.
    pub fn probe_routing(mut self, estimator: LinkEstimator, interval_us: u64) -> Self {
        self.probe = Some((estimator, interval_us));
        self
    }

    /// Worker threads (default: machine parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Executes the grid, panicking on configuration errors (unknown
    /// protocol, unsupported traffic). Records arrive sorted by
    /// (protocol, sweep point, seed, traffic index).
    pub fn run(self) -> Vec<RunRecord> {
        match self.try_run() {
            Ok(records) => records,
            Err(e) => panic!("scenario failed: {e}"),
        }
    }

    /// Executes the grid, surfacing configuration errors.
    pub fn try_run(self) -> Result<Vec<RunRecord>, BuildError> {
        let protocols = if self.protocols.is_empty() {
            // No explicit selection: run everything registered.
            self.registry
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            self.protocols.clone()
        };
        // Resolve every factory up front so typos fail before any work.
        let factories: Vec<_> = protocols
            .iter()
            .map(|name| self.registry.resolve(name))
            .collect::<Result<_, _>>()?;

        let sweep_points: Vec<Option<usize>> = match &self.sweep {
            None => vec![None],
            Some(s) => (0..s.len()).map(Some).collect(),
        };

        // Work grid: protocol × sweep × seed (flow sets expand inside the
        // worker because RandomConcurrent traffic depends on the seed).
        let mut grid = Vec::new();
        for (pi, _) in factories.iter().enumerate() {
            for &sp in &sweep_points {
                for &seed in &self.seeds {
                    grid.push((pi, sp, seed));
                }
            }
        }

        let threads = self.threads.unwrap_or_else(exec::default_threads);
        let this = &self;
        let factories = &factories;
        // Probed routing beliefs depend only on (sweep point, seed), never
        // on the protocol — share one probe window across the whole grid.
        let probe_cache: std::sync::Mutex<
            std::collections::HashMap<(Option<usize>, u64), Topology>,
        > = std::sync::Mutex::new(std::collections::HashMap::new());
        let probe_cache = &probe_cache;
        let results: Vec<Result<Vec<RunRecord>, BuildError>> =
            exec::par_map(grid, threads, |&(pi, sp, seed)| {
                this.run_cell(
                    &protocols[pi],
                    factories[pi].as_ref(),
                    sp,
                    seed,
                    probe_cache,
                )
            });
        let mut records = Vec::new();
        for cell in results {
            records.extend(cell?);
        }
        Ok(records)
    }

    /// Runs every flow set of one (protocol, sweep point, seed) cell.
    fn run_cell(
        &self,
        proto_name: &str,
        factory: &dyn crate::registry::ProtocolFactory,
        sweep_point: Option<usize>,
        seed: u64,
        probe_cache: &std::sync::Mutex<std::collections::HashMap<(Option<usize>, u64), Topology>>,
    ) -> Result<Vec<RunRecord>, BuildError> {
        // Apply the sweep point to the parameter block and topology.
        let mut cfg = ExpConfig { seed, ..self.base };
        let mut sim_cfg = self.sim;
        let mut topo = self.topology.instantiate(seed);
        let mut traffic = self.traffic.clone();
        let mut chan = self.channel.clone();
        let (param, value) = match (&self.sweep, sweep_point) {
            (Some(sweep), Some(i)) => {
                match sweep {
                    Sweep::Packets(v) => cfg.packets = v[i],
                    Sweep::K(v) => cfg.k = v[i],
                    Sweep::Bitrate(v) => cfg.bitrate = v[i],
                    Sweep::LossScale(v) => topo = scale_loss(&topo, v[i]),
                    Sweep::Channel(v) => chan = v[i].clone(),
                    Sweep::Flows(v) => {
                        traffic = match traffic {
                            TrafficSpec::RandomConcurrent {
                                seed_offset,
                                distinct_sources,
                                ..
                            } => TrafficSpec::RandomConcurrent {
                                n_flows: v[i],
                                seed_offset,
                                distinct_sources,
                            },
                            other => {
                                return Err(BuildError::Unsupported(format!(
                                    "Sweep::Flows requires TrafficSpec::RandomConcurrent, got {other:?}"
                                )))
                            }
                        };
                    }
                }
                (Some(sweep.label()), Some(sweep.value(i)))
            }
            _ => (None, None),
        };
        sim_cfg.bitrate = cfg.bitrate;
        chan.validate(&topo).map_err(BuildError::Unsupported)?;

        // Routing beliefs: the truth matrix, or a probe-window estimate
        // of the live channel when `probe_routing` is set (deterministic
        // per (sweep point, seed), so protocols share one cached window;
        // a losing racer recomputes the identical topology).
        let believed = self.probe.as_ref().map(|(est, interval)| {
            let key = (sweep_point, seed);
            if let Some(t) = probe_cache.lock().expect("probe cache").get(&key) {
                return t.clone();
            }
            let t = mesh_sim::channel::probe_topology(est, &topo, &chan, seed, *interval);
            probe_cache
                .lock()
                .expect("probe cache")
                .entry(key)
                .or_insert(t)
                .clone()
        });
        let routing_topo = believed.as_ref().unwrap_or(&topo);

        let flow_sets = traffic.flow_sets(&topo, seed, cfg.packets);
        let mut records = Vec::with_capacity(flow_sets.len());
        for (ti, flows) in flow_sets.into_iter().enumerate() {
            let agent = factory.build(routing_topo, &flows, &cfg)?;
            let record = run_one(
                &self.name, proto_name, &topo, &flows, &cfg, &sim_cfg, &chan, agent, param, value,
                ti,
            );
            records.push(record);
        }
        Ok(records)
    }
}

/// Runs one flow set to completion (or deadline) and measures it.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::borrowed_box)] // run_until's stop callback receives &A = &Box<dyn _>
fn run_one(
    scenario: &str,
    protocol: &str,
    topo: &Topology,
    flows: &[FlowSpec],
    cfg: &ExpConfig,
    sim_cfg: &SimConfig,
    chan: &ChannelSpec,
    agent: Box<dyn ErasedFlowAgent>,
    param: Option<&'static str>,
    value: Option<f64>,
    traffic_index: usize,
) -> RunRecord {
    let deadline = cfg.deadline_s * SEC;
    let mut sim = Simulator::with_channel(topo.clone(), *sim_cfg, chan, agent, cfg.seed);
    for f in flows {
        sim.kick(f.src);
    }
    sim.run_until(deadline, |a: &Box<dyn ErasedFlowAgent>| a.flows_done());

    let concurrency = {
        let total = sim.stats.total_airtime();
        if total == 0 {
            0.0
        } else {
            sim.stats.concurrent_airtime as f64 / total as f64
        }
    };
    let flow_records = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let p = sim.agent.flow_progress(i);
            let (throughput_pps, completed) = match p.completed_at {
                Some(t) if t > 0 => (p.delivered as f64 / time_to_s(t), true),
                _ => (p.delivered as f64 / time_to_s(deadline), false),
            };
            FlowRecord {
                src: f.src,
                dsts: f.dsts.clone(),
                delivered: p.delivered,
                throughput_pps,
                completed,
                completed_at_s: p.completed_at.map(time_to_s),
            }
        })
        .collect();
    RunRecord {
        scenario: scenario.to_string(),
        protocol: protocol.to_string(),
        topology: topo.name.clone(),
        channel: chan.label(),
        param,
        value,
        seed: cfg.seed,
        traffic_index,
        flows: flow_records,
        total_tx: sim.stats.total_tx(),
        concurrency,
        sim_time_s: time_to_s(sim.now()),
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn unknown_protocol_fails_before_running() {
        let err = Scenario::named("bad")
            .protocol("NotARealProtocol")
            .try_run()
            .expect_err("must fail");
        assert!(matches!(err, BuildError::UnknownProtocol(_)));
    }

    #[test]
    fn flows_sweep_without_random_concurrent_is_an_error_not_a_panic() {
        let err = Scenario::named("bad-sweep")
            .pair(NodeId(0), NodeId(19))
            .protocol("MORE")
            .sweep(Sweep::Flows(vec![1, 2]))
            .packets(8)
            .try_run()
            .expect_err("mismatched sweep/traffic must surface as a value");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn registering_over_a_selected_name_does_not_duplicate_runs() {
        use crate::protocols::MoreFactory;
        let records = Scenario::named("override")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .register(MoreFactory::named("MORE", more_core::MoreConfig::default()))
            .packets(8)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2, "override must not double-run MORE");
    }

    #[test]
    fn channel_sweep_labels_every_record() {
        let ge = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
        let records = Scenario::named("air")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .sweep(Sweep::Channel(vec![ChannelSpec::Static, ge.clone()]))
            .seeds(1..=2)
            .packets(8)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2 * 2 * 2);
        assert!(records.iter().all(|r| r.param == Some("channel")));
        // Sweep value is the point index; the label names the model.
        assert!(records
            .iter()
            .any(|r| r.value == Some(0.0) && r.channel == "static"));
        assert!(records
            .iter()
            .any(|r| r.value == Some(1.0) && r.channel == ge.label()));
    }

    #[test]
    fn shadowing_without_positions_is_an_error_not_a_panic() {
        let bare = Topology::from_matrix(
            "bare",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.9],
                vec![0.0, 0.9, 0.0],
            ],
        );
        let err = Scenario::named("no-positions")
            .topology(TopologySpec::Fixed(std::sync::Arc::new(bare)))
            .pair(NodeId(0), NodeId(2))
            .protocol("Srcr")
            .channel(ChannelSpec::Shadowing {
                path_loss_exp: 3.0,
                sigma_db: 6.0,
                midpoint_m: 35.0,
                epoch_ms: 100,
            })
            .packets(4)
            .try_run()
            .expect_err("shadowing needs positions");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn probed_routing_runs_on_believed_links() {
        // Probing a bursty channel still completes the transfer: routing
        // acts on window-mean beliefs while the air keeps flapping.
        let records = Scenario::named("probed")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocol("MORE")
            .channel(ChannelSpec::bursty_matched(0.2, 0.05, 0.3, 10))
            .probe_routing(
                LinkEstimator {
                    probes: 300,
                    min_delivery: 0.05,
                },
                1_000,
            )
            .packets(8)
            .deadline(120)
            .run();
        assert_eq!(records.len(), 1);
        assert!(records[0].all_completed(), "{records:?}");
    }

    #[test]
    fn grid_shape_is_protocols_by_sweep_by_seeds() {
        let records = Scenario::named("grid")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .sweep(Sweep::K(vec![8, 16]))
            .seeds(1..=3)
            .packets(16)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2 * 2 * 3);
        // Each record carries its sweep coordinate.
        assert!(records.iter().all(|r| r.param == Some("k")));
        assert!(records
            .iter()
            .any(|r| r.protocol == "Srcr" && r.value == Some(16.0) && r.seed == 2));
    }
}
