//! The fluent [`ScenarioBuilder`] and the parallel scenario engine.
//!
//! A scenario is the cross product
//!
//! ```text
//! protocols × sweep points × seeds × flow sets
//! ```
//!
//! over one declared topology and traffic shape. Each coordinate is one
//! deterministic simulator run producing one [`RunRecord`]; the grid is
//! executed on a worker pool ([`crate::exec::par_map`]) because runs are
//! independent by construction.

// xtask: allow(panic_path, file) -- run()/run_with_sink() panic on configuration errors as their documented contract (the try_* forms are the fallible API); sweep-grid indices are bounded by the arity computed in the same function.

use crate::exec;
use crate::manifest::{cell_key, Manifest};
use crate::record::{time_to_s, FlowRecord, RunRecord};
use crate::registry::{BuildError, ProtocolRegistry};
use crate::sink::{Collect, RunSink};
use crate::spec::{scale_loss, ExpConfig, FlowSpec, Sweep, TopologySpec, TrafficSpec};
use crate::traffic::{flow_windows, validate_schedule, FlowWindow, TrafficModelSpec};
use mesh_sim::{
    AimdConfig, Bitrate, ChannelSpec, ErasedFlowAgent, FlowAgent, FlowDesc, QueueSpec, SimConfig,
    Simulator, TrafficAction, SEC, TICK,
};
use mesh_topology::estimator::LinkEstimator;
use mesh_topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::ops::ControlFlow;

/// An owned sink as stored by [`ScenarioBuilder::sink`]: `Send + Sync`
/// so the builder stays shareable with the executor's worker threads
/// (borrowed sinks via [`ScenarioBuilder::try_run_with_sink`] carry no
/// such bound — they never cross a thread).
pub type BoxedSink = Box<dyn RunSink + Send + Sync>;

/// A progress callback as stored by [`ScenarioBuilder::on_run_complete`].
pub type ProgressFn = Box<dyn FnMut(&RunRecord, Progress) + Send + Sync>;

/// Progress snapshot handed to [`ScenarioBuilder::on_run_complete`] as
/// each record is emitted (in deterministic grid order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Records emitted to the sink so far (this process; resumed cells
    /// skipped from a manifest are not re-emitted).
    pub records: usize,
    /// Grid cells fully completed, including cells skipped on resume.
    pub cells_done: usize,
    /// Total grid cells of the sweep.
    pub cells_total: usize,
}

/// What a streamed run did — returned by
/// [`ScenarioBuilder::try_run_with_sink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Records emitted to the sink.
    pub records: usize,
    /// Grid cells executed by this process.
    pub cells_run: usize,
    /// Grid cells skipped because a checkpoint manifest already had them.
    pub cells_skipped: usize,
    /// Peak records in memory at once: the executor's reorder buffer
    /// plus [`RunSink::held`] — the streaming pipeline's RSS proxy.
    /// O(workers) for streaming sinks, O(grid) for [`Collect`].
    pub records_high_water: usize,
}

/// Entry point: `Scenario::named("fig4_2")` starts a builder.
pub struct Scenario;

impl Scenario {
    /// Starts a fluent [`ScenarioBuilder`] for a named experiment.
    ///
    /// A scenario declares *what* to compare; [`ScenarioBuilder::run`]
    /// executes the full protocol × sweep × seed × flow-set grid and
    /// returns one [`RunRecord`] per simulator run:
    ///
    /// ```
    /// use mesh_topology::NodeId;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .packets(16)
    ///     .deadline(60)
    ///     .run();
    /// assert_eq!(records.len(), 1);
    /// assert!(records[0].all_completed());
    /// ```
    pub fn named(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }
}

/// Fluent scenario construction; see the crate docs for a worked
/// example. Finish with [`ScenarioBuilder::run`] (or
/// [`ScenarioBuilder::try_run`] to surface configuration errors as
/// values), or stream records into a [`RunSink`] with
/// [`ScenarioBuilder::try_run_with_sink`].
#[must_use]
pub struct ScenarioBuilder {
    name: String,
    topology: TopologySpec,
    traffic: TrafficModelSpec,
    protocols: Vec<String>,
    sweep: Option<Sweep>,
    seeds: Vec<u64>,
    base: ExpConfig,
    sim: SimConfig,
    channel: ChannelSpec,
    queue: QueueSpec,
    congestion: Option<AimdConfig>,
    probe: Option<(LinkEstimator, u64)>,
    threads: Option<usize>,
    registry: ProtocolRegistry,
    sink: Option<BoxedSink>,
    on_complete: Option<ProgressFn>,
    checkpoint_dir: Option<String>,
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .field("traffic", &self.traffic)
            .field("protocols", &self.protocols)
            .field("sweep", &self.sweep)
            .field("seeds", &self.seeds)
            .field("channel", &self.channel)
            .field("queue", &self.queue)
            .field("congestion", &self.congestion)
            .field("sink", &self.sink.as_ref().map(|_| ".."))
            .field("checkpoint_dir", &self.checkpoint_dir)
            .finish_non_exhaustive()
    }
}

impl ScenarioBuilder {
    /// A builder with the crate's defaults (testbed topology, one unicast
    /// pair, static traffic, static channel, seed 1).
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioBuilder {
            name: name.into(),
            topology: TopologySpec::Testbed { seed: 1 },
            traffic: TrafficModelSpec::default(),
            protocols: Vec::new(),
            sweep: None,
            seeds: vec![ExpConfig::default().seed],
            base: ExpConfig::default(),
            sim: SimConfig::default(),
            channel: ChannelSpec::Static,
            queue: QueueSpec::Unbounded,
            congestion: None,
            probe: None,
            threads: None,
            registry: ProtocolRegistry::with_defaults(),
            sink: None,
            on_complete: None,
            checkpoint_dir: None,
        }
    }

    /// Sets the topology family.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Shorthand for the paper's 20-node testbed.
    pub fn testbed(self, seed: u64) -> Self {
        self.topology(TopologySpec::Testbed { seed })
    }

    /// Sets a static traffic shape (the legacy [`TrafficSpec`]): every
    /// flow starts at t = 0 and runs to completion. Shorthand for
    /// `.traffic_model(TrafficModelSpec::Static(spec))`.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = TrafficModelSpec::Static(spec);
        self
    }

    /// Sets the traffic model — how flows arrive and depart over the run
    /// (default: the static [`TrafficSpec`] expansion). Dynamic models
    /// inject flows mid-run through the protocol's
    /// [`mesh_sim::FlowAgent::add_flow`] lifecycle hook and withdraw them
    /// via [`mesh_sim::FlowAgent::end_flow`]; per-flow arrival, departure,
    /// and completion latency land in each record's flow rows.
    ///
    /// ```
    /// use more_scenario::{Scenario, TopologySpec, TrafficModelSpec};
    ///
    /// let records = Scenario::named("ramp-doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 2,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.3,
    ///         spacing: 25.0,
    ///     })
    ///     .traffic_model(TrafficModelSpec::Staggered {
    ///         n_flows: 2,
    ///         gap_ms: 1_000,
    ///         hold_ms: None,
    ///     })
    ///     .protocol("MORE")
    ///     .packets(8)
    ///     .deadline(60)
    ///     .run();
    /// assert_eq!(records[0].flows.len(), 2);
    /// // The second flow of the ramp arrived one second in.
    /// assert_eq!(records[0].flows[1].started_at_s, Some(1.0));
    /// ```
    pub fn traffic_model(mut self, spec: TrafficModelSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Shorthand for one unicast pair.
    pub fn pair(self, src: NodeId, dst: NodeId) -> Self {
        self.traffic(TrafficSpec::SinglePair { src, dst })
    }

    /// Adds a protocol by registry name.
    pub fn protocol(mut self, name: impl Into<String>) -> Self {
        self.protocols.push(name.into());
        self
    }

    /// Adds several protocols in order.
    pub fn protocols<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.protocols.extend(names.into_iter().map(Into::into));
        self
    }

    /// Registers a custom factory into this scenario's registry *and*
    /// selects it, so external protocols are one call away.
    pub fn register(mut self, factory: impl crate::registry::ProtocolFactory + 'static) -> Self {
        let name = factory.name().to_string();
        self.registry.register(factory);
        // Overriding an already-selected name must not run it twice.
        if !self.protocols.iter().any(|p| p.eq_ignore_ascii_case(&name)) {
            self.protocols.push(name);
        }
        self
    }

    /// Replaces the whole registry (defaults: the paper's four).
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sweeps a parameter grid.
    pub fn sweep(mut self, sweep: Sweep) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Run seeds; the grid runs every seed (default: just seed 1).
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Packets per transfer.
    pub fn packets(mut self, packets: usize) -> Self {
        self.base.packets = packets;
        self
    }

    /// Batch size K.
    pub fn k(mut self, k: usize) -> Self {
        self.base.k = k;
        self
    }

    /// Fixed data bit-rate.
    pub fn bitrate(mut self, bitrate: Bitrate) -> Self {
        self.base.bitrate = bitrate;
        self
    }

    /// Per-run simulated-time budget, seconds.
    pub fn deadline(mut self, seconds: u64) -> Self {
        self.base.deadline_s = seconds;
        self
    }

    /// Overrides the full experiment parameter block.
    pub fn exp_config(mut self, cfg: ExpConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Overrides MAC/PHY parameters.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Sets the channel model every run's air follows (default:
    /// [`ChannelSpec::Static`], the paper's §5.3.1 model). Non-static
    /// channels are surfaced in each record's `channel` key.
    ///
    /// ```
    /// use mesh_sim::ChannelSpec;
    /// use mesh_topology::NodeId;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("bursty-doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .channel(ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10))
    ///     .packets(16)
    ///     .deadline(60)
    ///     .run();
    /// assert!(records[0].channel.starts_with("ge("));
    /// ```
    pub fn channel(mut self, spec: ChannelSpec) -> Self {
        self.channel = spec;
        self
    }

    /// Sets the per-node transmit queue discipline every run uses
    /// (default: [`QueueSpec::Unbounded`], the legacy pull-on-demand
    /// engine — byte-identical output, no `queue` key in the records).
    /// Bounded disciplines surface per-flow drops, whole-run drop totals,
    /// and Jain's fairness index in each record.
    ///
    /// ```
    /// use mesh_sim::QueueSpec;
    /// use mesh_topology::NodeId;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("queue-doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .queue(QueueSpec::drop_tail(16))
    ///     .packets(16)
    ///     .deadline(60)
    ///     .run();
    /// assert_eq!(records[0].queue, "droptail(cap=16)");
    /// assert!(records[0].fairness >= 0.0 && records[0].fairness <= 1.0);
    /// ```
    pub fn queue(mut self, spec: QueueSpec) -> Self {
        self.queue = spec;
        self
    }

    /// Enables AIMD source congestion control for every flow of every
    /// run: each source paces its injections at an additive-increase
    /// rate that halves (by [`AimdConfig::decrease`]) whenever the local
    /// queue drops one of the flow's frames. Requires a bounded
    /// [`ScenarioBuilder::queue`] — the pacer reacts to queue losses, and
    /// the unbounded legacy path has none. At `Sweep::Queue` points that
    /// are unbounded, pacing is skipped for that point.
    pub fn congestion(mut self, cfg: AimdConfig) -> Self {
        self.congestion = Some(cfg);
        self
    }

    /// Routes on *measured* beliefs instead of the truth matrix: before
    /// each run, the channel is probed for [`LinkEstimator::probes`]
    /// rounds spaced `interval_us` apart (the paper's §4.1.2 warm-up),
    /// and the estimated topology — not the truth — is handed to the
    /// protocol factories. The medium still follows the live channel, so
    /// scenarios can separate what routing believes from what the air
    /// does.
    pub fn probe_routing(mut self, estimator: LinkEstimator, interval_us: u64) -> Self {
        self.probe = Some((estimator, interval_us));
        self
    }

    /// Worker threads (default: machine parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Streams records into `sink` instead of collecting them:
    /// [`ScenarioBuilder::try_run`] then returns an **empty** `Vec` and
    /// the records live wherever the sink put them. Borrow-friendly
    /// alternative: [`ScenarioBuilder::try_run_with_sink`].
    ///
    /// ```
    /// use mesh_topology::NodeId;
    /// use more_scenario::sink::Aggregate;
    /// use more_scenario::{Scenario, TopologySpec};
    ///
    /// let records = Scenario::named("sink-doc")
    ///     .topology(TopologySpec::Line {
    ///         hops: 1,
    ///         p_adj: 0.9,
    ///         skip_decay: 0.0,
    ///         spacing: 20.0,
    ///     })
    ///     .pair(NodeId(0), NodeId(1))
    ///     .protocol("MORE")
    ///     .packets(16)
    ///     .deadline(60)
    ///     .sink(Aggregate::new())
    ///     .run();
    /// assert!(records.is_empty(), "records streamed into the sink");
    /// ```
    pub fn sink(mut self, sink: impl RunSink + Send + Sync + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Registers a progress callback invoked once per emitted record, in
    /// deterministic grid order, with a [`Progress`] snapshot — the hook
    /// long sweeps use for live status lines.
    pub fn on_run_complete(
        mut self,
        cb: impl FnMut(&RunRecord, Progress) + Send + Sync + 'static,
    ) -> Self {
        self.on_complete = Some(Box::new(cb));
        self
    }

    /// Makes the sweep resumable: after every completed grid cell the
    /// engine persists `<dir>/<scenario>.manifest.json` — the completed
    /// cell keys plus a durable byte offset for every file the sink owns
    /// (atomic temp-file + rename). When the manifest already exists,
    /// the run **resumes**: completed cells are skipped, sink files are
    /// trimmed to their last checkpoint (dropping any torn tail from a
    /// mid-write kill), and the remaining cells append — ending
    /// byte-identical to an uninterrupted run. Use the `append`
    /// constructors of the file sinks ([`crate::sink::JsonLines::append`],
    /// [`crate::sink::CsvAppend::append`]) so an earlier attempt's bytes
    /// survive the reopen. Resuming into a purely in-memory sink
    /// ([`Collect`], [`crate::sink::Aggregate`]) is rejected — it would
    /// silently hold only the cells this process ran, not the resumed
    /// prefix.
    pub fn checkpoint(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Executes the grid, panicking on configuration errors (unknown
    /// protocol, unsupported traffic). Records arrive sorted by
    /// (protocol, sweep point, seed, traffic index). With a configured
    /// [`ScenarioBuilder::sink`] the returned `Vec` is empty — the
    /// records streamed into the sink instead.
    pub fn run(self) -> Vec<RunRecord> {
        match self.try_run() {
            Ok(records) => records,
            Err(e) => panic!("scenario failed: {e}"),
        }
    }

    /// Executes the grid, streaming every record into `sink` (in
    /// deterministic grid order) and panicking on configuration errors.
    pub fn run_with_sink(self, sink: &mut dyn RunSink) -> RunSummary {
        match self.try_run_with_sink(sink) {
            Ok(summary) => summary,
            Err(e) => panic!("scenario failed: {e}"),
        }
    }

    /// Executes the grid, streaming every record into `sink`, surfacing
    /// configuration and I/O errors. The sink receives records in the
    /// same deterministic order [`ScenarioBuilder::run`] returns them;
    /// any sink configured via [`ScenarioBuilder::sink`] is ignored in
    /// favor of the argument.
    pub fn try_run_with_sink(mut self, sink: &mut dyn RunSink) -> Result<RunSummary, BuildError> {
        self.sink = None;
        self.stream_into(sink)
    }

    /// Checks that the declared sweep can be applied to the declared
    /// traffic model and that the model's parameters (at every sweep
    /// point) are valid, so mismatches fail at build time — before any
    /// worker thread spawns — like channel-spec validation does.
    fn validate_sweep_traffic(&self) -> Result<(), BuildError> {
        match (&self.sweep, &self.traffic) {
            (
                Some(Sweep::Flows(_)),
                TrafficModelSpec::Static(TrafficSpec::RandomConcurrent { .. })
                | TrafficModelSpec::Staggered { .. },
            ) => {}
            (Some(Sweep::Flows(_)), other) => {
                return Err(BuildError::Unsupported(format!(
                    "Sweep::Flows requires TrafficSpec::RandomConcurrent or \
                     TrafficModelSpec::Staggered traffic, got {other:?}"
                )))
            }
            (Some(Sweep::Load(_)), TrafficModelSpec::Poisson { .. }) => {}
            (Some(Sweep::Load(_)), other) => {
                return Err(BuildError::Unsupported(format!(
                    "Sweep::Load sweeps the arrival rate of TrafficModelSpec::Poisson \
                     traffic, got {other:?}"
                )))
            }
            _ => {}
        }
        let deadline_s = self.base.deadline_s;
        // When the sweep overrides one of the model's parameters, the base
        // value never runs — only the substituted configurations below do,
        // so validating the base spec would spuriously reject valid sweeps
        // (e.g. a placeholder n_flows too large for the deadline).
        let sweep_overrides_model = matches!(
            (&self.sweep, &self.traffic),
            (Some(Sweep::Load(_)), TrafficModelSpec::Poisson { .. })
                | (Some(Sweep::Flows(_)), TrafficModelSpec::Staggered { .. })
        );
        if !sweep_overrides_model {
            self.traffic
                .validate(deadline_s)
                .map_err(BuildError::Unsupported)?;
        }
        // Every sweep point substitutes a parameter into the model; each
        // substituted configuration must be valid too.
        match (&self.sweep, &self.traffic) {
            (
                Some(Sweep::Load(v)),
                TrafficModelSpec::Poisson {
                    mean_hold_s,
                    max_active,
                    ..
                },
            ) => {
                for &rate_per_s in v {
                    TrafficModelSpec::Poisson {
                        rate_per_s,
                        mean_hold_s: *mean_hold_s,
                        max_active: *max_active,
                    }
                    .validate(deadline_s)
                    .map_err(BuildError::Unsupported)?;
                }
            }
            (
                Some(Sweep::Flows(v)),
                TrafficModelSpec::Staggered {
                    gap_ms, hold_ms, ..
                },
            ) => {
                for &n_flows in v {
                    TrafficModelSpec::Staggered {
                        n_flows,
                        gap_ms: *gap_ms,
                        hold_ms: *hold_ms,
                    }
                    .validate(deadline_s)
                    .map_err(BuildError::Unsupported)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Checks the queue discipline and congestion-control parameters (at
    /// every sweep point) so bad configurations fail at build time, like
    /// channel-spec and traffic validation do.
    fn validate_queue(&self) -> Result<(), BuildError> {
        self.queue.validate().map_err(BuildError::InvalidQueue)?;
        if let Some(Sweep::Queue(points)) = &self.sweep {
            for spec in points {
                spec.validate().map_err(BuildError::InvalidQueue)?;
            }
        }
        if let Some(cc) = &self.congestion {
            cc.validate().map_err(BuildError::InvalidQueue)?;
            // The pacer is keyed to queue losses; a grid with no bounded
            // queue anywhere would silently never pace.
            let any_bounded = !self.queue.is_unbounded()
                || matches!(&self.sweep, Some(Sweep::Queue(points))
                    if points.iter().any(|q| !q.is_unbounded()));
            if !any_bounded {
                return Err(BuildError::InvalidQueue(
                    "congestion control requires a bounded queue discipline \
                     (set ScenarioBuilder::queue or sweep Sweep::Queue with a \
                     bounded point); the unbounded legacy path has no queue \
                     losses to react to"
                        .to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Executes the grid, surfacing configuration errors. With a
    /// configured [`ScenarioBuilder::sink`] the returned `Vec` is empty —
    /// the records streamed into the sink instead; otherwise a default
    /// [`Collect`] sink reproduces the legacy materialize-everything
    /// behavior byte for byte.
    pub fn try_run(mut self) -> Result<Vec<RunRecord>, BuildError> {
        match self.sink.take() {
            Some(mut sink) => {
                self.stream_into(sink.as_mut())?;
                Ok(Vec::new())
            }
            None => {
                let mut collect = Collect::new();
                self.stream_into(&mut collect)?;
                Ok(collect.into_records())
            }
        }
    }

    /// The streaming core under every `run` flavor: executes the grid on
    /// the sharded executor, restores deterministic grid order with a
    /// bounded reorder buffer, and feeds `sink` one record at a time —
    /// checkpointing each completed cell when
    /// [`ScenarioBuilder::checkpoint`] is set.
    fn stream_into(mut self, sink: &mut dyn RunSink) -> Result<RunSummary, BuildError> {
        self.validate_sweep_traffic()?;
        self.validate_queue()?;
        let mut on_complete = self.on_complete.take();
        let protocols = if self.protocols.is_empty() {
            // No explicit selection: run everything registered.
            self.registry
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            self.protocols.clone()
        };
        // Resolve every factory up front so typos fail before any work.
        let factories: Vec<_> = protocols
            .iter()
            .map(|name| self.registry.resolve(name))
            .collect::<Result<Vec<_>, _>>()?;

        let sweep_points: Vec<Option<usize>> = match &self.sweep {
            None => vec![None],
            Some(s) => (0..s.len()).map(Some).collect(),
        };

        // Work grid: protocol × sweep × seed (flow sets expand inside the
        // worker because RandomConcurrent traffic depends on the seed).
        let mut grid = Vec::new();
        for (pi, _) in factories.iter().enumerate() {
            for &sp in &sweep_points {
                for &seed in &self.seeds {
                    grid.push((pi, sp, seed));
                }
            }
        }
        let keys: Vec<String> = grid
            .iter()
            .map(|&(pi, sp, seed)| cell_key(&protocols[pi], sp, seed))
            .collect();

        // Checkpoint/resume: load (or start) the manifest, trim the sink
        // files to their last durable offsets, and skip the completed
        // prefix of the grid. The fingerprint covers everything the cell
        // keys don't: resuming after changing packets, the swept values,
        // the channel, etc. must be rejected, not silently mixed into
        // one output file. (`Custom(..)` topologies/traffic fingerprint
        // opaquely — two different custom closures are indistinguishable
        // here.)
        let mut fingerprint = format!(
            "topo={:?} traffic={:?} sweep={:?} base={:?} sim={:?} channel={} probe={:?}",
            self.topology,
            self.traffic,
            self.sweep,
            self.base,
            self.sim,
            self.channel.label(),
            self.probe,
        );
        // Appended only when configured, so manifests written before the
        // queueing subsystem existed still resume.
        if !self.queue.is_unbounded() {
            fingerprint.push_str(&format!(" queue={}", self.queue.label()));
        }
        if let Some(cc) = &self.congestion {
            fingerprint.push_str(&format!(" cc={}", cc.label()));
        }
        let sink_err = |e: std::io::Error| BuildError::Sink(e.to_string());
        let (mut manifest, manifest_path, skipped) = match &self.checkpoint_dir {
            None => (None, String::new(), 0),
            Some(dir) => {
                let path = Manifest::path_for(dir, &self.name);
                match Manifest::load(&path).map_err(sink_err)? {
                    None => {
                        // Fresh checkpointed sweep: claim the sink files
                        // (drop bytes from any earlier un-manifested
                        // attempt so append-mode sinks start clean).
                        sink.rewind_to(&BTreeMap::new()).map_err(sink_err)?;
                        (Some(Manifest::new(&self.name, &fingerprint)), path, 0)
                    }
                    Some(m) => {
                        // Records are emitted in grid order, so a valid
                        // manifest is always an exact prefix of this
                        // grid with the same configuration; anything
                        // else means the scenario changed under the
                        // checkpoint.
                        if m.scenario != self.name
                            || m.config != fingerprint
                            || m.cells.len() > keys.len()
                            || m.cells[..] != keys[..m.cells.len()]
                        {
                            return Err(BuildError::Sink(format!(
                                "manifest {path} does not match this scenario's grid \
                                 or configuration (was the sweep reconfigured \
                                 mid-resume?); delete it to restart the sweep"
                            )));
                        }
                        // Resuming only makes sense into file-backed
                        // sinks: an in-memory sink (Collect, Aggregate)
                        // would silently hold just the non-skipped tail.
                        if !m.cells.is_empty() && sink.offsets().map_err(sink_err)?.is_empty() {
                            return Err(BuildError::Sink(format!(
                                "manifest {path} has {} completed cell(s), but the \
                                 attached sink owns no files to resume into — an \
                                 in-memory sink would silently miss the completed \
                                 prefix; use JsonLines/CsvAppend (append mode), or \
                                 delete the manifest to restart the sweep",
                                m.cells.len()
                            )));
                        }
                        sink.rewind_to(&m.sink_offsets).map_err(sink_err)?;
                        let skipped = m.cells.len();
                        (Some(m), path, skipped)
                    }
                }
            }
        };
        let todo: Vec<(usize, Option<usize>, u64)> = grid[skipped..].to_vec();
        let cells_total = grid.len();

        let threads = self.threads.unwrap_or_else(exec::default_threads);
        let this = &self;
        let factories = &factories;
        let protocols_ref = &protocols;
        // Probed routing beliefs depend only on (sweep point, seed), never
        // on the protocol — share one probe window across the whole grid.
        let probe_cache: std::sync::Mutex<BTreeMap<(Option<usize>, u64), Topology>> =
            std::sync::Mutex::new(BTreeMap::new());
        let probe_cache = &probe_cache;

        // Drain state: workers report cells in completion order; the
        // reorder buffer holds out-of-order cells until their turn, so
        // the sink always sees deterministic grid order while memory
        // stays bounded by how far completion runs ahead of emission.
        let mut pending: BTreeMap<usize, Vec<RunRecord>> = BTreeMap::new();
        let mut pending_records = 0usize;
        let mut next_emit = 0usize;
        let mut emitted = 0usize;
        let mut high_water = 0usize;
        let mut failure: Option<BuildError> = None;

        exec::par_map_streaming(
            todo,
            threads,
            |&(pi, sp, seed)| {
                this.run_cell(
                    &protocols_ref[pi],
                    factories[pi].as_ref(),
                    sp,
                    seed,
                    probe_cache,
                )
            },
            |j, result| {
                let records = match result {
                    Ok(records) => records,
                    Err(e) => {
                        failure = Some(e);
                        return ControlFlow::Break(());
                    }
                };
                pending_records += records.len();
                pending.insert(j, records);
                high_water = high_water.max(pending_records + sink.held());
                while let Some(records) = pending.remove(&next_emit) {
                    pending_records -= records.len();
                    for r in &records {
                        if let Err(e) = sink.record(r) {
                            failure = Some(BuildError::Sink(e.to_string()));
                            return ControlFlow::Break(());
                        }
                        emitted += 1;
                        high_water = high_water.max(pending_records + sink.held());
                        if let Some(cb) = on_complete.as_mut() {
                            cb(
                                r,
                                Progress {
                                    records: emitted,
                                    cells_done: skipped + next_emit,
                                    cells_total,
                                },
                            );
                        }
                    }
                    // Durability boundary: flush — and checkpoint — per
                    // completed grid cell.
                    let committed = match &mut manifest {
                        Some(m) => sink.offsets().and_then(|offsets| {
                            m.commit(&manifest_path, keys[skipped + next_emit].clone(), offsets)
                        }),
                        None => sink.flush(),
                    };
                    if let Err(e) = committed {
                        failure = Some(BuildError::Sink(e.to_string()));
                        return ControlFlow::Break(());
                    }
                    next_emit += 1;
                }
                ControlFlow::Continue(())
            },
        );
        if let Some(e) = failure {
            return Err(e);
        }
        sink.finish().map_err(sink_err)?;
        Ok(RunSummary {
            records: emitted,
            cells_run: next_emit,
            cells_skipped: skipped,
            records_high_water: high_water,
        })
    }

    /// Runs every flow set of one (protocol, sweep point, seed) cell.
    fn run_cell(
        &self,
        proto_name: &str,
        factory: &dyn crate::registry::ProtocolFactory,
        sweep_point: Option<usize>,
        seed: u64,
        probe_cache: &std::sync::Mutex<std::collections::BTreeMap<(Option<usize>, u64), Topology>>,
    ) -> Result<Vec<RunRecord>, BuildError> {
        // Apply the sweep point to the parameter block and topology.
        let mut cfg = ExpConfig { seed, ..self.base };
        let mut sim_cfg = self.sim;
        let mut topo = self.topology.instantiate(seed);
        if topo.n() == 0 {
            return Err(BuildError::Unsupported(format!(
                "topology {} has no nodes; nothing can be scheduled or routed",
                topo.name
            )));
        }
        let mut traffic = self.traffic.clone();
        let mut chan = self.channel.clone();
        let mut queue = self.queue.clone();
        let (param, value) = match (&self.sweep, sweep_point) {
            (Some(sweep), Some(i)) => {
                match sweep {
                    Sweep::Packets(v) => cfg.packets = v[i],
                    Sweep::K(v) => cfg.k = v[i],
                    Sweep::Bitrate(v) => cfg.bitrate = v[i],
                    Sweep::LossScale(v) => topo = scale_loss(&topo, v[i]),
                    Sweep::Channel(v) => chan = v[i].clone(),
                    Sweep::Queue(v) => queue = v[i].clone(),
                    Sweep::Flows(v) => {
                        traffic = match traffic {
                            TrafficModelSpec::Static(TrafficSpec::RandomConcurrent {
                                seed_offset,
                                distinct_sources,
                                ..
                            }) => TrafficModelSpec::Static(TrafficSpec::RandomConcurrent {
                                n_flows: v[i],
                                seed_offset,
                                distinct_sources,
                            }),
                            TrafficModelSpec::Staggered {
                                gap_ms, hold_ms, ..
                            } => TrafficModelSpec::Staggered {
                                n_flows: v[i],
                                gap_ms,
                                hold_ms,
                            },
                            // Unreachable through try_run (validated up
                            // front), kept for direct run_cell callers.
                            other => {
                                return Err(BuildError::Unsupported(format!(
                                    "Sweep::Flows requires TrafficSpec::RandomConcurrent or \
                                     TrafficModelSpec::Staggered traffic, got {other:?}"
                                )))
                            }
                        };
                    }
                    Sweep::Load(v) => {
                        traffic = match traffic {
                            TrafficModelSpec::Poisson {
                                mean_hold_s,
                                max_active,
                                ..
                            } => TrafficModelSpec::Poisson {
                                rate_per_s: v[i],
                                mean_hold_s,
                                max_active,
                            },
                            other => {
                                return Err(BuildError::Unsupported(format!(
                                    "Sweep::Load sweeps the arrival rate of \
                                     TrafficModelSpec::Poisson traffic, got {other:?}"
                                )))
                            }
                        };
                    }
                }
                (Some(sweep.label()), Some(sweep.value(i)))
            }
            _ => (None, None),
        };
        sim_cfg.bitrate = cfg.bitrate;
        chan.validate(&topo).map_err(BuildError::Unsupported)?;
        // Revalidated here — like the channel — for direct run_cell
        // callers that bypass try_run's up-front check.
        queue.validate().map_err(BuildError::InvalidQueue)?;

        // Routing beliefs: the truth matrix, or a probe-window estimate
        // of the live channel when `probe_routing` is set (deterministic
        // per (sweep point, seed), so protocols share one cached window;
        // a losing racer recomputes the identical topology).
        let believed = self.probe.as_ref().map(|(est, interval)| {
            let key = (sweep_point, seed);
            if let Some(t) = probe_cache.lock().expect("probe cache").get(&key) {
                return t.clone();
            }
            let t = mesh_sim::channel::probe_topology(est, &topo, &chan, seed, *interval);
            probe_cache
                .lock()
                .expect("probe cache")
                .entry(key)
                .or_insert(t)
                .clone()
        });
        let routing_topo = believed.as_ref().unwrap_or(&topo);

        let horizon = cfg.deadline_s * SEC;
        // Endpoint feasibility depends on the instantiated topology, so it
        // is checked here — like the channel spec — and surfaces as an
        // error from the grid instead of a worker panic.
        traffic
            .validate_for(&topo)
            .map_err(BuildError::Unsupported)?;
        let model = traffic.build();
        let schedules = model.schedules(&topo, seed, cfg.packets, horizon);
        let mut records = Vec::with_capacity(schedules.len());
        for (ti, schedule) in schedules.into_iter().enumerate() {
            // A misbehaving Custom model (Stop for an unknown flow, Stop
            // before its Start, events past the horizon) must surface as
            // a BuildError from the grid, not a panic inside a worker
            // thread; the built-ins satisfy this by construction.
            validate_schedule(&schedule, horizon).map_err(|e| {
                BuildError::InvalidSchedule(format!("traffic model {:?}: {e}", self.traffic))
            })?;
            let windows = flow_windows(&schedule);
            // Degenerate endpoints — out-of-range nodes, self-flows,
            // unreachable (src, dst) pairs on single-node or partitioned
            // meshes — must surface as grid errors, not ETX/EOTX panics
            // inside the factory.
            validate_endpoints(routing_topo, &windows)?;
            // Flows arriving at t = 0 are installed at construction — the
            // legacy path, byte-identical for static workloads; the rest
            // are injected mid-run through the agent's lifecycle hooks.
            let initial: Vec<FlowSpec> = windows
                .iter()
                .filter(|w| w.start == 0)
                .map(|w| w.spec.clone())
                .collect();
            let agent = factory.build(routing_topo, &initial, &cfg)?;
            let dynamic = windows.iter().any(|w| w.start > 0 || w.stop.is_some());
            if dynamic && !agent.supports_dynamic_flows() {
                return Err(BuildError::Unsupported(format!(
                    "protocol {proto_name} does not implement the dynamic flow \
                     lifecycle (FlowAgent::add_flow/end_flow) required by \
                     traffic model {:?}",
                    self.traffic
                )));
            }
            let record = run_one(
                &self.name,
                proto_name,
                &topo,
                &windows,
                dynamic,
                &cfg,
                &sim_cfg,
                &chan,
                &queue,
                self.congestion,
                agent,
                param,
                value,
                ti,
            );
            records.push(record);
        }
        Ok(records)
    }
}

/// Rejects flows no protocol can route: endpoints outside the topology,
/// self-flows, and (src, dst) pairs with no `p > 0` path in the routing
/// topology. ETX/EOTX table and forwarder-plan extraction assume a
/// finite-cost path; without this check a degenerate single-node mesh,
/// a partitioned city layout, or a probe window that lost the last link
/// to a destination panics deep inside a worker thread instead of
/// surfacing a [`BuildError`] from the grid.
fn validate_endpoints(topo: &Topology, windows: &[FlowWindow]) -> Result<(), BuildError> {
    let n = topo.n();
    // One BFS per distinct source, shared across its flows.
    let mut reach: BTreeMap<usize, Vec<Option<usize>>> = BTreeMap::new();
    for w in windows {
        let f = &w.spec;
        if f.src.0 >= n {
            return Err(BuildError::Unsupported(format!(
                "flow source {} is outside topology {} ({n} nodes)",
                f.src, topo.name
            )));
        }
        let hops = reach
            .entry(f.src.0)
            .or_insert_with(|| topo.hops_from(f.src));
        for &d in &f.dsts {
            if d.0 >= n {
                return Err(BuildError::Unsupported(format!(
                    "flow destination {d} is outside topology {} ({n} nodes)",
                    topo.name
                )));
            }
            if d == f.src {
                return Err(BuildError::Unsupported(format!(
                    "flow {} -> {d} sends to its own source; routing metrics \
                     are undefined for self-flows",
                    f.src
                )));
            }
            if hops[d.0].is_none() {
                return Err(BuildError::Unsupported(format!(
                    "destination {d} is unreachable from source {} in topology \
                     {}; no p > 0 path exists for route extraction",
                    f.src, topo.name
                )));
            }
        }
    }
    Ok(())
}

/// Runs one flow schedule to completion (or deadline) and measures it.
///
/// Flows starting at t = 0 are pre-installed in `agent` and kicked, the
/// rest are injected through the simulator's traffic queue; per-flow
/// arrival/departure/latency is recorded for dynamic schedules (and
/// omitted for static ones, which stay byte-identical to the
/// pre-traffic-model engine). A bounded `queue` installs the queueing
/// layer; `congestion` then paces every flow's source (flow ids are
/// `1..=windows.len()` in window order — the factory contract — and
/// dynamically arriving flows are auto-paced via the traffic hook).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::borrowed_box)] // run's stop callback receives &A = &Box<dyn _>
fn run_one(
    scenario: &str,
    protocol: &str,
    topo: &Topology,
    windows: &[FlowWindow],
    dynamic: bool,
    cfg: &ExpConfig,
    sim_cfg: &SimConfig,
    chan: &ChannelSpec,
    queue: &QueueSpec,
    congestion: Option<AimdConfig>,
    agent: Box<dyn ErasedFlowAgent>,
    param: Option<&'static str>,
    value: Option<f64>,
    traffic_index: usize,
) -> RunRecord {
    let deadline = cfg.deadline_s * SEC;
    let mut sim = Simulator::with_queue(topo.clone(), *sim_cfg, chan, queue, agent, cfg.seed);
    if let Some(cc) = congestion.filter(|_| !queue.is_unbounded()) {
        for (i, w) in windows.iter().enumerate() {
            if w.start == 0 {
                sim.pace_flow(i as u32 + 1, w.spec.src, cc);
            }
        }
        // Flows the traffic model injects mid-run are paced as they
        // arrive.
        sim.pace_all_flows(cc);
    }
    for (i, w) in windows.iter().enumerate() {
        if w.start == 0 {
            sim.kick(w.spec.src);
        } else {
            sim.schedule_traffic(
                w.start,
                TrafficAction::Start(FlowDesc {
                    src: w.spec.src,
                    dsts: w.spec.dsts.clone(),
                    packets: w.spec.packets,
                }),
            );
        }
        if let Some(stop) = w.stop {
            sim.schedule_traffic(stop, TrafficAction::Stop(i));
        }
    }
    sim.run_with_traffic(deadline, |a: &Box<dyn ErasedFlowAgent>| a.flows_done());

    let concurrency = {
        let total = sim.stats.total_airtime();
        if total == 0 {
            0.0
        } else {
            sim.stats.concurrent_airtime as f64 / total as f64
        }
    };
    let flow_records = windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let p = sim.agent.flow_progress(i);
            let start = w.start;
            let (throughput_pps, completed) = match p.completed_at {
                Some(t) if t > start => (p.delivered as f64 / time_to_s(t - start), true),
                _ => {
                    // Ran until departure or deadline without finishing.
                    // A zero-width active window — a Poisson arrival at
                    // the horizon edge, or a departure at the arrival
                    // instant — must report 0.0 (the flow was never
                    // active): a 0-width division would emit a
                    // non-finite value that poisons NaN-intolerant
                    // downstream stats. The TICK clamp is redundant
                    // while `Time` is integer µs (end > start implies
                    // ≥ 1 tick) — it pins the invariant against a
                    // finer-grained Time ever landing.
                    let end = w.stop.unwrap_or(deadline).min(deadline);
                    let tput = if end <= start {
                        0.0
                    } else {
                        p.delivered as f64 / time_to_s((end - start).max(TICK))
                    };
                    (tput, false)
                }
            };
            FlowRecord {
                src: w.spec.src,
                dsts: w.spec.dsts.clone(),
                delivered: p.delivered,
                throughput_pps,
                queue_drops: sim
                    .stats
                    .queue_drops_by_flow
                    .get(&(i as u32 + 1))
                    .copied()
                    .unwrap_or(0),
                completed,
                completed_at_s: p.completed_at.map(time_to_s),
                started_at_s: dynamic.then(|| time_to_s(start)),
                // A departure only counts if the flow had not already
                // completed its budget when it fired.
                stopped_at_s: w
                    .stop
                    .filter(|&s| p.completed_at.is_none_or(|t| t > s))
                    .map(time_to_s),
                latency_s: if dynamic {
                    p.completed_at
                        .filter(|&t| t > start)
                        .map(|t| time_to_s(t - start))
                } else {
                    None
                },
            }
        })
        .collect::<Vec<FlowRecord>>();
    let throughputs: Vec<f64> = flow_records.iter().map(|f| f.throughput_pps).collect();
    RunRecord {
        scenario: scenario.to_string(),
        protocol: protocol.to_string(),
        topology: topo.name.clone(),
        channel: chan.label(),
        queue: queue.label(),
        param,
        value,
        seed: cfg.seed,
        traffic_index,
        flows: flow_records,
        total_tx: sim.stats.total_tx(),
        queue_drops: sim.stats.total_queue_drops(),
        fairness: mesh_metrics::fairness::jain(&throughputs),
        concurrency,
        sim_time_s: time_to_s(sim.now()),
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn unknown_protocol_fails_before_running() {
        let err = Scenario::named("bad")
            .protocol("NotARealProtocol")
            .try_run()
            .expect_err("must fail");
        assert!(matches!(err, BuildError::UnknownProtocol(_)));
    }

    #[test]
    fn flows_sweep_without_random_concurrent_is_an_error_not_a_panic() {
        let err = Scenario::named("bad-sweep")
            .pair(NodeId(0), NodeId(19))
            .protocol("MORE")
            .sweep(Sweep::Flows(vec![1, 2]))
            .packets(8)
            .try_run()
            .expect_err("mismatched sweep/traffic must surface as a value");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn load_sweep_without_poisson_is_an_error_before_running() {
        let err = Scenario::named("bad-load")
            .pair(NodeId(0), NodeId(19))
            .protocol("MORE")
            .sweep(Sweep::Load(vec![0.1, 0.5]))
            .packets(8)
            .try_run()
            .expect_err("Sweep::Load needs Poisson traffic");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn load_sweep_runs_dynamic_arrivals_across_protocols() {
        // The acceptance scenario: a Poisson arrival-rate sweep for MORE,
        // ExOR, and Srcr, with flows starting (and possibly stopping)
        // mid-run, surfaced per flow in the records.
        let records = Scenario::named("load")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Poisson {
                rate_per_s: 0.1,
                mean_hold_s: 20.0,
                max_active: 2,
            })
            .protocols(["MORE", "ExOR", "Srcr"])
            .sweep(Sweep::Load(vec![0.1, 0.3]))
            .k(8)
            .packets(16)
            .deadline(90)
            .run();
        assert_eq!(records.len(), 3 * 2);
        assert!(records.iter().all(|r| r.param == Some("load")));
        assert!(records.iter().any(|r| r.value == Some(0.3)));
        // Every flow of a dynamic run carries its arrival time, and at
        // least one flow genuinely arrived mid-run.
        for r in &records {
            for f in &r.flows {
                assert!(f.started_at_s.is_some(), "missing arrival: {r:?}");
            }
        }
        assert!(
            records
                .iter()
                .flat_map(|r| &r.flows)
                .any(|f| f.started_at_s.is_some_and(|s| s > 0.0)),
            "no mid-run arrival in the whole sweep"
        );
        // The same rate point sees the same arrival process for every
        // protocol (the fairness property the comparison rests on).
        let arrivals = |proto: &str| -> Vec<Vec<Option<f64>>> {
            records
                .iter()
                .filter(|r| r.protocol == proto)
                .map(|r| r.flows.iter().map(|f| f.started_at_s).collect())
                .collect()
        };
        assert_eq!(arrivals("MORE"), arrivals("Srcr"));
        assert_eq!(arrivals("MORE"), arrivals("ExOR"));
    }

    #[test]
    fn bad_traffic_parameters_fail_at_build_time() {
        // A zero arrival rate must be rejected before any worker thread
        // could panic on it — whether set directly or via the sweep.
        let poisson = |rate| TrafficModelSpec::Poisson {
            rate_per_s: rate,
            mean_hold_s: 10.0,
            max_active: 2,
        };
        let direct = Scenario::named("bad-rate")
            .traffic_model(poisson(0.0))
            .protocol("MORE")
            .packets(8)
            .try_run()
            .expect_err("zero arrival rate");
        assert!(matches!(direct, BuildError::Unsupported(_)));
        let swept = Scenario::named("bad-swept-rate")
            .traffic_model(poisson(0.1))
            .protocol("MORE")
            .sweep(Sweep::Load(vec![0.1, 0.0]))
            .packets(8)
            .try_run()
            .expect_err("zero swept arrival rate");
        assert!(matches!(swept, BuildError::Unsupported(_)));
        // A ramp wanting more distinct sources than the topology has must
        // error from the grid, not panic inside a worker thread.
        let infeasible = Scenario::named("bad-sources")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 25, // testbed has 20 nodes
                gap_ms: 10,
                hold_ms: None,
            })
            .protocol("MORE")
            .packets(8)
            .try_run()
            .expect_err("25 distinct sources on a 20-node mesh");
        assert!(matches!(infeasible, BuildError::Unsupported(_)));
        // A staggered ramp reaching past the deadline would silently drop
        // its tail; reject it instead.
        let ramp = Scenario::named("bad-ramp")
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 10,
                gap_ms: 20_000,
                hold_ms: None,
            })
            .protocol("MORE")
            .packets(8)
            .deadline(60)
            .try_run()
            .expect_err("ramp exceeds the deadline");
        assert!(matches!(ramp, BuildError::Unsupported(_)));
    }

    #[test]
    fn swept_parameter_is_validated_instead_of_the_base_placeholder() {
        // The base n_flows (64, whose ramp would blow past the deadline)
        // never runs — Sweep::Flows replaces it per point — so only the
        // swept values may be validated.
        let records = Scenario::named("swept-ramp")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 64,
                gap_ms: 10_000,
                hold_ms: None,
            })
            .protocol("Srcr")
            .sweep(Sweep::Flows(vec![1, 2]))
            .packets(8)
            .deadline(120)
            .run();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].flows.len(), 2);
        // And an invalid *swept* value is still rejected up front.
        let err = Scenario::named("swept-ramp-bad")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 2,
                gap_ms: 10_000,
                hold_ms: None,
            })
            .protocol("Srcr")
            .sweep(Sweep::Flows(vec![1, 64]))
            .packets(8)
            .deadline(120)
            .try_run()
            .expect_err("swept ramp exceeds the deadline");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn pending_departure_does_not_inflate_run_time() {
        // The flow finishes its budget in well under a second; the
        // scheduled 60 s departure must not keep the run alive (a Stop
        // cannot un-resolve a flow) nor be reported as a departure.
        let records = Scenario::named("early-finish")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 1,
                gap_ms: 0,
                hold_ms: Some(60_000),
            })
            .protocol("MORE")
            .packets(16)
            .deadline(120)
            .run();
        let r = &records[0];
        assert!(r.all_completed(), "{r:?}");
        assert!(
            r.sim_time_s < 5.0,
            "run lingered until the moot departure: {r:?}"
        );
        assert_eq!(r.flows[0].stopped_at_s, None, "completed before the stop");
        assert!(r.flows[0].latency_s.is_some());
    }

    #[test]
    fn staggered_departures_cut_flows_short() {
        let records = Scenario::named("ramp")
            .testbed(1)
            .traffic_model(TrafficModelSpec::Staggered {
                n_flows: 2,
                gap_ms: 500,
                hold_ms: Some(1_000),
            })
            .protocol("Srcr")
            .packets(100_000) // far more than 1 s can carry
            .deadline(30)
            .run();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.flows.len(), 2);
        for (i, f) in r.flows.iter().enumerate() {
            let start = i as f64 * 0.5;
            assert_eq!(f.started_at_s, Some(start));
            assert_eq!(f.stopped_at_s, Some(start + 1.0));
            assert!(!f.completed, "a truncated flow cannot complete");
            assert!(f.delivered > 0, "flow {i} moved nothing while active");
            assert_eq!(f.latency_s, None);
        }
        // end_flow really halts the flows: the run ends at the last
        // departure, not at the 30 s deadline.
        assert!(r.sim_time_s < 5.0, "halted flows kept the run alive: {r:?}");
    }

    #[test]
    fn registering_over_a_selected_name_does_not_duplicate_runs() {
        use crate::protocols::MoreFactory;
        let records = Scenario::named("override")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .register(MoreFactory::named("MORE", more_core::MoreConfig::default()))
            .packets(8)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2, "override must not double-run MORE");
    }

    #[test]
    fn channel_sweep_labels_every_record() {
        let ge = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
        let records = Scenario::named("air")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .sweep(Sweep::Channel(vec![ChannelSpec::Static, ge.clone()]))
            .seeds(1..=2)
            .packets(8)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2 * 2 * 2);
        assert!(records.iter().all(|r| r.param == Some("channel")));
        // Sweep value is the point index; the label names the model.
        assert!(records
            .iter()
            .any(|r| r.value == Some(0.0) && r.channel == "static"));
        assert!(records
            .iter()
            .any(|r| r.value == Some(1.0) && r.channel == ge.label()));
    }

    #[test]
    fn shadowing_without_positions_is_an_error_not_a_panic() {
        let bare = Topology::from_matrix(
            "bare",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.9],
                vec![0.0, 0.9, 0.0],
            ],
        );
        let err = Scenario::named("no-positions")
            .topology(TopologySpec::Fixed(std::sync::Arc::new(bare)))
            .pair(NodeId(0), NodeId(2))
            .protocol("Srcr")
            .channel(ChannelSpec::Shadowing {
                path_loss_exp: 3.0,
                sigma_db: 6.0,
                midpoint_m: 35.0,
                epoch_ms: 100,
            })
            .packets(4)
            .try_run()
            .expect_err("shadowing needs positions");
        assert!(matches!(err, BuildError::Unsupported(_)));
    }

    #[test]
    fn probed_routing_runs_on_believed_links() {
        // Probing a bursty channel still completes the transfer: routing
        // acts on window-mean beliefs while the air keeps flapping.
        let records = Scenario::named("probed")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocol("MORE")
            .channel(ChannelSpec::bursty_matched(0.2, 0.05, 0.3, 10))
            .probe_routing(
                LinkEstimator {
                    probes: 300,
                    min_delivery: 0.05,
                },
                1_000,
            )
            .packets(8)
            .deadline(120)
            .run();
        assert_eq!(records.len(), 1);
        assert!(records[0].all_completed(), "{records:?}");
    }

    #[test]
    fn grid_shape_is_protocols_by_sweep_by_seeds() {
        let records = Scenario::named("grid")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(2))
            .protocols(["MORE", "Srcr"])
            .sweep(Sweep::K(vec![8, 16]))
            .seeds(1..=3)
            .packets(16)
            .deadline(60)
            .run();
        assert_eq!(records.len(), 2 * 2 * 3);
        // Each record carries its sweep coordinate.
        assert!(records.iter().all(|r| r.param == Some("k")));
        assert!(records
            .iter()
            .any(|r| r.protocol == "Srcr" && r.value == Some(16.0) && r.seed == 2));
    }

    /// Two disconnected 2-cliques.
    fn split_topology() -> Topology {
        let mut m = vec![vec![0.0; 4]; 4];
        m[0][1] = 0.9;
        m[1][0] = 0.9;
        m[2][3] = 0.9;
        m[3][2] = 0.9;
        Topology::from_matrix("split", m)
    }

    #[test]
    fn unreachable_pair_is_a_build_error_not_a_panic() {
        let err = Scenario::named("partitioned")
            .topology(TopologySpec::Fixed(std::sync::Arc::new(split_topology())))
            .pair(NodeId(0), NodeId(3))
            .protocol("Srcr")
            .packets(4)
            .try_run()
            .expect_err("a cross-partition pair must surface as a BuildError");
        match err {
            BuildError::Unsupported(msg) => assert!(msg.contains("unreachable"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn single_node_self_flow_is_a_build_error_not_a_panic() {
        let lone = Topology::from_matrix("lone", vec![vec![0.0]]);
        let err = Scenario::named("lone")
            .topology(TopologySpec::Fixed(std::sync::Arc::new(lone)))
            .pair(NodeId(0), NodeId(0))
            .protocol("MORE")
            .packets(4)
            .try_run()
            .expect_err("a single-node mesh cannot host a flow");
        match err {
            BuildError::Unsupported(msg) => assert!(msg.contains("own source"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn empty_topology_is_a_build_error_not_a_panic() {
        let none = Topology::from_matrix("none", Vec::new());
        let err = Scenario::named("empty")
            .topology(TopologySpec::Fixed(std::sync::Arc::new(none)))
            .pair(NodeId(0), NodeId(1))
            .protocol("Srcr")
            .packets(4)
            .try_run()
            .expect_err("an empty mesh must be rejected up front");
        match err {
            BuildError::Unsupported(msg) => assert!(msg.contains("no nodes"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_endpoint_is_a_build_error_not_a_panic() {
        let err = Scenario::named("oob")
            .topology(TopologySpec::Line {
                hops: 2,
                p_adj: 0.9,
                skip_decay: 0.3,
                spacing: 25.0,
            })
            .pair(NodeId(0), NodeId(9))
            .protocol("Srcr")
            .packets(4)
            .try_run()
            .expect_err("an endpoint past n must be rejected");
        match err {
            BuildError::Unsupported(msg) => assert!(msg.contains("outside topology"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }
}
