//! Streaming result sinks: where [`RunRecord`]s go as the grid runs.
//!
//! `Scenario::run` historically materialized every record in memory and
//! serialized after the whole grid finished — a million-run sweep was
//! memory-bound and all-or-nothing. A [`RunSink`] receives each record
//! **as its grid cell completes** (in deterministic grid order, restored
//! from the executor's completion-order drain by a bounded reorder
//! buffer), so results can stream to disk, fold into bounded-memory
//! summaries, or fan out to several destinations at once:
//!
//! * [`Collect`] — today's `Vec<RunRecord>`; the default behind
//!   [`crate::ScenarioBuilder::try_run`], byte-identical output.
//! * [`JsonLines`] — one [`RunRecord::to_json_line`] object per line,
//!   appended incrementally.
//! * [`CsvAppend`] — [`RunRecord::CSV_HEADER`] + one row per flow,
//!   appended incrementally; byte-identical to [`crate::record::to_csv`].
//! * [`Aggregate`] — per-cell streaming summaries (count, mean, min/max,
//!   P²-estimated quantiles) that never hold a raw record.
//! * [`Tee`] — forwards to any number of child sinks.
//!
//! File sinks participate in checkpoint/resume (see
//! [`crate::ScenarioBuilder::checkpoint`]) through [`RunSink::offsets`]
//! and [`RunSink::rewind_to`]: the manifest records a durable byte offset
//! per owned file after every completed cell, and a resumed sweep trims
//! any torn tail past the last checkpoint before appending.

// xtask: allow(panic_path, file) -- rows are built to the header arity in this same module before any column is indexed, and the P^2 quantile state uses exactly five markers by construction.

use crate::record::{to_csv, to_json, RunRecord};
use std::collections::BTreeMap;
use std::io::{self, Seek, SeekFrom, Write};

/// A streaming consumer of [`RunRecord`]s.
///
/// The scenario engine calls [`RunSink::record`] once per run in
/// deterministic grid order — `(protocol, sweep point, seed, traffic
/// index)`, the exact order `Scenario::run` returns — then
/// [`RunSink::flush`] after each completed grid cell and
/// [`RunSink::finish`] once after the last record. Implementations
/// should hold as little as the format allows: the engine reports its
/// peak records-in-memory ([`crate::RunSummary::records_high_water`])
/// as `reorder-buffer + `[`RunSink::held`].
pub trait RunSink {
    /// Consumes one run record.
    fn record(&mut self, r: &RunRecord) -> io::Result<()>;

    /// Makes everything recorded so far durable (called after each
    /// completed grid cell).
    fn flush(&mut self) -> io::Result<()>;

    /// Called once after the final record of a successful run; writers
    /// emit trailers/summaries here.
    fn finish(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Records currently buffered in memory (the engine's peak-RSS
    /// proxy). `0` for sinks that stream everything out.
    fn held(&self) -> usize {
        0
    }

    /// Flushes and reports `(path, durable byte offset)` for every file
    /// this sink owns — the checkpoint manifest stores these after each
    /// grid cell. In-memory sinks own no files.
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        Ok(Vec::new())
    }

    /// Rewinds every owned file to its checkpointed offset (missing
    /// entry = 0) before a resumed sweep appends. Trims torn tails left
    /// by a mid-write kill.
    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        let _ = offsets;
        Ok(())
    }
}

/// Forwarding impl so borrowed sinks compose (e.g. a [`Tee`] over
/// `&mut Collect` the caller keeps inspecting afterwards).
impl<S: RunSink + ?Sized> RunSink for &mut S {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        (**self).record(r)
    }
    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
    fn finish(&mut self) -> io::Result<()> {
        (**self).finish()
    }
    fn held(&self) -> usize {
        (**self).held()
    }
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        (**self).offsets()
    }
    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        (**self).rewind_to(offsets)
    }
}

/// The legacy shape: collects every record into a `Vec`. Default sink of
/// [`crate::ScenarioBuilder::try_run`], byte-identical to the
/// pre-streaming engine.
#[derive(Debug, Default)]
#[must_use]
pub struct Collect {
    records: Vec<RunRecord>,
}

impl Collect {
    /// An empty collector.
    pub fn new() -> Self {
        Collect::default()
    }

    /// The records collected so far, in grid order.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Consumes the collector, yielding the records.
    pub fn into_records(self) -> Vec<RunRecord> {
        self.records
    }

    /// Serializes the collected records exactly like
    /// [`crate::record::to_json`].
    pub fn to_json(&self) -> String {
        to_json(&self.records)
    }

    /// Serializes the collected records exactly like
    /// [`crate::record::to_csv`].
    pub fn to_csv(&self) -> String {
        to_csv(&self.records)
    }
}

impl RunSink for Collect {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        self.records.push(r.clone());
        Ok(())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn held(&self) -> usize {
        self.records.len()
    }
}

/// Opens `path` for writing, creating parent directories.
fn open_file(path: &str, fresh: bool) -> io::Result<std::fs::File> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut opts = std::fs::OpenOptions::new();
    opts.read(true).write(true).create(true);
    if fresh {
        opts.truncate(true);
    }
    let mut file = opts.open(path)?;
    if !fresh {
        file.seek(SeekFrom::End(0))?;
    }
    Ok(file)
}

/// Shared body of the two incremental file sinks: a buffered file whose
/// durable length is tracked for checkpointing.
#[derive(Debug)]
struct FileSink {
    path: String,
    file: io::BufWriter<std::fs::File>,
    /// Bytes known to be on disk *and* in the buffer — the offset the
    /// next write lands at.
    written: u64,
}

impl FileSink {
    fn open(path: &str, fresh: bool) -> io::Result<Self> {
        let file = open_file(path, fresh)?;
        let written = file.metadata()?.len();
        Ok(FileSink {
            path: path.to_string(),
            file: io::BufWriter::new(file),
            written,
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn offset(&mut self) -> io::Result<(String, u64)> {
        self.flush()?;
        Ok((self.path.clone(), self.written))
    }

    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        self.flush()?;
        let target = offsets.get(&self.path).copied().unwrap_or(0);
        // A file shorter than its checkpointed offset means the caller
        // reopened it with a truncating constructor (or the file was
        // deleted while the manifest survived); set_len would silently
        // zero-extend and corrupt the resumed output, so refuse instead.
        if self.written < target {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} is {} bytes but its checkpoint manifest recorded {target}; \
                     reopen resumable sinks with the `append` constructors (or \
                     delete the manifest to restart the sweep)",
                    self.path, self.written,
                ),
            ));
        }
        let file = self.file.get_mut();
        file.set_len(target)?;
        file.seek(SeekFrom::Start(target))?;
        self.written = target;
        Ok(())
    }
}

/// Incremental JSON-Lines writer: one [`RunRecord::to_json_line`] object
/// per line. The lines are exactly the elements [`crate::record::to_json`]
/// would emit, so a JSONL file carries the same bytes per record as the
/// legacy array format.
#[derive(Debug)]
pub struct JsonLines {
    inner: FileSink,
}

impl JsonLines {
    /// Creates (truncating) `path` and streams records into it.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonLines {
            inner: FileSink::open(path, true)?,
        })
    }

    /// Opens `path` for appending (creating it if missing) — the mode
    /// resumable sweeps need.
    pub fn append(path: &str) -> io::Result<Self> {
        Ok(JsonLines {
            inner: FileSink::open(path, false)?,
        })
    }

    /// The file this sink writes.
    pub fn path(&self) -> &str {
        &self.inner.path
    }
}

impl RunSink for JsonLines {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        let mut line = r.to_json_line();
        line.push('\n');
        self.inner.write_all(line.as_bytes())
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        Ok(vec![self.inner.offset()?])
    }
    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        self.inner.rewind_to(offsets)
    }
}

/// Incremental CSV writer: [`RunRecord::CSV_HEADER`] once, then one row
/// per flow — byte-identical to [`crate::record::to_csv`] over the same
/// records.
#[derive(Debug)]
pub struct CsvAppend {
    inner: FileSink,
}

impl CsvAppend {
    /// Creates (truncating) `path`; the header is written before the
    /// first row.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(CsvAppend {
            inner: FileSink::open(path, true)?,
        })
    }

    /// Opens `path` for appending (creating it if missing); the header
    /// is only written when the file is empty.
    pub fn append(path: &str) -> io::Result<Self> {
        Ok(CsvAppend {
            inner: FileSink::open(path, false)?,
        })
    }

    /// The file this sink writes.
    pub fn path(&self) -> &str {
        &self.inner.path
    }

    fn header_if_empty(&mut self) -> io::Result<()> {
        if self.inner.written == 0 {
            self.inner
                .write_all(format!("{}\n", RunRecord::CSV_HEADER).as_bytes())?;
        }
        Ok(())
    }
}

impl RunSink for CsvAppend {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        self.header_if_empty()?;
        for row in r.to_csv_rows() {
            self.inner.write_all(row.as_bytes())?;
            self.inner.write_all(b"\n")?;
        }
        Ok(())
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        Ok(vec![self.inner.offset()?])
    }
    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        self.inner.rewind_to(offsets)
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac 1985): tracks one
/// quantile of an unbounded stream with five markers and O(1) memory —
/// what lets [`Aggregate`] report p50/p90 without holding raw samples.
#[derive(Clone, Debug)]
#[must_use]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates), ascending.
    heights: [f64; 5],
    /// Marker positions, 1-based.
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    /// Samples seen; the first five initialize the markers.
    n: usize,
}

impl P2Quantile {
    /// An estimator for the `q`-quantile (0 < q < 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P² tracks interior quantiles");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
        }
    }

    /// Feeds one sample.
    pub fn observe(&mut self, x: f64) {
        if self.n < 5 {
            self.heights[self.n] = x;
            self.n += 1;
            if self.n == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.n += 1;
        // Locate the cell and bump the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // x < heights[4] here, so the find always succeeds.
            (1..5).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired
        // positions with the parabolic (P²) formula, falling back to
        // linear interpolation when the parabola would cross a neighbor.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = {
                    let (hp, h, hm) = (self.heights[i + 1], self.heights[i], self.heights[i - 1]);
                    h + d / (right - left)
                        * ((self.positions[i] - self.positions[i - 1] + d) * (hp - h) / right
                            + (self.positions[i + 1] - self.positions[i] - d) * (h - hm) / -left)
                };
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else if d > 0.0 {
                        self.heights[i] + (self.heights[i + 1] - self.heights[i]) / right
                    } else {
                        self.heights[i] - (self.heights[i - 1] - self.heights[i]) / left
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The current estimate (exact for ≤ 5 samples; `0.0` before any).
    pub fn estimate(&self) -> f64 {
        match self.n {
            0 => 0.0,
            n @ 1..=5 => {
                let mut v = self.heights[..n.min(5)].to_vec();
                v.sort_by(f64::total_cmp);
                let idx = ((self.q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
                v[idx]
            }
            _ => self.heights[2],
        }
    }

    /// Samples observed.
    pub fn count(&self) -> usize {
        self.n
    }
}

/// One grid cell's bounded-memory summary — see [`Aggregate`].
#[derive(Clone, Debug)]
pub struct CellSummary {
    /// Protocol registry name.
    pub protocol: String,
    /// Sweep parameter name, when swept.
    pub param: Option<&'static str>,
    /// Sweep value at this cell.
    pub value: Option<f64>,
    /// Channel label of the cell's runs.
    pub channel: String,
    /// Runs folded into this cell.
    pub runs: usize,
    /// Flows across those runs.
    pub flows: usize,
    /// Flows that completed before the deadline.
    pub completed_flows: usize,
    /// Mean per-flow throughput, packets/s.
    pub mean_throughput_pps: f64,
    /// Smallest per-flow throughput seen.
    pub min_throughput_pps: f64,
    /// Largest per-flow throughput seen.
    pub max_throughput_pps: f64,
    /// P²-estimated median per-flow throughput.
    pub p50_throughput_pps: f64,
    /// P²-estimated 90th-percentile per-flow throughput.
    pub p90_throughput_pps: f64,
    /// Total data-frame transmissions across the cell's runs.
    pub total_tx: u64,
}

#[derive(Clone, Debug)]
struct CellAgg {
    runs: usize,
    flows: usize,
    completed: usize,
    sum_tput: f64,
    min_tput: f64,
    max_tput: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    total_tx: u64,
}

impl CellAgg {
    fn new() -> Self {
        CellAgg {
            runs: 0,
            flows: 0,
            completed: 0,
            sum_tput: 0.0,
            min_tput: f64::INFINITY,
            max_tput: f64::NEG_INFINITY,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            total_tx: 0,
        }
    }
}

/// Bounded-memory per-cell summaries: mean/min/max/quantile of per-flow
/// throughput plus run and completion counts, keyed by `(protocol,
/// sweep point, channel)`. Never holds a raw [`RunRecord`]
/// ([`RunSink::held`] stays 0), so a million-run sweep aggregates in
/// O(cells) memory.
#[derive(Debug, Default)]
#[must_use]
pub struct Aggregate {
    cells: BTreeMap<(String, Option<&'static str>, String, String), CellAgg>,
    out: Option<String>,
}

impl Aggregate {
    /// An in-memory aggregator; read it back with
    /// [`Aggregate::summaries`] or [`Aggregate::summary_json`].
    pub fn new() -> Self {
        Aggregate::default()
    }

    /// Also writes [`Aggregate::summary_json`] to `path` on
    /// [`RunSink::finish`].
    pub fn with_output(path: &str) -> Self {
        Aggregate {
            cells: BTreeMap::new(),
            out: Some(path.to_string()),
        }
    }

    /// The summaries accumulated so far, in key order.
    pub fn summaries(&self) -> Vec<CellSummary> {
        self.cells
            .iter()
            .map(|((proto, param, value, channel), agg)| CellSummary {
                protocol: proto.clone(),
                param: *param,
                value: if value.is_empty() {
                    None
                } else {
                    value.parse().ok()
                },
                channel: channel.clone(),
                runs: agg.runs,
                flows: agg.flows,
                completed_flows: agg.completed,
                mean_throughput_pps: if agg.flows == 0 {
                    0.0
                } else {
                    agg.sum_tput / agg.flows as f64
                },
                min_throughput_pps: if agg.flows == 0 { 0.0 } else { agg.min_tput },
                max_throughput_pps: if agg.flows == 0 { 0.0 } else { agg.max_tput },
                p50_throughput_pps: agg.p50.estimate(),
                p90_throughput_pps: agg.p90.estimate(),
                total_tx: agg.total_tx,
            })
            .collect()
    }

    /// The summaries as a JSON array (hand-rolled, like [`crate::record`]).
    pub fn summary_json(&self) -> String {
        let rows: Vec<String> = self
            .summaries()
            .iter()
            .map(|s| {
                format!(
                    "  {{\"protocol\": \"{}\", \"param\": {}, \"value\": {}, \
                     \"channel\": \"{}\", \"runs\": {}, \"flows\": {}, \
                     \"completed_flows\": {}, \"mean_throughput_pps\": {:.3}, \
                     \"min_throughput_pps\": {:.3}, \"max_throughput_pps\": {:.3}, \
                     \"p50_throughput_pps\": {:.3}, \"p90_throughput_pps\": {:.3}, \
                     \"total_tx\": {}}}",
                    mesh_topology::json::escape(&s.protocol),
                    s.param
                        .map(|p| format!("\"{p}\""))
                        .unwrap_or_else(|| "null".into()),
                    s.value
                        .map(|v| format!("{v}"))
                        .unwrap_or_else(|| "null".into()),
                    mesh_topology::json::escape(&s.channel),
                    s.runs,
                    s.flows,
                    s.completed_flows,
                    s.mean_throughput_pps,
                    s.min_throughput_pps,
                    s.max_throughput_pps,
                    s.p50_throughput_pps,
                    s.p90_throughput_pps,
                    s.total_tx,
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

impl RunSink for Aggregate {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        let key = (
            r.protocol.clone(),
            r.param,
            r.value.map(|v| format!("{v}")).unwrap_or_default(),
            r.channel.clone(),
        );
        let agg = self.cells.entry(key).or_insert_with(CellAgg::new);
        agg.runs += 1;
        agg.total_tx += r.total_tx;
        for f in &r.flows {
            agg.flows += 1;
            if f.completed {
                agg.completed += 1;
            }
            agg.sum_tput += f.throughput_pps;
            agg.min_tput = agg.min_tput.min(f.throughput_pps);
            agg.max_tput = agg.max_tput.max(f.throughput_pps);
            agg.p50.observe(f.throughput_pps);
            agg.p90.observe(f.throughput_pps);
        }
        Ok(())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn finish(&mut self) -> io::Result<()> {
        if let Some(path) = &self.out {
            if let Some(parent) = std::path::Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, self.summary_json())?;
        }
        Ok(())
    }
}

/// Fans every record out to several child sinks, in order. Children can
/// be owned boxes or `&mut` borrows (so a caller can keep a [`Collect`]
/// to read back while files stream beside it).
#[derive(Default)]
#[must_use]
pub struct Tee<'a> {
    children: Vec<Box<dyn RunSink + 'a>>,
}

impl<'a> Tee<'a> {
    /// An empty tee; add children with [`Tee::with`].
    pub fn new() -> Self {
        Tee {
            children: Vec::new(),
        }
    }

    /// Adds a child sink (builder style).
    pub fn with(mut self, sink: impl RunSink + 'a) -> Self {
        self.children.push(Box::new(sink));
        self
    }
}

impl RunSink for Tee<'_> {
    fn record(&mut self, r: &RunRecord) -> io::Result<()> {
        for c in &mut self.children {
            c.record(r)?;
        }
        Ok(())
    }
    fn flush(&mut self) -> io::Result<()> {
        for c in &mut self.children {
            c.flush()?;
        }
        Ok(())
    }
    fn finish(&mut self) -> io::Result<()> {
        for c in &mut self.children {
            c.finish()?;
        }
        Ok(())
    }
    fn held(&self) -> usize {
        self.children.iter().map(|c| c.held()).sum()
    }
    fn offsets(&mut self) -> io::Result<Vec<(String, u64)>> {
        let mut all = Vec::new();
        for c in &mut self.children {
            all.extend(c.offsets()?);
        }
        Ok(all)
    }
    fn rewind_to(&mut self, offsets: &BTreeMap<String, u64>) -> io::Result<()> {
        for c in &mut self.children {
            c.rewind_to(offsets)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn p2_tracks_quantiles_of_a_known_stream() {
        // 0..=999 uniformly: p50 ≈ 500, p90 ≈ 900. P² is an estimator,
        // so allow a few percent.
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        // A fixed LCG permutation so the stream isn't sorted.
        let mut x: u64 = 1;
        for _ in 0..1000 {
            x = (x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                >> 1;
            let v = (x % 1000) as f64;
            p50.observe(v);
            p90.observe(v);
        }
        assert!((p50.estimate() - 500.0).abs() < 50.0, "{}", p50.estimate());
        assert!((p90.estimate() - 900.0).abs() < 50.0, "{}", p90.estimate());
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), 0.0);
        for v in [5.0, 1.0, 3.0] {
            p.observe(v);
        }
        assert_eq!(p.estimate(), 3.0, "exact median of 3 samples");
    }

    #[test]
    fn tee_fans_out_and_sums_held() {
        let mut a = Collect::new();
        let mut b = Collect::new();
        {
            let mut tee = Tee::new().with(&mut a).with(&mut b);
            let r = crate::record::test_support::sample_record();
            tee.record(&r).unwrap();
            tee.record(&r).unwrap();
            assert_eq!(tee.held(), 4);
            tee.finish().unwrap();
        }
        assert_eq!(a.records().len(), 2);
        assert_eq!(b.records().len(), 2);
    }
}
