//! Work-stealing-free parallel map on scoped std threads.
//!
//! Replaces the seed's `crossbeam::scope` + `parking_lot::Mutex`
//! implementation (neither dependency is available offline, and
//! `std::thread::scope` has covered this use since Rust 1.63). Workers
//! pull indices from a shared atomic counter, so uneven per-item costs —
//! a dead-spot Srcr run takes its full deadline while a one-hop MORE run
//! finishes in milliseconds — balance automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on `threads` workers, preserving input order.
///
/// Panics in `f` propagate (the scope re-raises worker panics).
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    {
        // Inner scope: `slots` must release its borrow of `results`
        // before the collect below takes ownership.
        let slots = Mutex::new(&mut results);
        let (items_ref, f_ref, slots_ref, next_ref) = (&items, &f, &slots, &next);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f_ref(&items_ref[i]);
                    slots_ref.lock().expect("no poisoned workers")[i] = Some(r);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

/// Default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn preserves_order_and_visits_all() {
        let out = par_map((0..500).collect(), 8, |&x: &i32| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let out = par_map(vec![1, 2, 3], 1, |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = par_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(empty.is_empty());
    }
}
