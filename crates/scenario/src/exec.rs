//! Sharded parallel executor on scoped std threads.
//!
//! Replaces the seed's `crossbeam::scope` + `parking_lot::Mutex`
//! implementation (neither dependency is available offline, and
//! `std::thread::scope` has covered this use since Rust 1.63). Workers
//! pull indices from a shared atomic counter, so uneven per-item costs —
//! a dead-spot Srcr run takes its full deadline while a one-hop MORE run
//! finishes in milliseconds — balance automatically.
//!
//! Results no longer funnel through a global `Mutex` around the slot
//! vector: each worker owns a channel shard and forwards every completed
//! `(index, result)` pair the moment it finishes, and the **caller's
//! thread** drains the channel in completion order. That is what lets the
//! scenario engine stream records into a [`crate::sink::RunSink`] while
//! the grid is still running instead of materializing the whole result
//! set first — [`par_map`] keeps its collect-into-input-order contract on
//! top of the same machinery.

// xtask: allow(panic_path, file) -- worker indices come from a fetch_add bounded by the n-check directly above; the slot vector is sized n and par_map_streaming visits every index exactly once.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on `threads` workers, draining each result on
/// the caller's thread **in completion order** (not input order).
///
/// `drain(index, result)` receives the input index alongside the result
/// so callers can restore deterministic ordering with a bounded reorder
/// buffer; returning [`ControlFlow::Break`] stops the map early — workers
/// finish their in-flight item, notice the closed channel, and wind down
/// without starting new work.
///
/// Panics in `f` propagate (the scope re-raises worker panics after the
/// drain loop ends); a panicking worker never stalls the drain because
/// its channel shard closes when it unwinds.
pub fn par_map_streaming<T, R, F, C>(items: Vec<T>, threads: usize, f: F, mut drain: C)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        for (i, item) in items.iter().enumerate() {
            if drain(i, f(item)).is_break() {
                return;
            }
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // Bounded channel = backpressure: when the drain (a slow sink, a
    // stalling checkpoint fsync) falls behind, workers block in `send`
    // instead of queueing the whole grid's results in memory — the
    // pipeline's O(workers) records-in-flight bound depends on this.
    let (tx, rx) = mpsc::sync_channel::<(usize, R)>(threads * 2);
    let (items_ref, f_ref, next_ref) = (&items, &f, &next);
    std::thread::scope(move |scope| {
        for _ in 0..threads {
            let shard = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A closed channel means the caller broke out of the
                // drain (error or early stop): abandon remaining work.
                if shard.send((i, f_ref(&items_ref[i]))).is_err() {
                    break;
                }
            });
        }
        // Only workers hold senders now; the drain below ends when the
        // last worker finishes (or every worker panicked).
        drop(tx);
        for (i, r) in rx.iter() {
            if drain(i, r).is_break() {
                break;
            }
        }
        // Dropping `rx` here (scope end) closes the channel, so workers
        // stop pulling new indices; the scope then joins them and
        // re-raises any worker panic.
    });
}

/// Maps `f` over `items` on `threads` workers, preserving input order.
///
/// Panics in `f` propagate (the scope re-raises worker panics). Built on
/// [`par_map_streaming`]; the slot vector is written only by the caller's
/// draining thread, so no lock is involved.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    par_map_streaming(items, threads, f, |i, r| {
        slots[i] = Some(r);
        ControlFlow::Continue(())
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

/// Default worker count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn preserves_order_and_visits_all() {
        let out = par_map((0..500).collect(), 8, |&x: &i32| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let out = par_map(vec![1, 2, 3], 1, |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = par_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn streaming_sees_every_item_exactly_once() {
        let mut seen = [false; 200];
        par_map_streaming(
            (0..200).collect(),
            8,
            |&x: &i32| x,
            |i, r| {
                assert_eq!(i as i32, r);
                assert!(!seen[i], "index {i} drained twice");
                seen[i] = true;
                ControlFlow::Continue(())
            },
        );
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn streaming_break_stops_early() {
        let mut drained = 0usize;
        par_map_streaming(
            (0..10_000).collect(),
            8,
            |&x: &i32| x,
            |_, _| {
                drained += 1;
                if drained == 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(drained, 5, "drain must stop at the break");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = par_map((0..500).collect(), 8, |&x: &i32| {
            if x == 137 {
                panic!("worker 137 exploded");
            }
            x
        });
    }
}
