//! Checkpoint manifests for resumable sweeps.
//!
//! When [`crate::ScenarioBuilder::checkpoint`] is set, the engine writes
//! `<dir>/<scenario>.manifest.json` after **every completed grid cell**:
//! the ordered list of completed cell keys plus, for each file the
//! attached sink owns, the durable byte offset at that checkpoint. The
//! write is atomic (temp file + rename), so a `SIGTERM`/`kill` mid-sweep
//! leaves a consistent manifest; the sink files may carry a torn tail
//! past the recorded offsets, which the resumed run trims via
//! [`crate::sink::RunSink::rewind_to`] before appending.
//!
//! Because records are emitted in deterministic grid order, the manifest
//! cells are always an exact **prefix** of the grid — a resumed sweep
//! skips that prefix, appends the rest, and ends byte-identical to an
//! uninterrupted run (enforced by `tests/streaming_pipeline.rs`).

use std::collections::BTreeMap;
use std::io;

/// The persistent state of one checkpointed sweep.
#[derive(Clone, Debug, Default, PartialEq)]
#[must_use]
pub struct Manifest {
    /// Scenario name the manifest belongs to (guards against resuming a
    /// different scenario into the same files).
    pub scenario: String,
    /// Fingerprint of the scenario configuration (topology, traffic,
    /// sweep values, parameters, channel, probe) — the cell keys alone
    /// only encode `(protocol, sweep index, seed)`, so without this a
    /// resume after changing, say, `packets` or the swept K values
    /// would silently mix incompatible results into one output file.
    pub config: String,
    /// Completed grid-cell keys, in emission (grid) order.
    pub cells: Vec<String>,
    /// Durable byte offset per sink file at the last checkpoint.
    pub sink_offsets: BTreeMap<String, u64>,
}

impl Manifest {
    /// An empty manifest for a fresh sweep.
    pub fn new(scenario: &str, config: &str) -> Self {
        Manifest {
            scenario: scenario.to_string(),
            config: config.to_string(),
            ..Manifest::default()
        }
    }

    /// The manifest path for a scenario under `dir`.
    pub fn path_for(dir: &str, scenario: &str) -> String {
        // Scenario names may contain path separators ("fig/4_2"); flatten
        // them so the manifest stays directly under `dir`.
        let flat: String = scenario
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        format!("{dir}/{flat}.manifest.json")
    }

    /// Loads the manifest at `path`; `Ok(None)` when none exists yet.
    pub fn load(path: &str) -> io::Result<Option<Manifest>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let v = mesh_topology::json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path}: {e:?}")))?;
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{path}: manifest missing {what}"),
            )
        };
        let scenario = v
            .get("scenario")
            .and_then(|s| s.as_str())
            .ok_or_else(|| bad("scenario"))?
            .to_string();
        let config = v
            .get("config")
            .and_then(|s| s.as_str())
            .ok_or_else(|| bad("config"))?
            .to_string();
        let cells = v
            .get("cells")
            .and_then(|c| c.as_arr())
            .ok_or_else(|| bad("cells"))?
            .iter()
            .map(|c| c.as_str().map(str::to_string).ok_or_else(|| bad("cell")))
            .collect::<io::Result<Vec<_>>>()?;
        let mut sink_offsets = BTreeMap::new();
        if let Some(mesh_topology::json::Value::Obj(pairs)) = v.get("sinks") {
            for (path, off) in pairs {
                let off = off.as_f64().ok_or_else(|| bad("sink offset"))? as u64;
                sink_offsets.insert(path.clone(), off);
            }
        }
        Ok(Some(Manifest {
            scenario,
            config,
            cells,
            sink_offsets,
        }))
    }

    /// Records a completed cell and the sinks' durable offsets, then
    /// persists atomically (write temp, rename).
    pub fn commit(
        &mut self,
        path: &str,
        cell: String,
        offsets: Vec<(String, u64)>,
    ) -> io::Result<()> {
        self.cells.push(cell);
        for (p, o) in offsets {
            self.sink_offsets.insert(p, o);
        }
        self.save(path)
    }

    /// Persists the manifest atomically at `path`.
    pub fn save(&self, path: &str) -> io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("\"{}\"", mesh_topology::json::escape(c)))
            .collect();
        let sinks: Vec<String> = self
            .sink_offsets
            .iter()
            .map(|(p, o)| format!("\"{}\": {o}", mesh_topology::json::escape(p)))
            .collect();
        let json = format!(
            "{{\"scenario\": \"{}\", \"config\": \"{}\", \"cells\": [{}], \"sinks\": {{{}}}}}\n",
            mesh_topology::json::escape(&self.scenario),
            mesh_topology::json::escape(&self.config),
            cells.join(", "),
            sinks.join(", "),
        );
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }
}

/// The key of one grid cell — `(protocol, sweep point, seed)` — as the
/// manifest stores it. Tab-separated so ordinary protocol names can
/// never collide.
pub fn cell_key(protocol: &str, sweep_point: Option<usize>, seed: u64) -> String {
    match sweep_point {
        Some(i) => format!("{protocol}\t{i}\t{seed}"),
        None => format!("{protocol}\t-\t{seed}"),
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("more_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = Manifest::path_for(dir.to_str().unwrap(), "demo/run");
        assert!(path.ends_with("demo_run.manifest.json"));
        let _ = std::fs::remove_file(&path);
        assert_eq!(Manifest::load(&path).unwrap(), None);

        let mut m = Manifest::new("demo/run", "cfg-v1");
        m.commit(
            &path,
            cell_key("MORE", Some(0), 1),
            vec![("results/a.jsonl".into(), 120)],
        )
        .unwrap();
        m.commit(
            &path,
            cell_key("Srcr", None, 2),
            vec![("results/a.jsonl".into(), 240)],
        )
        .unwrap();
        let loaded = Manifest::load(&path).unwrap().expect("exists");
        assert_eq!(loaded, m);
        assert_eq!(loaded.cells, vec!["MORE\t0\t1", "Srcr\t-\t2"]);
        assert_eq!(loaded.sink_offsets["results/a.jsonl"], 240);
        let _ = std::fs::remove_file(&path);
    }
}
