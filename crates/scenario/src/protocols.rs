//! Built-in [`ProtocolFactory`] implementations for the paper's four
//! protocols. Each factory is a thin, configurable constructor; variants
//! (e.g. the EOTX-ordered MORE ablation) are new factories under new
//! names, not new enum arms.

use crate::registry::{BuildError, ProtocolFactory};
use crate::spec::{ExpConfig, FlowSpec};
use baselines::{ExorAgent, ExorConfig, SrcrAgent, SrcrConfig};
use mesh_sim::{Erased, ErasedFlowAgent};
use mesh_topology::Topology;
use more_core::{MoreAgent, MoreConfig, MulticastMoreAgent};

/// MORE (and, transparently, MORE multicast when a flow has several
/// destinations — coded broadcast is destination-count agnostic).
#[must_use]
pub struct MoreFactory {
    /// Base protocol config; `k` is overridden by [`ExpConfig::k`] at
    /// build time so K-sweeps work uniformly across factories.
    pub cfg: MoreConfig,
    name: String,
}

impl Default for MoreFactory {
    fn default() -> Self {
        MoreFactory {
            cfg: MoreConfig::default(),
            name: "MORE".to_string(),
        }
    }
}

impl MoreFactory {
    /// A MORE variant under a distinct registry name (e.g. an ablation
    /// with a different forwarder metric).
    pub fn named(name: impl Into<String>, cfg: MoreConfig) -> Self {
        MoreFactory {
            cfg,
            name: name.into(),
        }
    }
}

impl ProtocolFactory for MoreFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        cfg: &ExpConfig,
    ) -> Result<Box<dyn ErasedFlowAgent>, BuildError> {
        let mcfg = MoreConfig {
            k: cfg.k,
            ..self.cfg
        };
        if flows.iter().any(FlowSpec::is_multicast) {
            let mut agent = MulticastMoreAgent::new(topo.clone(), mcfg);
            for (i, f) in flows.iter().enumerate() {
                agent.add_flow(i as u32 + 1, f.src, f.dsts.clone(), f.packets);
            }
            Ok(Box::new(Erased(agent)))
        } else {
            let mut agent = MoreAgent::new(topo.clone(), mcfg);
            for (i, f) in flows.iter().enumerate() {
                agent.add_flow(i as u32 + 1, f.src, f.dst(), f.packets);
            }
            Ok(Box::new(Erased(agent)))
        }
    }
}

/// ExOR with its strict batch scheduler.
#[must_use]
pub struct ExorFactory {
    /// Base protocol config; `k` is overridden by [`ExpConfig::k`].
    pub cfg: ExorConfig,
    name: String,
}

impl Default for ExorFactory {
    fn default() -> Self {
        ExorFactory {
            cfg: ExorConfig::default(),
            name: "ExOR".to_string(),
        }
    }
}

impl ExorFactory {
    /// An ExOR variant under a distinct registry name.
    pub fn named(name: impl Into<String>, cfg: ExorConfig) -> Self {
        ExorFactory {
            cfg,
            name: name.into(),
        }
    }
}

impl ProtocolFactory for ExorFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        cfg: &ExpConfig,
    ) -> Result<Box<dyn ErasedFlowAgent>, BuildError> {
        if let Some(mc) = flows.iter().find(|f| f.is_multicast()) {
            return Err(BuildError::Unsupported(format!(
                "ExOR's scheduler is strictly unicast; flow {} -> {:?} has {} destinations",
                mc.src,
                mc.dsts,
                mc.dsts.len()
            )));
        }
        let ecfg = ExorConfig {
            k: cfg.k,
            ..self.cfg
        };
        let mut agent = ExorAgent::new(topo.clone(), ecfg);
        for (i, f) in flows.iter().enumerate() {
            let fi = agent.add_flow(i as u32 + 1, f.src, f.dst(), f.packets);
            agent.start(fi);
        }
        Ok(Box::new(Erased(agent)))
    }
}

/// Srcr (best-path source routing), fixed-rate or with Onoe autorate.
#[must_use]
pub struct SrcrFactory {
    /// Base protocol config; the bit-rate comes from [`ExpConfig`].
    pub cfg: SrcrConfig,
    name: String,
}

impl SrcrFactory {
    /// Srcr at the experiment's fixed bit-rate.
    pub fn fixed_rate() -> Self {
        SrcrFactory {
            cfg: SrcrConfig::default(),
            name: "Srcr".to_string(),
        }
    }

    /// Srcr with MadWifi-style Onoe autorate (Fig 4-6).
    pub fn autorate() -> Self {
        SrcrFactory {
            cfg: SrcrConfig {
                autorate: true,
                ..SrcrConfig::default()
            },
            name: "Srcr-autorate".to_string(),
        }
    }

    /// A Srcr variant under a distinct registry name.
    pub fn named(name: impl Into<String>, cfg: SrcrConfig) -> Self {
        SrcrFactory {
            cfg,
            name: name.into(),
        }
    }
}

impl ProtocolFactory for SrcrFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(
        &self,
        topo: &Topology,
        flows: &[FlowSpec],
        cfg: &ExpConfig,
    ) -> Result<Box<dyn ErasedFlowAgent>, BuildError> {
        if let Some(mc) = flows.iter().find(|f| f.is_multicast()) {
            return Err(BuildError::Unsupported(format!(
                "Srcr routes along a single best path; flow {} -> {:?} has {} destinations",
                mc.src,
                mc.dsts,
                mc.dsts.len()
            )));
        }
        let mut agent = SrcrAgent::new(topo.clone(), self.cfg, cfg.bitrate);
        for (i, f) in flows.iter().enumerate() {
            agent.add_flow(i as u32 + 1, f.src, f.dst(), f.packets);
        }
        Ok(Box::new(Erased(agent)))
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::{generate, NodeId};

    #[test]
    fn multicast_routes_to_the_multicast_agent_for_more_only() {
        let topo = generate::testbed(1);
        let flows = vec![FlowSpec {
            src: NodeId(0),
            dsts: vec![NodeId(5), NodeId(9)],
            packets: 32,
        }];
        let cfg = ExpConfig::default();
        assert!(MoreFactory::default().build(&topo, &flows, &cfg).is_ok());
        assert!(matches!(
            ExorFactory::default().build(&topo, &flows, &cfg),
            Err(BuildError::Unsupported(_))
        ));
        assert!(matches!(
            SrcrFactory::fixed_rate().build(&topo, &flows, &cfg),
            Err(BuildError::Unsupported(_))
        ));
    }
}
