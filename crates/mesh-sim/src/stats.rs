//! Counters the experiment harnesses read after a run.

use crate::Time;

/// Aggregate and per-node statistics for one simulation run.
#[derive(Clone, Debug, Default)]
#[must_use]
pub struct SimStats {
    /// Data/control frames transmitted, per node (MAC ACKs excluded).
    pub tx_frames: Vec<u64>,
    /// Frames received (decoded), per node.
    pub rx_frames: Vec<u64>,
    /// MAC ACK frames transmitted, per node.
    pub tx_mac_acks: Vec<u64>,
    /// Airtime occupied by each node's transmissions, µs.
    pub airtime: Vec<Time>,
    /// Collision events observed at receivers.
    pub collisions: u64,
    /// Collisions survived via capture.
    pub captures: u64,
    /// Unicast transmissions that exhausted their retries.
    pub unicast_failures: u64,
    /// Unicast retransmissions performed.
    pub retries: u64,
    /// Moments when ≥2 *data* transmissions were on the air concurrently,
    /// weighted by overlap µs — the spatial-reuse indicator.
    pub concurrent_airtime: Time,
    /// Total events processed.
    pub events: u64,
}

impl SimStats {
    /// Fresh counters for an `n`-node network.
    pub fn new(n: usize) -> Self {
        SimStats {
            tx_frames: vec![0; n],
            rx_frames: vec![0; n],
            tx_mac_acks: vec![0; n],
            airtime: vec![0; n],
            ..Default::default()
        }
    }

    /// Total data-frame transmissions across the network.
    pub fn total_tx(&self) -> u64 {
        self.tx_frames.iter().sum()
    }

    /// Total receptions across the network.
    pub fn total_rx(&self) -> u64 {
        self.rx_frames.iter().sum()
    }

    /// Total airtime across nodes, µs.
    pub fn total_airtime(&self) -> Time {
        self.airtime.iter().sum()
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn totals() {
        let mut s = SimStats::new(3);
        s.tx_frames[0] = 5;
        s.tx_frames[2] = 7;
        s.rx_frames[1] = 9;
        s.airtime[0] = 100;
        s.airtime[1] = 50;
        assert_eq!(s.total_tx(), 12);
        assert_eq!(s.total_rx(), 9);
        assert_eq!(s.total_airtime(), 150);
    }
}
