//! Counters the experiment harnesses read after a run.

use crate::queue::DropCause;
use crate::Time;
use std::collections::BTreeMap;

/// Aggregate and per-node statistics for one simulation run.
#[derive(Clone, Debug, Default)]
#[must_use]
pub struct SimStats {
    /// Data/control frames transmitted, per node (MAC ACKs excluded).
    pub tx_frames: Vec<u64>,
    /// Frames received (decoded), per node.
    pub rx_frames: Vec<u64>,
    /// MAC ACK frames transmitted, per node.
    pub tx_mac_acks: Vec<u64>,
    /// Airtime occupied by each node's transmissions, µs.
    pub airtime: Vec<Time>,
    /// Collision events observed at receivers.
    pub collisions: u64,
    /// Collisions survived via capture.
    pub captures: u64,
    /// Unicast transmissions that exhausted their retries.
    pub unicast_failures: u64,
    /// Unicast retransmissions performed.
    pub retries: u64,
    /// Moments when ≥2 *data* transmissions were on the air concurrently,
    /// weighted by overlap µs — the spatial-reuse indicator.
    pub concurrent_airtime: Time,
    /// Total events processed.
    pub events: u64,
    /// Highest transmit-queue depth each node ever reached (all zero
    /// under [`crate::queue::QueueSpec::Unbounded`]).
    pub queue_depth_hw: Vec<usize>,
    /// Frames dropped at each node's transmit queue, all causes.
    pub queue_drops: Vec<u64>,
    /// Queue drops from arriving at a full queue (tail drop).
    pub queue_drops_overflow: u64,
    /// Queue drops from RED/CHOKe early marking.
    pub queue_drops_early: u64,
    /// Queue drops from CHOKe flow matching (both victims counted).
    pub queue_drops_match: u64,
    /// Queue drops per protocol flow id (frames with
    /// [`crate::OutFrame::flow`] set); flow-less control frames are not
    /// listed here but are still counted in the totals above.
    pub queue_drops_by_flow: BTreeMap<u32, u64>,
}

impl SimStats {
    /// Fresh counters for an `n`-node network.
    pub fn new(n: usize) -> Self {
        SimStats {
            tx_frames: vec![0; n],
            rx_frames: vec![0; n],
            tx_mac_acks: vec![0; n],
            airtime: vec![0; n],
            queue_depth_hw: vec![0; n],
            queue_drops: vec![0; n],
            ..Default::default()
        }
    }

    /// Records a queue drop of `flow` (if any) at `node` for `cause`.
    pub(crate) fn count_queue_drop(&mut self, node: usize, flow: Option<u32>, cause: DropCause) {
        if let Some(d) = self.queue_drops.get_mut(node) {
            *d += 1;
        }
        match cause {
            DropCause::Overflow => self.queue_drops_overflow += 1,
            DropCause::Early => self.queue_drops_early += 1,
            DropCause::FlowMatch => self.queue_drops_match += 1,
        }
        if let Some(f) = flow {
            *self.queue_drops_by_flow.entry(f).or_insert(0) += 1;
        }
    }

    /// Total frames dropped at transmit queues across the network.
    pub fn total_queue_drops(&self) -> u64 {
        self.queue_drops.iter().sum()
    }

    /// Total data-frame transmissions across the network.
    pub fn total_tx(&self) -> u64 {
        self.tx_frames.iter().sum()
    }

    /// Total receptions across the network.
    pub fn total_rx(&self) -> u64 {
        self.rx_frames.iter().sum()
    }

    /// Total airtime across nodes, µs.
    pub fn total_airtime(&self) -> Time {
        self.airtime.iter().sum()
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn totals() {
        let mut s = SimStats::new(3);
        s.tx_frames[0] = 5;
        s.tx_frames[2] = 7;
        s.rx_frames[1] = 9;
        s.airtime[0] = 100;
        s.airtime[1] = 50;
        assert_eq!(s.total_tx(), 12);
        assert_eq!(s.total_rx(), 9);
        assert_eq!(s.total_airtime(), 150);
    }
}
