//! Onoe-style automatic bit-rate selection (§4.4).
//!
//! The MadWifi driver's Onoe algorithm is credit-based and deliberately
//! sluggish: over a fixed observation window it counts how many
//! transmissions needed retries; a clean window earns a credit, enough
//! credits raise the rate, while a retry-heavy window drops it at once.
//! That conservatism is exactly what the paper observes going wrong —
//! interference-driven losses look like rate problems, so Onoe parks
//! challenged links at 1 Mb/s where each frame occupies ~10× the airtime
//! (§4.4: "on average 23% of all transmissions using autorate are done at
//! the lowest bit-rate … these transmissions form a throughput
//! bottleneck").
//!
//! One [`OnoeAutorate`] instance tracks one (sender, next-hop) pair; Srcr
//! keeps one per link it uses.

use crate::{Bitrate, Time};

/// Credit thresholds mirroring MadWifi's defaults in spirit.
#[derive(Clone, Copy, Debug)]
pub struct OnoeConfig {
    /// Observation window length, µs (MadWifi: 1 s).
    pub window: Time,
    /// Credits needed to try the next rate up (MadWifi: 10).
    pub raise_credits: u32,
    /// A window whose retry fraction exceeds this drops the rate.
    pub drop_retry_fraction: f64,
    /// A window is "clean" (earns a credit) below this retry fraction.
    pub clean_retry_fraction: f64,
}

impl Default for OnoeConfig {
    fn default() -> Self {
        OnoeConfig {
            window: crate::SEC,
            raise_credits: 10,
            drop_retry_fraction: 0.5,
            clean_retry_fraction: 0.1,
        }
    }
}

/// Per-link Onoe state machine.
#[derive(Clone, Debug)]
#[must_use]
pub struct OnoeAutorate {
    cfg: OnoeConfig,
    rate: Bitrate,
    credits: u32,
    window_start: Time,
    frames: u32,
    retried_frames: u32,
    failures: u32,
}

impl OnoeAutorate {
    /// Starts at the given rate (MadWifi starts high and backs off).
    pub fn new(initial: Bitrate, cfg: OnoeConfig) -> Self {
        OnoeAutorate {
            cfg,
            rate: initial,
            credits: 0,
            window_start: 0,
            frames: 0,
            retried_frames: 0,
            failures: 0,
        }
    }

    /// The rate to use for the next frame.
    pub fn rate(&self) -> Bitrate {
        self.rate
    }

    /// Records a completed transmission: `retries` retransmissions were
    /// needed, `failed` if the MAC gave up. Call with the simulation clock;
    /// window rollover happens here.
    pub fn record(&mut self, now: Time, retries: u32, failed: bool) {
        self.maybe_roll(now);
        self.frames += 1;
        if retries > 0 {
            self.retried_frames += 1;
        }
        if failed {
            self.failures += 1;
        }
    }

    fn maybe_roll(&mut self, now: Time) {
        if now < self.window_start + self.cfg.window {
            return;
        }
        if self.frames > 0 {
            let retry_frac = self.retried_frames as f64 / self.frames as f64;
            if retry_frac > self.cfg.drop_retry_fraction || self.failures > 0 {
                if let Some(down) = self.rate.down() {
                    self.rate = down;
                }
                self.credits = 0;
            } else if retry_frac < self.cfg.clean_retry_fraction {
                self.credits += 1;
                if self.credits >= self.cfg.raise_credits {
                    if let Some(up) = self.rate.up() {
                        self.rate = up;
                    }
                    self.credits = 0;
                }
            } else {
                self.credits = self.credits.saturating_sub(1);
            }
        }
        self.window_start = now;
        self.frames = 0;
        self.retried_frames = 0;
        self.failures = 0;
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::SEC;

    fn onoe() -> OnoeAutorate {
        OnoeAutorate::new(Bitrate::B11, OnoeConfig::default())
    }

    #[test]
    fn stays_put_on_clean_traffic_until_credits_accumulate() {
        let mut a = OnoeAutorate::new(Bitrate::B5_5, OnoeConfig::default());
        // 9 clean windows: still 5.5 (needs 10 credits).
        for w in 0..9u64 {
            for _ in 0..50 {
                a.record(w * SEC + 1, 0, false);
            }
            a.record((w + 1) * SEC, 0, false);
        }
        assert_eq!(a.rate(), Bitrate::B5_5);
        // A 10th clean window raises to 11.
        for _ in 0..50 {
            a.record(9 * SEC + 500_000, 0, false);
        }
        a.record(10 * SEC, 0, false);
        assert_eq!(a.rate(), Bitrate::B11);
    }

    #[test]
    fn drops_rate_under_retry_pressure() {
        let mut a = onoe();
        for _ in 0..50 {
            a.record(1, 3, false);
        }
        a.record(SEC, 1, false); // roll the window
        assert_eq!(a.rate(), Bitrate::B5_5);
    }

    #[test]
    fn failure_forces_drop() {
        let mut a = onoe();
        for _ in 0..100 {
            a.record(1, 0, false);
        }
        a.record(2, 7, true);
        a.record(SEC, 0, false);
        assert_eq!(a.rate(), Bitrate::B5_5);
    }

    #[test]
    fn can_sink_to_lowest_rate_and_stay() {
        let mut a = onoe();
        for w in 0..5u64 {
            for _ in 0..20 {
                a.record(w * SEC + 1, 4, false);
            }
            a.record((w + 1) * SEC, 4, false);
        }
        assert_eq!(a.rate(), Bitrate::B1);
        // Further pressure cannot go below 1 Mb/s.
        for _ in 0..20 {
            a.record(6 * SEC + 1, 4, false);
        }
        a.record(7 * SEC, 4, false);
        assert_eq!(a.rate(), Bitrate::B1);
    }

    #[test]
    fn interference_lookalike_loss_parks_it_low() {
        // The §4.4 pathology: losses that no rate change can fix keep the
        // retry fraction high at every rate, so Onoe ends up at the bottom.
        let mut a = onoe();
        for w in 0..20u64 {
            for _ in 0..30 {
                a.record(w * SEC + 1, 2, false);
            }
            a.record((w + 1) * SEC, 2, false);
        }
        assert_eq!(a.rate(), Bitrate::B1);
    }

    #[test]
    fn empty_windows_change_nothing() {
        let mut a = onoe();
        a.record(10 * SEC, 0, false);
        assert_eq!(a.rate(), Bitrate::B11);
    }
}
