//! Pluggable channel models: how the air decides, frame by frame, whether
//! a receiver hears a transmitter.
//!
//! The paper's §5.3.1 network model is a *static* channel: every directed
//! link has one delivery probability, sampled independently per receiver
//! when a transmission ends. That is [`ChannelSpec::Static`], and it stays
//! the default everywhere. Real meshes see more: bursty, correlated losses
//! (interference, microwave ovens), slow fades as people and doors move,
//! and links whose quality drifts over minutes. The [`ChannelModel`] trait
//! makes the loss process a first-class, swappable component so scenarios
//! can put the same protocols on very different air:
//!
//! * [`ChannelSpec::Static`] — the paper's model; byte-identical runs to
//!   the pre-channel engine.
//! * [`ChannelSpec::GilbertElliott`] — two-state bursty loss per directed
//!   link (good/bad delivery scaling with per-epoch transition
//!   probabilities).
//! * [`ChannelSpec::Shadowing`] — distance-based path loss plus log-normal
//!   shadowing re-drawn per epoch; requires node positions and *ignores*
//!   the topology's delivery matrix (the geometry is the channel).
//! * [`ChannelSpec::TimeVarying`] — slow sinusoidal plus random-walk drift
//!   of each link's delivery around the topology's mean.
//!
//! ## Determinism
//!
//! A model instance draws its state evolution (initial Gilbert–Elliott
//! states, shadowing redraws, random-walk steps) from its **own** ChaCha8
//! stream derived from the run seed, while per-frame delivery verdicts are
//! drawn by the engine from the run's main stream — exactly where the
//! static engine drew them. Runs therefore stay a pure function of
//! `(topology, agent, seed, channel)`, and a static channel consumes the
//! main stream identically to the pre-channel engine.
//!
//! ```
//! use mesh_sim::channel::ChannelSpec;
//! use mesh_topology::{generate, NodeId};
//!
//! let topo = generate::line(2, 0.8, 0.0, 30.0);
//! // The default channel reports exactly the topology's matrix…
//! let stat = ChannelSpec::Static.build(&topo, 1);
//! assert_eq!(stat.delivery(NodeId(0), NodeId(1), 0), 0.8);
//! // …while a bursty channel modulates it over time.
//! let mut ge = ChannelSpec::bursty_matched(0.0, 0.02, 0.2, 10).build(&topo, 1);
//! ge.tick(5_000_000);
//! let p = ge.delivery(NodeId(0), NodeId(1), 5_000_000);
//! assert!((0.0..=1.0).contains(&p));
//! ```

// xtask: allow(panic_path, file) -- per-link channel state is sized to the validated topology's link set at build; build() panicking on an invalid spec is its documented contract (validate() is the fallible form).

use crate::Time;
use mesh_topology::{NodeId, Position, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mesh_topology::streams::CHANNEL_STREAM;

/// Vertical meters per floor, matching the medium's range computations.
const FLOOR_HEIGHT_M: f64 = 10.0;

/// A loss process over the mesh's directed links.
///
/// The medium asks [`ChannelModel::delivery`] for the instantaneous
/// delivery probability of `(tx, rx)` when a frame ends; the engine draws
/// the per-receiver Bernoulli verdict from the run's main RNG stream.
/// Between two [`ChannelModel::tick`] calls the model must behave as a
/// pure function of `(tx, rx, now)` — all randomness happens inside
/// `tick`, which the simulator invokes (monotonically, possibly repeatedly
/// at the same instant) before evaluating each reception.
pub trait ChannelModel: Send {
    /// Instantaneous delivery probability of the directed link `(tx, rx)`
    /// at time `now`, in `[0, 1]`; `0` where no energy arrives.
    fn delivery(&self, tx: NodeId, rx: NodeId, now: Time) -> f64;

    /// Advances the model's internal state to `now` (µs). Must be
    /// idempotent for repeated calls with the same `now` and is never
    /// called with a smaller `now` than before. Static models do nothing.
    fn tick(&mut self, _now: Time) {}

    /// Can `(tx, rx)` *ever* carry energy under this model? The medium
    /// extends its carrier-sense and interference relations with this,
    /// so geometry-driven channels whose link set goes beyond the static
    /// matrix (shadowing) still defer to — and collide with — every
    /// transmitter that could plausibly be decoded. Must be time-
    /// independent (a superset of all instants is fine), and must
    /// contain the support of [`ChannelModel::delivery`]: whenever
    /// `delivery(tx, rx, now) > 0` at any instant, `may_reach(tx, rx)`
    /// is `true`. The medium relies on this to enumerate reception
    /// candidates per transmitter instead of scanning every node.
    fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool;

    /// Structural promise about the [`ChannelModel::may_reach`] relation,
    /// letting the medium enumerate reachable pairs without an O(n²)
    /// scan on city-scale meshes. The default is the conservative
    /// [`ReachHint::AllPairs`]; models should override it when they can.
    fn reach_hint(&self) -> ReachHint {
        ReachHint::AllPairs
    }
}

/// How a channel's [`ChannelModel::may_reach`] relation is shaped.
///
/// The medium and the probing helpers use this to *enumerate* the pairs
/// that could ever carry energy: from the topology's link set alone, from
/// a spatial-index query, or — when nothing is promised — by scanning
/// every pair. A hint only narrows the enumeration; `may_reach` itself
/// stays the source of truth for each candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use]
pub enum ReachHint {
    /// `may_reach` is contained in the support of the topology's static
    /// delivery matrix: the topology's links enumerate every reachable
    /// pair. True for matrix-backed models (static, Gilbert–Elliott,
    /// time-varying drift).
    MatrixOnly,
    /// `may_reach(a, b)` implies the nodes sit within this many meters of
    /// each other (3D, counting floors); node positions are available.
    /// A 2D spatial-index query with this radius therefore yields a
    /// candidate superset, confirmed pair by pair with `may_reach`.
    WithinDistance(f64),
    /// No structure promised; every pair must be checked. The safe
    /// default for external [`ChannelModel`] implementations.
    AllPairs,
}

/// Serializable description of a channel model; builds a fresh
/// [`ChannelModel`] instance per run via [`ChannelSpec::build`].
///
/// `Static` is the default and reproduces the engine's historical
/// behaviour byte-for-byte.
#[derive(Clone, Debug, PartialEq, Default)]
#[must_use]
pub enum ChannelSpec {
    /// The §5.3.1 model: each link delivers at the topology's fixed
    /// probability. The default.
    #[default]
    Static,
    /// Two-state Gilbert–Elliott burst loss, independently per directed
    /// link. In the *good* state a link delivers at `good_scale ×` its
    /// static probability, in the *bad* state at `bad_scale ×`. Where the
    /// good-state product saturates at 1, the clamped excess is
    /// redistributed into the bad state (weighted by state occupancy) so
    /// each link's stationary mean stays at the unclamped
    /// `π_g·good_scale·p + π_b·bad_scale·p` whenever achievable — strong
    /// links degrade in bursts instead of silently losing mean. Every
    /// `epoch_ms` each link flips good→bad with probability `to_bad` and
    /// bad→good with `to_good`; initial states are drawn from the
    /// stationary distribution.
    GilbertElliott {
        /// Delivery multiplier in the good state (≥ 1 compensates bursts).
        good_scale: f64,
        /// Delivery multiplier in the bad state (0 = outage).
        bad_scale: f64,
        /// Per-epoch probability of entering the bad state.
        to_bad: f64,
        /// Per-epoch probability of leaving the bad state.
        to_good: f64,
        /// State-transition epoch in milliseconds.
        epoch_ms: u64,
    },
    /// Distance-based path loss plus log-normal shadowing, re-drawn per
    /// epoch and symmetric per node pair. Requires node positions; the
    /// topology's delivery matrix is ignored (the geometry *is* the
    /// channel), which is what lets scenarios separate "what routing
    /// believes" from "what the air does".
    Shadowing {
        /// Path-loss exponent (2 free space … 4 indoor).
        path_loss_exp: f64,
        /// Standard deviation of the log-normal shadowing term, dB.
        sigma_db: f64,
        /// Distance in meters at which un-shadowed delivery is 50%.
        midpoint_m: f64,
        /// Shadowing redraw epoch in milliseconds.
        epoch_ms: u64,
    },
    /// Slow drift of each link's delivery around the topology's mean: a
    /// per-link-phase sinusoid of the given amplitude plus a per-epoch
    /// Gaussian random walk, clamped to `[0, 1]`.
    TimeVarying {
        /// Peak sinusoidal deviation from the static probability.
        amplitude: f64,
        /// Sinusoid period in milliseconds.
        period_ms: u64,
        /// Per-epoch standard deviation of the random-walk step.
        walk_sigma: f64,
        /// Random-walk epoch in milliseconds.
        epoch_ms: u64,
    },
}

impl ChannelSpec {
    /// A Gilbert–Elliott channel whose *mean* delivery matches the static
    /// topology: given the bad-state scale and the transition
    /// probabilities, the good-state scale is solved from the stationary
    /// distribution so that `π_good·good + π_bad·bad = 1`. Per-link
    /// saturation redistribution (see [`ChannelSpec::GilbertElliott`])
    /// keeps the match exact even on links whose static delivery exceeds
    /// `1 / good_scale`.
    ///
    /// ```
    /// use mesh_sim::channel::ChannelSpec;
    /// let spec = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
    /// if let ChannelSpec::GilbertElliott { good_scale, .. } = spec {
    ///     assert!((good_scale - 1.25).abs() < 1e-12); // π_good = 0.8
    /// } else {
    ///     unreachable!();
    /// }
    /// ```
    pub fn bursty_matched(bad_scale: f64, to_bad: f64, to_good: f64, epoch_ms: u64) -> Self {
        assert!(
            to_bad > 0.0 && to_good > 0.0,
            "transition rates must be positive"
        );
        let pi_bad = to_bad / (to_bad + to_good);
        let pi_good = 1.0 - pi_bad;
        ChannelSpec::GilbertElliott {
            good_scale: (1.0 - pi_bad * bad_scale) / pi_good,
            bad_scale,
            to_bad,
            to_good,
            epoch_ms,
        }
    }

    /// Short, comma-free identifier used as the `channel` key in scenario
    /// JSON/CSV output ("static", "ge(…)", "shadow(…)", "drift(…)").
    pub fn label(&self) -> String {
        match self {
            ChannelSpec::Static => "static".to_string(),
            ChannelSpec::GilbertElliott {
                good_scale,
                bad_scale,
                to_bad,
                to_good,
                epoch_ms,
            } => format!("ge(good={good_scale};bad={bad_scale};to_bad={to_bad};to_good={to_good};epoch={epoch_ms}ms)"),
            ChannelSpec::Shadowing {
                path_loss_exp,
                sigma_db,
                midpoint_m,
                epoch_ms,
            } => format!("shadow(ple={path_loss_exp};sigma={sigma_db}dB;mid={midpoint_m}m;epoch={epoch_ms}ms)"),
            ChannelSpec::TimeVarying {
                amplitude,
                period_ms,
                walk_sigma,
                epoch_ms,
            } => format!("drift(amp={amplitude};period={period_ms}ms;walk={walk_sigma};epoch={epoch_ms}ms)"),
        }
    }

    /// True for the default static channel.
    pub fn is_static(&self) -> bool {
        matches!(self, ChannelSpec::Static)
    }

    /// Checks that `topo` can host this channel (e.g. shadowing needs
    /// node positions, epochs must be non-zero).
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        match self {
            ChannelSpec::Static => Ok(()),
            ChannelSpec::GilbertElliott {
                good_scale,
                bad_scale,
                to_bad,
                to_good,
                epoch_ms,
            } => {
                if *epoch_ms == 0 {
                    return Err("GilbertElliott epoch_ms must be > 0".into());
                }
                for (name, v) in [("to_bad", to_bad), ("to_good", to_good)] {
                    if !(0.0..=1.0).contains(v) {
                        return Err(format!("GilbertElliott {name} = {v} outside [0,1]"));
                    }
                }
                if *good_scale < 0.0 || *bad_scale < 0.0 {
                    return Err("GilbertElliott scales must be non-negative".into());
                }
                Ok(())
            }
            ChannelSpec::Shadowing {
                path_loss_exp,
                sigma_db,
                midpoint_m,
                epoch_ms,
            } => {
                if topo.positions().is_none() {
                    return Err(format!(
                        "Shadowing channel requires node positions; topology {:?} has none",
                        topo.name
                    ));
                }
                if *epoch_ms == 0 {
                    return Err("Shadowing epoch_ms must be > 0".into());
                }
                if *path_loss_exp <= 0.0 || *sigma_db < 0.0 || *midpoint_m <= 0.0 {
                    return Err("Shadowing parameters must be positive".into());
                }
                Ok(())
            }
            ChannelSpec::TimeVarying {
                amplitude,
                period_ms,
                walk_sigma,
                epoch_ms,
            } => {
                if *epoch_ms == 0 || *period_ms == 0 {
                    return Err("TimeVarying epochs/period must be > 0".into());
                }
                if *amplitude < 0.0 || *walk_sigma < 0.0 {
                    return Err("TimeVarying amplitude/walk_sigma must be non-negative".into());
                }
                Ok(())
            }
        }
    }

    /// Instantiates the model over `topo` for one run, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics when [`ChannelSpec::validate`] would fail (callers that
    /// want an error value validate first).
    pub fn build(&self, topo: &Topology, seed: u64) -> Box<dyn ChannelModel> {
        if let Err(e) = self.validate(topo) {
            panic!("invalid channel spec: {e}");
        }
        let rng = ChaCha8Rng::seed_from_u64(seed ^ CHANNEL_STREAM);
        match *self {
            ChannelSpec::Static => Box::new(StaticChannel { topo: topo.clone() }),
            ChannelSpec::GilbertElliott {
                good_scale,
                bad_scale,
                to_bad,
                to_good,
                epoch_ms,
            } => Box::new(GilbertElliottChannel::new(
                topo, good_scale, bad_scale, to_bad, to_good, epoch_ms, rng,
            )),
            ChannelSpec::Shadowing {
                path_loss_exp,
                sigma_db,
                midpoint_m,
                epoch_ms,
            } => Box::new(ShadowingChannel::new(
                topo,
                path_loss_exp,
                sigma_db,
                midpoint_m,
                epoch_ms,
                rng,
            )),
            ChannelSpec::TimeVarying {
                amplitude,
                period_ms,
                walk_sigma,
                epoch_ms,
            } => Box::new(TimeVaryingChannel::new(
                topo, amplitude, period_ms, walk_sigma, epoch_ms, rng,
            )),
        }
    }
}

/// The paper's static channel: delivery is the topology's matrix.
pub struct StaticChannel {
    topo: Topology,
}

impl ChannelModel for StaticChannel {
    fn delivery(&self, tx: NodeId, rx: NodeId, _now: Time) -> f64 {
        self.topo.delivery(tx, rx)
    }

    fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool {
        self.topo.delivery(tx, rx) > 0.0
    }

    fn reach_hint(&self) -> ReachHint {
        ReachHint::MatrixOnly
    }
}

/// Two-state burst-loss channel (see [`ChannelSpec::GilbertElliott`]).
pub struct GilbertElliottChannel {
    n: usize,
    to_bad: f64,
    to_good: f64,
    epoch: Time,
    /// Per-directed-link delivery in the good state, row-major `n × n`.
    good_p: Vec<f64>,
    /// Per-directed-link delivery in the bad state, row-major `n × n`.
    bad_p: Vec<f64>,
    /// Row-major `n × n`; `true` = link currently in the bad state.
    bad: Vec<bool>,
    /// Flat indices of directed links (`p > 0`), row-major.
    links: Vec<usize>,
    epochs_done: u64,
    rng: ChaCha8Rng,
}

impl GilbertElliottChannel {
    fn new(
        topo: &Topology,
        good_scale: f64,
        bad_scale: f64,
        to_bad: f64,
        to_good: f64,
        epoch_ms: u64,
        mut rng: ChaCha8Rng,
    ) -> Self {
        let n = topo.n();
        let links: Vec<usize> = topo.links().map(|l| l.from.0 * n + l.to.0).collect();
        let pi_bad = if to_bad + to_good > 0.0 {
            to_bad / (to_bad + to_good)
        } else {
            0.0
        };
        let pi_good = 1.0 - pi_bad;
        // Per-link state deliveries. Strong links saturate: `p ×
        // good_scale` can exceed 1, and simply clamping it would silently
        // lower the link's stationary mean (breaking `bursty_matched`'s
        // matched-mean construction exactly on the best links). The
        // clamped excess is therefore redistributed into the bad state,
        // weighted by the state occupancies, so each link's mean stays
        // `π_g·good_scale·p + π_b·bad_scale·p` whenever that is
        // achievable — strong links degrade in bursts rather than die.
        let mut good_p = vec![0.0; n * n];
        let mut bad_p = vec![0.0; n * n];
        for &idx in &links {
            let p = topo.delivery(NodeId(idx / n), NodeId(idx % n));
            let raw_good = p * good_scale;
            let g = raw_good.min(1.0);
            let excess = raw_good - g;
            let b = if pi_bad > 0.0 {
                (p * bad_scale + excess * pi_good / pi_bad).clamp(0.0, 1.0)
            } else {
                (p * bad_scale).clamp(0.0, 1.0)
            };
            good_p[idx] = g;
            bad_p[idx] = b;
        }
        let mut bad = vec![false; n * n];
        for &idx in &links {
            bad[idx] = rng.gen::<f64>() < pi_bad;
        }
        GilbertElliottChannel {
            n,
            to_bad,
            to_good,
            epoch: epoch_ms * crate::MS,
            good_p,
            bad_p,
            bad,
            links,
            epochs_done: 0,
            rng,
        }
    }
}

impl ChannelModel for GilbertElliottChannel {
    fn delivery(&self, tx: NodeId, rx: NodeId, _now: Time) -> f64 {
        let idx = tx.0 * self.n + rx.0;
        if self.bad[idx] {
            self.bad_p[idx]
        } else {
            self.good_p[idx]
        }
    }

    fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool {
        let idx = tx.0 * self.n + rx.0;
        self.good_p[idx] > 0.0 || self.bad_p[idx] > 0.0
    }

    fn reach_hint(&self) -> ReachHint {
        // State deliveries are scaled matrix entries: no link, no energy.
        ReachHint::MatrixOnly
    }

    fn tick(&mut self, now: Time) {
        let target = now / self.epoch;
        while self.epochs_done < target {
            for &idx in &self.links {
                let u = self.rng.gen::<f64>();
                let flip = if self.bad[idx] {
                    u < self.to_good
                } else {
                    u < self.to_bad
                };
                if flip {
                    self.bad[idx] = !self.bad[idx];
                }
            }
            self.epochs_done += 1;
        }
    }
}

/// Geometry-driven channel (see [`ChannelSpec::Shadowing`]).
pub struct ShadowingChannel {
    positions: Vec<Position>,
    path_loss_exp: f64,
    sigma_db: f64,
    midpoint_m: f64,
    epoch: Time,
    /// Symmetric shadow per unordered pair, row-major upper triangle
    /// addressed as `min·n + max`.
    shadow_db: Vec<f64>,
    /// Hard reachability radius, meters: beyond it no shadow draw can
    /// lift delivery to [`MIN_DELIVERY`], and delivery is clamped to 0 so
    /// `may_reach` stays a strict superset of the delivery support.
    reach_m: f64,
    n: usize,
    epochs_done: u64,
    rng: ChaCha8Rng,
}

/// Logistic width of the delivery-vs-margin curve, dB. A ±3·width margin
/// swings delivery from ~5% to ~95%.
const SHADOW_SOFTNESS_DB: f64 = 3.0;

/// Instantaneous deliveries this small are treated as no link at all,
/// keeping the receiver scan from crawling over hundreds of hopeless
/// micro-probability pairs.
const MIN_DELIVERY: f64 = 0.01;

impl ShadowingChannel {
    fn new(
        topo: &Topology,
        path_loss_exp: f64,
        sigma_db: f64,
        midpoint_m: f64,
        epoch_ms: u64,
        mut rng: ChaCha8Rng,
    ) -> Self {
        let positions = topo
            .positions()
            .expect("validated: shadowing needs positions")
            .to_vec();
        let n = positions.len();
        let mut shadow_db = vec![0.0; n * n];
        redraw_shadows(&mut shadow_db, n, sigma_db, &mut rng);
        ShadowingChannel {
            positions,
            path_loss_exp,
            sigma_db,
            midpoint_m,
            epoch: epoch_ms * crate::MS,
            shadow_db,
            reach_m: shadow_reach_m(path_loss_exp, sigma_db, midpoint_m),
            n,
            epochs_done: 0,
            rng,
        }
    }
}

/// Distance at which even a +3σ shadow leaves delivery below
/// [`MIN_DELIVERY`]: `p ≥ MIN_DELIVERY` ⟺ `margin ≥ −softness ·
/// ln((1−MIN)/MIN)`, and the margin falls with `10·ple·log₁₀(mid/d)`.
fn shadow_reach_m(path_loss_exp: f64, sigma_db: f64, midpoint_m: f64) -> f64 {
    let margin_floor = -SHADOW_SOFTNESS_DB * ((1.0 - MIN_DELIVERY) / MIN_DELIVERY).ln();
    midpoint_m * 10f64.powf((3.0 * sigma_db - margin_floor) / (10.0 * path_loss_exp))
}

fn redraw_shadows(shadow_db: &mut [f64], n: usize, sigma_db: f64, rng: &mut ChaCha8Rng) {
    for i in 0..n {
        for j in (i + 1)..n {
            shadow_db[i * n + j] = gauss(rng) * sigma_db;
        }
    }
}

impl ChannelModel for ShadowingChannel {
    fn delivery(&self, tx: NodeId, rx: NodeId, _now: Time) -> f64 {
        if tx == rx {
            return 0.0;
        }
        let d = self.positions[tx.0]
            .distance(&self.positions[rx.0], FLOOR_HEIGHT_M)
            .max(0.1);
        // Beyond the reach radius delivery is clamped to 0 even when the
        // (unbounded Box–Muller) shadow draw exceeds +3σ, keeping
        // `may_reach` a strict superset of the delivery support — the
        // contract the medium's candidate lists depend on.
        if d > self.reach_m {
            return 0.0;
        }
        let (lo, hi) = (tx.0.min(rx.0), tx.0.max(rx.0));
        let shadow = self.shadow_db[lo * self.n + hi];
        // Link margin: positive inside the midpoint, sign-flipped by the
        // log-distance path loss, perturbed by the shadow.
        let margin = 10.0 * self.path_loss_exp * (self.midpoint_m / d).log10() + shadow;
        let p = 1.0 / (1.0 + (-margin / SHADOW_SOFTNESS_DB).exp());
        if p < MIN_DELIVERY {
            0.0
        } else {
            p
        }
    }

    fn tick(&mut self, now: Time) {
        let target = now / self.epoch;
        while self.epochs_done < target {
            redraw_shadows(&mut self.shadow_db, self.n, self.sigma_db, &mut self.rng);
            self.epochs_done += 1;
        }
    }

    fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool {
        if tx == rx {
            return false;
        }
        // Best plausible shadow: +3σ. Pairs that could decode under it
        // must be sensed by, and interfere with, each other's radios;
        // `reach_m` is exactly the distance where that best case drops
        // below `MIN_DELIVERY`.
        let d = self.positions[tx.0]
            .distance(&self.positions[rx.0], FLOOR_HEIGHT_M)
            .max(0.1);
        d <= self.reach_m
    }

    fn reach_hint(&self) -> ReachHint {
        ReachHint::WithinDistance(self.reach_m)
    }
}

/// Slow per-link drift channel (see [`ChannelSpec::TimeVarying`]).
pub struct TimeVaryingChannel {
    topo: Topology,
    amplitude: f64,
    period: Time,
    walk_sigma: f64,
    epoch: Time,
    /// Per-directed-link sinusoid phase in turns, row-major `n × n`.
    phase: Vec<f64>,
    /// Per-directed-link random-walk offset, row-major `n × n`.
    walk: Vec<f64>,
    links: Vec<usize>,
    epochs_done: u64,
    rng: ChaCha8Rng,
}

impl TimeVaryingChannel {
    fn new(
        topo: &Topology,
        amplitude: f64,
        period_ms: u64,
        walk_sigma: f64,
        epoch_ms: u64,
        mut rng: ChaCha8Rng,
    ) -> Self {
        let n = topo.n();
        let links: Vec<usize> = topo.links().map(|l| l.from.0 * n + l.to.0).collect();
        let mut phase = vec![0.0; n * n];
        for &idx in &links {
            phase[idx] = rng.gen::<f64>();
        }
        TimeVaryingChannel {
            topo: topo.clone(),
            amplitude,
            period: period_ms * crate::MS,
            walk_sigma,
            epoch: epoch_ms * crate::MS,
            phase,
            walk: vec![0.0; n * n],
            links,
            epochs_done: 0,
            rng,
        }
    }
}

impl ChannelModel for TimeVaryingChannel {
    fn delivery(&self, tx: NodeId, rx: NodeId, now: Time) -> f64 {
        let p = self.topo.delivery(tx, rx);
        if p <= 0.0 {
            return 0.0;
        }
        let idx = tx.0 * self.topo.n() + rx.0;
        let turns = now as f64 / self.period as f64 + self.phase[idx];
        let wave = self.amplitude * (std::f64::consts::TAU * turns).sin();
        (p + wave + self.walk[idx]).clamp(0.0, 1.0)
    }

    fn tick(&mut self, now: Time) {
        let target = now / self.epoch;
        while self.epochs_done < target {
            for &idx in &self.links {
                let step = gauss(&mut self.rng) * self.walk_sigma;
                self.walk[idx] = (self.walk[idx] + step).clamp(-1.0, 1.0);
            }
            self.epochs_done += 1;
        }
    }

    fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool {
        self.topo.delivery(tx, rx) > 0.0
    }

    fn reach_hint(&self) -> ReachHint {
        // Drift modulates matrix entries and `delivery` zeroes out
        // non-links explicitly.
        ReachHint::MatrixOnly
    }
}

/// Standard normal draw (Box–Muller; the vendored `rand` has no
/// distributions module).
fn gauss(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Every directed pair `(tx, rx)` the channel could ever deliver on, in
/// ascending `(tx, rx)` order — the probe-candidate enumeration behind
/// [`probe_topology`].
///
/// Uses the model's [`ChannelModel::reach_hint`] so sparse meshes
/// enumerate O(links) or O(geometric-neighborhood) pairs: matrix-backed
/// channels yield exactly the topology's links, distance-bounded channels
/// query a spatial index and confirm with [`ChannelModel::may_reach`],
/// and unhinted channels fall back to every ordered pair.
///
/// # Panics
///
/// Panics when the hint is [`ReachHint::WithinDistance`] but the
/// topology carries no node positions (such models cannot be built over
/// position-less topologies in the first place).
pub fn reach_candidates(topo: &Topology, chan: &dyn ChannelModel) -> Vec<(NodeId, NodeId)> {
    let n = topo.n();
    match chan.reach_hint() {
        ReachHint::MatrixOnly => topo.links().map(|l| (l.from, l.to)).collect(),
        ReachHint::WithinDistance(d) => {
            let positions = topo
                .positions()
                .expect("WithinDistance reach hint requires node positions");
            let grid = mesh_topology::spatial::CellGrid::from_positions(positions, d);
            let mut out = Vec::new();
            for (i, pos) in positions.iter().enumerate() {
                let mut row: Vec<u32> = Vec::new();
                grid.for_each_candidate(pos.x, pos.y, d, |j| {
                    if j as usize != i && chan.may_reach(NodeId(i), NodeId(j as usize)) {
                        row.push(j);
                    }
                });
                // Each id is bucketed once, so sorting alone dedups.
                row.sort_unstable();
                out.extend(row.into_iter().map(|j| (NodeId(i), NodeId(j as usize))));
            }
            out
        }
        ReachHint::AllPairs => (0..n)
            .flat_map(|i| {
                (0..n)
                    .filter(move |&j| j != i)
                    .map(move |j| (NodeId(i), NodeId(j)))
            })
            .collect(),
    }
}

/// Measures the topology a probing deployment would see over a live
/// channel: a fresh model instance (same `seed` as the run, so the probe
/// window previews exactly the run's channel) is advanced probe by probe
/// while the estimator counts successes over the channel's
/// [`reach_candidates`] — pairs the channel can never deliver on are
/// never probed, which is also what keeps city-scale probe windows at
/// O(links · probes) draws.
///
/// This is the experiment the paper could not run — routing on probe-era
/// beliefs while the air keeps moving underneath.
///
/// ```
/// use mesh_sim::channel::{probe_topology, ChannelSpec};
/// use mesh_topology::estimator::LinkEstimator;
/// use mesh_topology::generate;
///
/// let topo = generate::line(2, 0.8, 0.0, 30.0);
/// let est = LinkEstimator { probes: 200, min_delivery: 0.05 };
/// let spec = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
/// let believed = probe_topology(&est, &topo, &spec, 1, 1_000);
/// assert_eq!(believed.n(), topo.n());
/// ```
pub fn probe_topology(
    est: &mesh_topology::estimator::LinkEstimator,
    topo: &Topology,
    spec: &ChannelSpec,
    seed: u64,
    interval_us: Time,
) -> Topology {
    let mut model = spec.build(topo, seed);
    let candidates = reach_candidates(topo, model.as_ref());
    est.estimate_live_candidates(topo, seed, interval_us, &candidates, |tx, rx, now| {
        model.tick(now);
        model.delivery(tx, rx, now)
    })
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    fn mean_delivery(model: &mut dyn ChannelModel, tx: NodeId, rx: NodeId, epoch: Time) -> f64 {
        let rounds = 20_000u64;
        let mut sum = 0.0;
        for k in 0..rounds {
            let now = k * epoch;
            model.tick(now);
            sum += model.delivery(tx, rx, now);
        }
        sum / rounds as f64
    }

    #[test]
    fn static_channel_reports_the_matrix() {
        let topo = generate::testbed(1);
        let c = ChannelSpec::Static.build(&topo, 3);
        for l in topo.links() {
            assert_eq!(c.delivery(l.from, l.to, 123_456), l.delivery);
        }
        assert_eq!(c.delivery(NodeId(0), NodeId(0), 0), 0.0);
    }

    #[test]
    fn gilbert_elliott_matched_mean_approaches_static() {
        let topo = generate::line(1, 0.8, 0.0, 30.0);
        let spec = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
        let mut model = spec.build(&topo, 7);
        let mean = mean_delivery(model.as_mut(), NodeId(0), NodeId(1), 10 * crate::MS);
        assert!(
            (mean - 0.8).abs() < 0.03,
            "matched GE mean {mean} far from static 0.8"
        );
    }

    #[test]
    fn gilbert_elliott_matched_mean_survives_good_state_saturation() {
        // p = 0.95 × good_scale 1.25 saturates at 1.0; the clamped excess
        // must flow into the bad state so the stationary mean stays 0.95
        // (testbed links reach 0.98 — without this the "matched mean"
        // construction silently raises their loss rate).
        let topo = generate::line(1, 0.95, 0.0, 30.0);
        let spec = ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10);
        let mut model = spec.build(&topo, 13);
        let mean = mean_delivery(model.as_mut(), NodeId(0), NodeId(1), 10 * crate::MS);
        assert!(
            (mean - 0.95).abs() < 0.03,
            "saturated GE mean {mean} far from static 0.95"
        );
    }

    #[test]
    fn gilbert_elliott_is_bursty_not_iid() {
        // With slow transitions the state at t and t+epoch must be highly
        // correlated: count state flips between consecutive epochs.
        let topo = generate::line(1, 0.8, 0.0, 30.0);
        let spec = ChannelSpec::bursty_matched(0.0, 0.02, 0.1, 10);
        let mut model = spec.build(&topo, 11);
        let epoch = 10 * crate::MS;
        let mut flips = 0;
        let mut prev = model.delivery(NodeId(0), NodeId(1), 0);
        for k in 1..5_000u64 {
            model.tick(k * epoch);
            let cur = model.delivery(NodeId(0), NodeId(1), k * epoch);
            if (cur - prev).abs() > 1e-9 {
                flips += 1;
            }
            prev = cur;
        }
        // iid sampling would flip ~50% of epochs; GE flips ≈ 2·π_g·to_bad.
        assert!(flips > 0, "the chain must move");
        assert!(
            (flips as f64) < 5_000.0 * 0.15,
            "GE flipped too often ({flips}) to be bursty"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = generate::testbed(1);
        for spec in [
            ChannelSpec::bursty_matched(0.1, 0.05, 0.2, 10),
            ChannelSpec::Shadowing {
                path_loss_exp: 3.0,
                sigma_db: 6.0,
                midpoint_m: 35.0,
                epoch_ms: 100,
            },
            ChannelSpec::TimeVarying {
                amplitude: 0.2,
                period_ms: 30_000,
                walk_sigma: 0.02,
                epoch_ms: 1_000,
            },
        ] {
            let mut a = spec.build(&topo, 42);
            let mut b = spec.build(&topo, 42);
            let mut c = spec.build(&topo, 43);
            let mut saw_diff = false;
            for k in 0..200u64 {
                let now = k * 100 * crate::MS;
                a.tick(now);
                b.tick(now);
                c.tick(now);
                for l in topo.links() {
                    let pa = a.delivery(l.from, l.to, now);
                    assert_eq!(pa, b.delivery(l.from, l.to, now), "{spec:?}");
                    if (pa - c.delivery(l.from, l.to, now)).abs() > 1e-12 {
                        saw_diff = true;
                    }
                }
            }
            assert!(saw_diff, "{spec:?}: different seeds never diverged");
        }
    }

    #[test]
    fn shadowing_decays_with_distance_and_requires_positions() {
        let topo = generate::line(4, 0.9, 0.0, 25.0);
        let spec = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 0.0,
            midpoint_m: 35.0,
            epoch_ms: 100,
        };
        let c = spec.build(&topo, 1);
        let near = c.delivery(NodeId(0), NodeId(1), 0); // 25 m
        let far = c.delivery(NodeId(0), NodeId(3), 0); // 75 m
        assert!(near > 0.8, "25 m link should be strong, got {near}");
        assert!(far < near, "delivery must decay with distance");

        let no_pos = Topology::from_matrix("bare", vec![vec![0.0, 0.9], vec![0.9, 0.0]]);
        assert!(spec.validate(&no_pos).is_err());
    }

    #[test]
    fn shadowing_redraws_per_epoch() {
        let topo = generate::line(1, 0.9, 0.0, 30.0);
        let spec = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 8.0,
            midpoint_m: 35.0,
            epoch_ms: 100,
        };
        let mut c = spec.build(&topo, 5);
        let p0 = c.delivery(NodeId(0), NodeId(1), 0);
        c.tick(150 * crate::MS);
        let p1 = c.delivery(NodeId(0), NodeId(1), 150 * crate::MS);
        assert_ne!(p0, p1, "an 8 dB shadow redraw must move delivery");
        // Symmetry: both directions share the pair's shadow.
        assert_eq!(
            c.delivery(NodeId(0), NodeId(1), 0),
            c.delivery(NodeId(1), NodeId(0), 0)
        );
    }

    #[test]
    fn time_varying_oscillates_within_bounds() {
        let topo = generate::line(1, 0.5, 0.0, 30.0);
        let spec = ChannelSpec::TimeVarying {
            amplitude: 0.3,
            period_ms: 1_000,
            walk_sigma: 0.0,
            epoch_ms: 1_000,
        };
        let c = spec.build(&topo, 9);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for k in 0..100u64 {
            let p = c.delivery(NodeId(0), NodeId(1), k * 20 * crate::MS);
            assert!((0.0..=1.0).contains(&p));
            lo = lo.min(p);
            hi = hi.max(p);
        }
        assert!(hi - lo > 0.3, "sinusoid must actually swing ({lo}..{hi})");

        // Where the matrix has no link, drift must not invent one.
        let one_way = Topology::from_matrix("1way", vec![vec![0.0, 0.5], vec![0.0, 0.0]]);
        let c = spec.build(&one_way, 9);
        assert_eq!(c.delivery(NodeId(1), NodeId(0), 0), 0.0, "no reverse link");
    }

    #[test]
    fn labels_are_distinct_and_comma_free() {
        let specs = [
            ChannelSpec::Static,
            ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10),
            ChannelSpec::Shadowing {
                path_loss_exp: 3.0,
                sigma_db: 6.0,
                midpoint_m: 35.0,
                epoch_ms: 100,
            },
            ChannelSpec::TimeVarying {
                amplitude: 0.2,
                period_ms: 30_000,
                walk_sigma: 0.02,
                epoch_ms: 1_000,
            },
        ];
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            assert!(!a.contains(','), "CSV-hostile label {a:?}");
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(labels[0], "static");
    }

    #[test]
    fn reach_hints_match_structure() {
        let t = generate::testbed(1);
        for spec in [
            ChannelSpec::Static,
            ChannelSpec::bursty_matched(0.1, 0.05, 0.2, 10),
            ChannelSpec::TimeVarying {
                amplitude: 0.2,
                period_ms: 30_000,
                walk_sigma: 0.02,
                epoch_ms: 1_000,
            },
        ] {
            assert_eq!(
                spec.build(&t, 0).reach_hint(),
                ReachHint::MatrixOnly,
                "{spec:?}"
            );
        }
        let shadow = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 6.0,
            midpoint_m: 35.0,
            epoch_ms: 100,
        }
        .build(&t, 0);
        match shadow.reach_hint() {
            ReachHint::WithinDistance(d) => assert!(d > 35.0, "radius {d} too tight"),
            h => panic!("shadowing must hint a distance bound, got {h:?}"),
        }
    }

    #[test]
    fn shadowing_delivery_support_stays_within_reach() {
        // Two nodes 200 m apart sit beyond the +3σ reach radius (≈ 137 m
        // at ple 3, σ 2 dB, midpoint 30 m): no shadow draw, however
        // extreme, may deliver — the clamp keeps `may_reach` a strict
        // superset of the delivery support.
        let t = generate::line(1, 0.9, 0.0, 200.0);
        let spec = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 2.0,
            midpoint_m: 30.0,
            epoch_ms: 100,
        };
        let mut c = spec.build(&t, 17);
        assert!(!c.may_reach(NodeId(0), NodeId(1)));
        for k in 0..500u64 {
            let now = k * 100 * crate::MS;
            c.tick(now);
            assert_eq!(c.delivery(NodeId(0), NodeId(1), now), 0.0);
        }
        assert!(reach_candidates(&t, c.as_ref()).is_empty());
    }

    #[test]
    fn reach_candidates_cover_delivery_support() {
        let t = generate::testbed(1);
        for spec in [
            ChannelSpec::Static,
            ChannelSpec::bursty_matched(0.1, 0.05, 0.2, 10),
            ChannelSpec::Shadowing {
                path_loss_exp: 3.0,
                sigma_db: 6.0,
                midpoint_m: 35.0,
                epoch_ms: 100,
            },
            ChannelSpec::TimeVarying {
                amplitude: 0.2,
                period_ms: 30_000,
                walk_sigma: 0.02,
                epoch_ms: 1_000,
            },
        ] {
            let mut c = spec.build(&t, 3);
            let cands = reach_candidates(&t, c.as_ref());
            assert!(
                cands.windows(2).all(|w| w[0] < w[1]),
                "{spec:?}: candidates must be ascending and unique"
            );
            let set: std::collections::BTreeSet<_> = cands.iter().copied().collect();
            for k in 0..20u64 {
                let now = k * 50 * crate::MS;
                c.tick(now);
                for i in t.nodes() {
                    for j in t.nodes() {
                        if i != j && c.delivery(i, j, now) > 0.0 {
                            assert!(
                                set.contains(&(i, j)),
                                "{spec:?}: delivery support escapes candidates at {i}->{j}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn validate_rejects_nonsense() {
        let topo = generate::line(1, 0.9, 0.0, 30.0);
        let bad = ChannelSpec::GilbertElliott {
            good_scale: 1.0,
            bad_scale: 0.0,
            to_bad: 1.5,
            to_good: 0.2,
            epoch_ms: 10,
        };
        assert!(bad.validate(&topo).is_err());
        let zero_epoch = ChannelSpec::TimeVarying {
            amplitude: 0.1,
            period_ms: 0,
            walk_sigma: 0.0,
            epoch_ms: 10,
        };
        assert!(zero_epoch.validate(&topo).is_err());
    }
}
