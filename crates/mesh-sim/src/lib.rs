//! A deterministic discrete-event simulator of an 802.11(b) wireless mesh.
//!
//! This crate is the substrate substituting for the paper's 20-node
//! hardware testbed (thesis §4.1). It models exactly the mechanisms the
//! MORE/ExOR/Srcr comparison depends on:
//!
//! * **broadcast medium with independent per-receiver losses** — each
//!   transmission is delivered to each potential receiver by an
//!   independent Bernoulli draw at the link's *instantaneous* delivery
//!   probability, supplied by a pluggable [`channel::ChannelModel`]
//!   (the default [`channel::ChannelSpec::Static`] is the §5.3.1 network
//!   model; Gilbert–Elliott burst loss, log-normal shadowing, and slow
//!   time-varying drift ship alongside it);
//! * **CSMA/CA medium access** — DIFS + slotted random backoff, binary
//!   exponential contention window growth on unicast retries, MAC-level
//!   ACKs, and half-duplex radios;
//! * **carrier sense and spatial reuse** — nodes defer only to
//!   transmissions they can sense; distant hops of the same flow can fire
//!   concurrently, the effect behind Fig 4-4;
//! * **collisions with capture** — overlapping audible frames at a
//!   receiver destroy each other unless one is sufficiently stronger
//!   (§4.2.3: "the capture effect allows multiple transmissions to be
//!   correctly received even when the nodes are within radio range of both
//!   senders");
//! * **bit-rates and autorate** — 802.11b rates with per-frame selection
//!   and an Onoe-style autorate controller ([`autorate`]) for the Fig 4-6
//!   experiment.
//!
//! Protocols plug in through the [`NodeAgent`] trait: the simulator calls
//! `poll_tx` when a node's MAC wins a transmit opportunity, delivers
//! receptions through `on_receive`, and reports transmit outcomes through
//! `on_tx_done`. Everything is deterministic in the seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod autorate;
pub mod channel;
pub mod erased;
pub mod medium;
pub mod queue;
pub mod simulator;
pub mod stats;

pub use autorate::OnoeAutorate;
pub use channel::{ChannelModel, ChannelSpec};
pub use erased::{DynPayload, Erased, ErasedFlowAgent, FlowAgent, FlowDesc, FlowProgressView};
pub use medium::Medium;
pub use queue::{AimdConfig, AimdPacer, DropCause, QueueDiscipline, QueueSpec, QueueVerdict};
pub use simulator::{Ctx, Simulator, TrafficAction};
pub use stats::SimStats;

use mesh_topology::NodeId;

/// Simulated time in microseconds.
pub type Time = u64;

/// The simulator tick — the smallest representable interval (1 µs).
/// Downstream rate math clamps elapsed windows to at least one tick so
/// a zero-width interval can never divide to a non-finite value.
pub const TICK: Time = 1;
/// One millisecond in [`Time`] units.
pub const MS: Time = 1_000;
/// One second in [`Time`] units.
pub const SEC: Time = 1_000_000;

/// 802.11b modulation rates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Bitrate {
    /// 1 Mb/s DSSS.
    B1,
    /// 2 Mb/s DSSS.
    B2,
    /// 5.5 Mb/s CCK — the paper's default data rate (§4.1.2).
    B5_5,
    /// 11 Mb/s CCK — used for the autorate comparison (§4.4).
    B11,
}

impl Bitrate {
    /// All rates, slowest first.
    pub const ALL: [Bitrate; 4] = [Bitrate::B1, Bitrate::B2, Bitrate::B5_5, Bitrate::B11];

    /// Rate in bits per microsecond (== Mb/s).
    pub fn bits_per_us(self) -> f64 {
        match self {
            Bitrate::B1 => 1.0,
            Bitrate::B2 => 2.0,
            Bitrate::B5_5 => 5.5,
            Bitrate::B11 => 11.0,
        }
    }

    /// Time on air for `bytes` of MPDU at this rate, including the 802.11b
    /// long-preamble PLCP (192 µs).
    pub fn airtime(self, bytes: usize) -> Time {
        let data_us = (bytes as f64 * 8.0 / self.bits_per_us()).ceil() as Time;
        192 + data_us
    }

    /// The next rate up, if any.
    pub fn up(self) -> Option<Bitrate> {
        match self {
            Bitrate::B1 => Some(Bitrate::B2),
            Bitrate::B2 => Some(Bitrate::B5_5),
            Bitrate::B5_5 => Some(Bitrate::B11),
            Bitrate::B11 => None,
        }
    }

    /// The next rate down, if any.
    pub fn down(self) -> Option<Bitrate> {
        match self {
            Bitrate::B1 => None,
            Bitrate::B2 => Some(Bitrate::B1),
            Bitrate::B5_5 => Some(Bitrate::B2),
            Bitrate::B11 => Some(Bitrate::B5_5),
        }
    }
}

/// MAC/PHY timing and behaviour parameters (802.11b defaults).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Default data bit-rate.
    pub bitrate: Bitrate,
    /// Rate used for MAC ACK frames.
    pub ack_bitrate: Bitrate,
    /// Slot time (20 µs for 802.11b).
    pub slot_us: Time,
    /// SIFS (10 µs).
    pub sifs_us: Time,
    /// DIFS (50 µs).
    pub difs_us: Time,
    /// Minimum contention window (CWmin = 31).
    pub cw_min: u32,
    /// Maximum contention window (CWmax = 1023).
    pub cw_max: u32,
    /// MAC ACK frame size in bytes.
    pub mac_ack_bytes: usize,
    /// Unicast retry limit before the MAC gives up.
    pub retry_limit: u32,
    /// Capture: a frame survives a collision at a receiver when its
    /// delivery probability exceeds `capture_ratio ×` the strongest
    /// interferer's. Set very large to disable capture.
    pub capture_ratio: f64,
    /// Carrier-sense range in meters when positions are available;
    /// transmissions within this range of a node keep its MAC deferring
    /// even when no usable link exists (interference range > decode
    /// range).
    pub carrier_sense_range: f64,
    /// Interference range in meters: a transmission within this range of a
    /// receiver collides with frames arriving there.
    pub interference_range: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bitrate: Bitrate::B5_5,
            ack_bitrate: Bitrate::B2,
            slot_us: 20,
            sifs_us: 10,
            difs_us: 50,
            cw_min: 31,
            cw_max: 1023,
            mac_ack_bytes: 14,
            retry_limit: 7,
            capture_ratio: 1.8,
            carrier_sense_range: 42.0,
            interference_range: 38.0,
        }
    }
}

/// What a protocol hands the MAC when polled for a transmission.
#[derive(Clone, Debug)]
pub struct OutFrame<P> {
    /// `None` → broadcast (no MAC ACK, no retries); `Some(next hop)` →
    /// unicast with ACK + retransmission.
    pub dst: Option<NodeId>,
    /// Total on-air MPDU size in bytes (payload + protocol headers).
    pub bytes: usize,
    /// Bit-rate override; `None` uses [`SimConfig::bitrate`].
    pub bitrate: Option<Bitrate>,
    /// The protocol-level flow this frame serves, when it serves one.
    /// A bounded [`queue::QueueDiscipline`] classifies frames by this id
    /// (CHOKe's fairness matching, per-flow drop counters, source
    /// pacing); `None` marks flow-less control traffic, which is bucketed
    /// per sending node and never matches a data flow.
    pub flow: Option<u32>,
    /// Protocol-defined contents, delivered verbatim to receivers.
    pub payload: P,
}

/// A frame as seen by a receiver.
#[derive(Clone, Debug)]
pub struct Frame<P> {
    /// The transmitting node.
    pub from: NodeId,
    /// Unicast destination, `None` for broadcast.
    pub dst: Option<NodeId>,
    /// On-air size in bytes.
    pub bytes: usize,
    /// Rate it was sent at.
    pub bitrate: Bitrate,
    /// Protocol payload.
    pub payload: P,
}

/// Outcome of a transmission, reported to the sender's agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Broadcast completed (broadcasts are fire-and-forget).
    Broadcast,
    /// Unicast was MAC-acknowledged after `retries` retransmissions.
    Acked {
        /// Retransmissions before the ACK arrived.
        retries: u32,
    },
    /// Unicast exhausted the retry limit.
    Failed {
        /// Retransmissions attempted before giving up.
        retries: u32,
    },
}

/// A protocol running on every node of the simulated mesh.
///
/// One agent instance manages all nodes (the simulator passes the node id
/// to every callback); implementations must only use state local to that
/// node to keep the semantics of a distributed protocol.
pub trait NodeAgent {
    /// Protocol payload type carried in frames.
    type Payload: Clone;

    /// A frame was received by `node`.
    fn on_receive(&mut self, node: NodeId, frame: &Frame<Self::Payload>, ctx: &mut Ctx<'_>);

    /// A transmission by `node` finished with `outcome`.
    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>);

    /// The MAC at `node` won a transmit opportunity; return a frame or
    /// `None` to go idle (the MAC will poll again after
    /// [`Ctx::mark_backlogged`]).
    ///
    /// With a bounded [`queue::QueueSpec`] configured, the engine may
    /// poll several frames back-to-back to fill the node's transmit
    /// queue, so more than one polled frame can be outstanding at once.
    /// Outcomes are reported in poll order for frames that reach the
    /// air ([`NodeAgent::on_tx_done`]), while queue drops are reported
    /// out of band with the frame's payload
    /// ([`NodeAgent::on_queue_drop`]). Agents tracking in-flight frames
    /// must therefore keep a FIFO per node, not a single slot.
    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<Self::Payload>>;

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _node: NodeId, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// A frame previously handed out by [`NodeAgent::poll_tx`] was
    /// dropped by `node`'s bounded transmit queue before reaching the
    /// air (never called under [`queue::QueueSpec::Unbounded`]). The
    /// payload is handed back so the agent can account the loss and
    /// reclaim buffers; the default treats it like an unheard broadcast
    /// and forwards the payload to [`NodeAgent::recycle`].
    fn on_queue_drop(
        &mut self,
        _node: NodeId,
        payload: Self::Payload,
        _cause: queue::DropCause,
        _ctx: &mut Ctx<'_>,
    ) {
        self.recycle(payload);
    }

    /// The simulator is done with a frame's payload: the broadcast left
    /// the air and every receiver has been served. If the agent's payload
    /// holds pooled buffers (refcounted packet data), this is the hook to
    /// recycle them — the payload handed in is the frame's own copy, so
    /// when no receiver kept a reference the agent gets the sole one back.
    /// The default drops it.
    fn recycle(&mut self, _payload: Self::Payload) {}
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn airtime_math() {
        // 1500 B at 11 Mb/s: 192 + ceil(12000/11) = 192 + 1091 = 1283 µs.
        assert_eq!(Bitrate::B11.airtime(1500), 1283);
        // At 1 Mb/s: 192 + 12000 = 12192 µs — roughly 10× longer, the
        // §4.4 observation about lowest-rate transmissions hogging the
        // medium.
        assert_eq!(Bitrate::B1.airtime(1500), 12192);
        let ratio = Bitrate::B1.airtime(1500) as f64 / Bitrate::B11.airtime(1500) as f64;
        assert!(ratio > 9.0 && ratio < 10.0);
    }

    #[test]
    fn rate_ladder() {
        assert_eq!(Bitrate::B1.up(), Some(Bitrate::B2));
        assert_eq!(Bitrate::B11.up(), None);
        assert_eq!(Bitrate::B11.down(), Some(Bitrate::B5_5));
        assert_eq!(Bitrate::B1.down(), None);
        // Ladder is consistent.
        for r in Bitrate::ALL {
            if let Some(u) = r.up() {
                assert_eq!(u.down(), Some(r));
            }
        }
    }

    #[test]
    fn default_config_is_802_11b() {
        let c = SimConfig::default();
        assert_eq!(c.slot_us, 20);
        assert_eq!(c.sifs_us, 10);
        assert_eq!(c.difs_us, 50);
        assert_eq!(c.cw_min, 31);
        assert_eq!(c.bitrate, Bitrate::B5_5);
    }
}
