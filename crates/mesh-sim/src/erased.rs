//! Payload-erased, object-safe protocol agents.
//!
//! [`NodeAgent`] is generic over its payload type, which makes
//! `Simulator<A>` monomorphic and fast — but also makes `dyn NodeAgent`
//! impossible, and a pluggable protocol registry needs trait objects.
//! This module provides the bridge:
//!
//! * [`FlowAgent`] — the measurement contract every end-to-end protocol
//!   implements on top of [`NodeAgent`]: "are all transfers finished?"
//!   and "how far along is flow *i*?". This is the least common
//!   denominator of MORE, ExOR, Srcr, and any future protocol.
//! * [`ErasedFlowAgent`] — the object-safe combination of both, with
//!   payloads type-erased behind [`DynPayload`] (`Rc<dyn Any>`).
//! * [`Erased`] — wraps any concrete [`FlowAgent`] into an
//!   [`ErasedFlowAgent`]; `Box<dyn ErasedFlowAgent>` itself implements
//!   [`NodeAgent`] (and [`FlowAgent`]), so it drops straight into
//!   [`crate::Simulator`].
//!
//! The erasure costs one `Rc` allocation per transmitted frame plus one
//! payload clone per reception. For payloads built on refcounted packet
//! buffers (the zero-copy path) that clone is a reference-count bump, not
//! a copy; [`NodeAgent::recycle`] is forwarded through the erasure (the
//! `Rc` is unwrapped when the engine really held the last reference) so
//! pooled buffers flow back to their pool across the type boundary too.

use crate::queue::DropCause;
use crate::{Ctx, Frame, NodeAgent, OutFrame, Time, TxOutcome};
use mesh_topology::NodeId;
use std::any::Any;
use std::rc::Rc;

/// A protocol payload with its concrete type erased.
///
/// `Rc`, not `Arc`: one simulation runs on one thread (parallel sweeps
/// parallelize across simulations, never within one).
pub type DynPayload = Rc<dyn Any>;

/// Description of a flow handed to a protocol mid-run (the engine-level
/// mirror of the scenario layer's `FlowSpec`, so `mesh-sim` stays free of
/// a dependency on the scenario crate).
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct FlowDesc {
    /// Source node.
    pub src: NodeId,
    /// One destination (unicast) or several (multicast).
    pub dsts: Vec<NodeId>,
    /// Packet budget of the transfer.
    pub packets: usize,
}

impl FlowDesc {
    /// A unicast flow description.
    pub fn unicast(src: NodeId, dst: NodeId, packets: usize) -> Self {
        FlowDesc {
            src,
            dsts: vec![dst],
            packets,
        }
    }
}

/// Per-flow progress as read by measurement harnesses, reduced to what
/// every protocol can report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowProgressView {
    /// Packets delivered end-to-end (for multicast: summed over
    /// destinations).
    pub delivered: usize,
    /// Simulated time the transfer finished, if it did.
    pub completed_at: Option<Time>,
    /// The protocol considers the flow fully resolved.
    pub done: bool,
}

/// Measurement interface layered on [`NodeAgent`]: a protocol that moves
/// a known set of flows and can report progress on each.
///
/// The lifecycle hooks ([`FlowAgent::add_flow`] / [`FlowAgent::end_flow`])
/// let dynamic traffic models inject and withdraw flows **mid-run**; they
/// default to "unsupported" so existing protocols keep compiling, and
/// [`FlowAgent::supports_dynamic_flows`] lets harnesses reject a dynamic
/// workload *before* the run instead of panicking inside it.
pub trait FlowAgent: NodeAgent {
    /// Every flow resolved (the simulator's stop condition). Flows halted
    /// by [`FlowAgent::end_flow`] count as resolved.
    fn flows_done(&self) -> bool;

    /// Progress of the flow at `index` (the order flows were added).
    fn flow_progress(&self, index: usize) -> FlowProgressView;

    /// Whether this protocol implements the mid-run lifecycle hooks.
    /// Harnesses must check this before scheduling dynamic traffic.
    fn supports_dynamic_flows(&self) -> bool {
        false
    }

    /// Installs `desc` as a new flow while the simulation is running and
    /// returns its index (flows are indexed in the order they were added,
    /// counting the ones installed at construction). The caller is
    /// responsible for kicking the source's MAC afterwards.
    ///
    /// # Panics
    ///
    /// The default implementation panics: protocols opt in by overriding
    /// this together with [`FlowAgent::supports_dynamic_flows`].
    fn add_flow(&mut self, desc: &FlowDesc) -> usize {
        let _ = desc;
        // xtask: allow(panic_path) -- documented "# Panics" contract: protocols opt in to dynamic flows via supports_dynamic_flows
        panic!("this protocol does not support dynamic flow arrivals");
    }

    /// Halts the flow at `index`: the protocol must stop sourcing and
    /// forwarding it and must no longer count it against
    /// [`FlowAgent::flows_done`]. Progress measured so far stays readable.
    ///
    /// # Panics
    ///
    /// The default implementation panics: protocols opt in by overriding
    /// this together with [`FlowAgent::supports_dynamic_flows`].
    fn end_flow(&mut self, index: usize) {
        let _ = index;
        // xtask: allow(panic_path) -- documented "# Panics" contract: protocols opt in to dynamic flows via supports_dynamic_flows
        panic!("this protocol does not support dynamic flow departures");
    }
}

/// Object-safe [`FlowAgent`] with erased payloads. This is the type the
/// protocol registry traffics in: `Box<dyn ErasedFlowAgent>`.
pub trait ErasedFlowAgent {
    /// [`NodeAgent::on_receive`] over the erased payload.
    fn on_receive(&mut self, node: NodeId, frame: &Frame<DynPayload>, ctx: &mut Ctx<'_>);
    /// [`NodeAgent::on_tx_done`], unchanged.
    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>);
    /// [`NodeAgent::poll_tx`] over the erased payload.
    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<DynPayload>>;
    /// [`NodeAgent::on_timer`], unchanged.
    fn on_timer(&mut self, node: NodeId, token: u64, ctx: &mut Ctx<'_>);
    /// [`NodeAgent::on_queue_drop`] over the erased payload.
    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: DynPayload,
        cause: DropCause,
        ctx: &mut Ctx<'_>,
    );
    /// [`NodeAgent::recycle`] over the erased payload.
    fn recycle(&mut self, payload: DynPayload);
    /// [`FlowAgent::flows_done`], unchanged.
    fn flows_done(&self) -> bool;
    /// [`FlowAgent::flow_progress`], unchanged.
    fn flow_progress(&self, index: usize) -> FlowProgressView;
    /// [`FlowAgent::supports_dynamic_flows`], unchanged.
    fn supports_dynamic_flows(&self) -> bool;
    /// [`FlowAgent::add_flow`], unchanged.
    fn add_flow(&mut self, desc: &FlowDesc) -> usize;
    /// [`FlowAgent::end_flow`], unchanged.
    fn end_flow(&mut self, index: usize);
    /// Downcast access to the concrete agent (protocol-specific stats).
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast access to the concrete agent.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Adapter erasing a concrete [`FlowAgent`]'s payload type.
pub struct Erased<A>(pub A);

impl<A> ErasedFlowAgent for Erased<A>
where
    A: FlowAgent + 'static,
    A::Payload: 'static,
{
    fn on_receive(&mut self, node: NodeId, frame: &Frame<DynPayload>, ctx: &mut Ctx<'_>) {
        let payload = frame
            .payload
            .downcast_ref::<A::Payload>()
            // xtask: allow(panic_path) -- the simulator registers one payload type per agent; a type mismatch here is a harness bug, never a runtime input
            .expect("erased frame payload does not match the receiving agent's payload type")
            .clone();
        let typed = Frame {
            from: frame.from,
            dst: frame.dst,
            bytes: frame.bytes,
            bitrate: frame.bitrate,
            payload,
        };
        self.0.on_receive(node, &typed, ctx);
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        self.0.on_tx_done(node, outcome, ctx);
    }

    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<DynPayload>> {
        self.0.poll_tx(node, ctx).map(|f| OutFrame {
            dst: f.dst,
            bytes: f.bytes,
            bitrate: f.bitrate,
            flow: f.flow,
            payload: Rc::new(f.payload) as DynPayload,
        })
    }

    fn on_timer(&mut self, node: NodeId, token: u64, ctx: &mut Ctx<'_>) {
        self.0.on_timer(node, token, ctx);
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: DynPayload,
        cause: DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        // A queue-dropped frame never reached the air, so the engine's
        // `Rc` is normally the sole reference; clone defensively if the
        // concrete agent kept one.
        if let Ok(rc) = payload.downcast::<A::Payload>() {
            let p = Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone());
            self.0.on_queue_drop(node, p, cause, ctx);
        }
    }

    fn recycle(&mut self, payload: DynPayload) {
        // Only unwrap when the engine really held the last reference —
        // a receiver may have kept the payload alive.
        if let Ok(rc) = payload.downcast::<A::Payload>() {
            if let Ok(p) = Rc::try_unwrap(rc) {
                self.0.recycle(p);
            }
        }
    }

    fn flows_done(&self) -> bool {
        self.0.flows_done()
    }

    fn flow_progress(&self, index: usize) -> FlowProgressView {
        self.0.flow_progress(index)
    }

    fn supports_dynamic_flows(&self) -> bool {
        self.0.supports_dynamic_flows()
    }

    fn add_flow(&mut self, desc: &FlowDesc) -> usize {
        self.0.add_flow(desc)
    }

    fn end_flow(&mut self, index: usize) {
        self.0.end_flow(index)
    }

    fn as_any(&self) -> &dyn Any {
        &self.0
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        &mut self.0
    }
}

impl NodeAgent for Box<dyn ErasedFlowAgent> {
    type Payload = DynPayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<DynPayload>, ctx: &mut Ctx<'_>) {
        (**self).on_receive(node, frame, ctx);
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        (**self).on_tx_done(node, outcome, ctx);
    }

    fn poll_tx(&mut self, node: NodeId, ctx: &mut Ctx<'_>) -> Option<OutFrame<DynPayload>> {
        (**self).poll_tx(node, ctx)
    }

    fn on_timer(&mut self, node: NodeId, token: u64, ctx: &mut Ctx<'_>) {
        (**self).on_timer(node, token, ctx);
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: DynPayload,
        cause: DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        (**self).on_queue_drop(node, payload, cause, ctx);
    }

    fn recycle(&mut self, payload: DynPayload) {
        (**self).recycle(payload);
    }
}

impl FlowAgent for Box<dyn ErasedFlowAgent> {
    fn flows_done(&self) -> bool {
        (**self).flows_done()
    }

    fn flow_progress(&self, index: usize) -> FlowProgressView {
        (**self).flow_progress(index)
    }

    fn supports_dynamic_flows(&self) -> bool {
        (**self).supports_dynamic_flows()
    }

    fn add_flow(&mut self, desc: &FlowDesc) -> usize {
        (**self).add_flow(desc)
    }

    fn end_flow(&mut self, index: usize) {
        (**self).end_flow(index)
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::{SimConfig, Simulator, SEC};
    use mesh_topology::generate;

    /// A tiny broadcast-flood protocol used to exercise the erasure
    /// plumbing end-to-end.
    struct Flood {
        remaining: u32,
        delivered: usize,
        done_at: Option<Time>,
    }

    impl NodeAgent for Flood {
        type Payload = u32;

        fn on_receive(&mut self, node: NodeId, frame: &Frame<u32>, _ctx: &mut Ctx<'_>) {
            if node == NodeId(2) {
                self.delivered += 1;
                assert_eq!(frame.payload, 7, "payload survived the round-trip");
            }
        }

        fn on_tx_done(&mut self, _node: NodeId, _outcome: TxOutcome, ctx: &mut Ctx<'_>) {
            if self.remaining > 0 {
                ctx.mark_backlogged(NodeId(0));
            } else if self.done_at.is_none() {
                self.done_at = Some(ctx.now());
            }
        }

        fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<u32>> {
            if node != NodeId(0) || self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            Some(OutFrame {
                dst: None,
                bytes: 200,
                bitrate: None,
                flow: None,
                payload: 7,
            })
        }
    }

    impl FlowAgent for Flood {
        fn flows_done(&self) -> bool {
            self.remaining == 0
        }

        fn flow_progress(&self, _index: usize) -> FlowProgressView {
            FlowProgressView {
                delivered: self.delivered,
                completed_at: self.done_at,
                done: self.flows_done(),
            }
        }
    }

    #[test]
    #[allow(clippy::borrowed_box)] // run_until's stop callback receives &A = &Box<dyn _>
    fn erased_agent_runs_in_the_simulator() {
        let topo = generate::line(2, 0.95, 0.4, 25.0);
        let agent: Box<dyn ErasedFlowAgent> = Box::new(Erased(Flood {
            remaining: 20,
            delivered: 0,
            done_at: None,
        }));
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, 1);
        sim.kick(NodeId(0));
        sim.run_until(30 * SEC, |a: &Box<dyn ErasedFlowAgent>| a.flows_done());
        let p = sim.agent.flow_progress(0);
        assert!(p.done);
        assert!(p.delivered > 0, "the far node should hear something");
        // Downcast recovers the concrete type.
        let concrete = sim
            .agent
            .as_any()
            .downcast_ref::<Flood>()
            .expect("is Flood");
        assert_eq!(concrete.remaining, 0);
    }
}
