//! The discrete-event engine: event queue, per-node CSMA/CA MAC state
//! machines, and the agent callback plumbing.
//!
//! Everything advances through a binary-heap event queue keyed on
//! `(time, sequence)`, so simultaneous events run in scheduling order and
//! every run is a pure function of `(topology, agent, seed)`.
//!
//! ## MAC model
//!
//! Each node is `Idle`, `Waiting` (a transmit attempt is scheduled),
//! `Transmitting`, or `AwaitAck`. A node that wants the medium samples a
//! backoff of `DIFS + U(0..=cw)·slot`; if the medium is busy (within its
//! carrier-sense set) when the attempt fires, it re-arms at the sensed
//! busy-end plus a fresh backoff — an event-driven approximation of
//! slotted CSMA/CA that preserves what matters here: contention,
//! collisions between simultaneous winners, spatial reuse between
//! non-sensing nodes, and exponential backoff pressure on retries.
//!
//! Unicast frames get SIFS-spaced MAC ACKs (real frames on the medium:
//! they occupy airtime, are lost to the link's loss rate, and can
//! collide); broadcasts are fire-and-forget (802.11 semantics — the basis
//! of both MORE's and ExOR's designs).

// xtask: allow(panic_path, file) -- per-node state vectors are sized to the topology at construction and NodeId indices are validated on ingress; event-heap pops are guarded by the peek directly above.

use crate::channel::{ChannelModel, ChannelSpec};
use crate::erased::{FlowAgent, FlowDesc};
use crate::medium::{Medium, Transmission};
use crate::queue::{
    AimdConfig, AimdPacer, DropCause, QueueDiscipline, QueueSpec, QueueVerdict, QUEUE_STREAM,
};
use crate::stats::SimStats;
use crate::{Frame, NodeAgent, OutFrame, SimConfig, Time, TxOutcome};
use mesh_topology::{NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// What the engine schedules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EventKind {
    /// A node's MAC attempts to seize the medium.
    TryTx { node: NodeId },
    /// Transmission `id` leaves the air.
    TxEnd { id: u64 },
    /// Unicast ACK wait expired (stale unless `seq` matches).
    AckTimeout { node: NodeId, seq: u64 },
    /// A receiver emits its MAC ACK (SIFS after the data frame).
    StartMacAck { node: NodeId, data_id: u64 },
    /// Protocol timer.
    Timer { node: NodeId, token: u64 },
}

/// A dynamic-workload action applied between engine events (see
/// [`Simulator::schedule_traffic`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrafficAction {
    /// A new flow arrives: [`FlowAgent::add_flow`] is called and the
    /// source's MAC is kicked.
    Start(FlowDesc),
    /// The flow at this index (the order flows were added, counting the
    /// ones installed at construction) departs: [`FlowAgent::end_flow`].
    Stop(usize),
}

/// Callback context handed to [`NodeAgent`] methods.
///
/// Mutations (timers, backlog kicks) are queued and applied by the engine
/// when the callback returns.
pub struct Ctx<'a> {
    now: Time,
    rng: &'a mut ChaCha8Rng,
    timers: Vec<(NodeId, Time, u64)>,
    kicks: Vec<NodeId>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time, µs.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The run's deterministic RNG (shared with the MAC and medium).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Schedules [`NodeAgent::on_timer`] for `node` after `delay` µs.
    pub fn set_timer(&mut self, node: NodeId, delay: Time, token: u64) {
        self.timers.push((node, delay, token));
    }

    /// Tells the MAC at `node` that the protocol now has frames to send;
    /// an idle MAC will schedule a transmit attempt.
    pub fn mark_backlogged(&mut self, node: NodeId) {
        self.kicks.push(node);
    }
}

/// Node MAC state.
#[derive(Debug)]
enum MacState {
    Idle,
    /// A `TryTx` is scheduled.
    Waiting,
    /// A data frame (or our MAC ACK) is on the air.
    Transmitting,
    /// Unicast sent; waiting for the MAC ACK.
    AwaitAck {
        seq: u64,
    },
}

/// An unacknowledged unicast retained for retransmission.
struct CurrentTx<P> {
    frame: OutFrame<P>,
    retries: u32,
    cw: u32,
}

/// What is on the air under a given transmission id.
enum InFlight<P> {
    Data { frame: Frame<P> },
    MacAck { to: NodeId },
}

/// One node's bounded transmit queue: the engine-side frame FIFO plus
/// the discipline mirroring it (see [`crate::queue`]).
struct NodeQueue<P> {
    frames: VecDeque<OutFrame<P>>,
    disc: Box<dyn QueueDiscipline>,
}

/// The queue subsystem, present only for bounded [`QueueSpec`]s — under
/// [`QueueSpec::Unbounded`] the engine keeps the historical
/// one-poll-per-opportunity path and this struct is never built, which
/// is what makes the default byte-identical to the pre-queue engine.
struct QueueLayer<P> {
    nodes: Vec<NodeQueue<P>>,
    /// AQM randomness, decorrelated from the main stream
    /// (`seed ^ QUEUE_STREAM`).
    rng: ChaCha8Rng,
    /// AIMD pacers for opted-in flows, keyed by protocol flow id.
    pacers: BTreeMap<u32, AimdPacer>,
    /// Each paced flow's source node (pacing gates only the source).
    pacer_src: BTreeMap<u32, NodeId>,
    /// When set, every flow the traffic layer starts mid-run is paced.
    auto_pace: Option<AimdConfig>,
}

/// What the queue layer produced for a transmit opportunity.
enum Pumped<P> {
    /// Head-of-line frame, cleared to transmit.
    Frame(OutFrame<P>),
    /// Nothing queued and the protocol has nothing to say: go idle.
    Empty,
    /// The head frame belongs to a paced flow whose gate is closed;
    /// retry the attempt at this instant.
    Deferred(Time),
}

/// The discrete-event simulator.
///
/// Generic over the protocol agent `A`; see the crate docs for the
/// callback contract.
#[must_use]
pub struct Simulator<A: NodeAgent> {
    topo: Topology,
    cfg: SimConfig,
    /// The protocol under simulation.
    pub agent: A,
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<(Time, u64, EventKind)>>,
    rng: ChaCha8Rng,
    medium: Medium,
    channel: Box<dyn ChannelModel>,
    states: Vec<MacState>,
    current: Vec<Option<CurrentTx<A::Payload>>>,
    /// Generation counters for ACK timeouts.
    ack_seq: Vec<u64>,
    in_flight: std::collections::BTreeMap<u64, InFlight<A::Payload>>,
    next_tx_id: u64,
    /// Pending dynamic-workload actions, kept sorted descending by
    /// `(time, seq)` so the earliest is popped from the back.
    traffic: Vec<(Time, u64, TrafficAction)>,
    traffic_seq: u64,
    /// How many of the pending actions are `Start`s (fast path for the
    /// stop-condition gate: only future *arrivals* can un-resolve a run).
    pending_starts: usize,
    /// Arrival times of pending `Start`s, descending (earliest at the
    /// back), rebuilt by [`Simulator::run_with_traffic`] — the stop gate
    /// peeks the back instead of scanning the whole action list per
    /// event, keeping 500-flow city runs O(1) per event here.
    start_times_desc: Vec<Time>,
    /// Scratch for [`Ctx::set_timer`] requests, reused across callbacks so
    /// the per-event hot path allocates nothing.
    scratch_timers: Vec<(NodeId, Time, u64)>,
    /// Scratch for [`Ctx::mark_backlogged`] requests (see above).
    scratch_kicks: Vec<NodeId>,
    /// Scratch for the per-transmission receiver set.
    scratch_receivers: Vec<NodeId>,
    /// Bounded per-node transmit queues; `None` = unbounded (legacy path).
    queues: Option<QueueLayer<A::Payload>>,
    /// Counters accumulated over the run.
    pub stats: SimStats,
}

impl<A: NodeAgent> Simulator<A> {
    /// Builds a simulator over `topo` for `agent`, deterministic in `seed`,
    /// with the paper's static channel (the topology's delivery matrix).
    pub fn new(topo: Topology, cfg: SimConfig, agent: A, seed: u64) -> Self {
        Simulator::with_channel(topo, cfg, &ChannelSpec::Static, agent, seed)
    }

    /// Builds a simulator whose air follows `spec` (see
    /// [`crate::channel`]). A run is a pure function of
    /// `(topology, agent, seed, channel)`.
    ///
    /// # Panics
    ///
    /// Panics when `spec` is invalid for `topo` (see
    /// [`ChannelSpec::validate`]).
    pub fn with_channel(
        topo: Topology,
        cfg: SimConfig,
        spec: &ChannelSpec,
        agent: A,
        seed: u64,
    ) -> Self {
        let channel = spec.build(&topo, seed);
        Simulator::with_channel_model(topo, cfg, channel, agent, seed)
    }

    /// Builds a simulator with both the channel and the transmit-queue
    /// policy configured (see [`crate::queue`]). A run is a pure
    /// function of `(topology, agent, seed, channel, queue)`;
    /// [`QueueSpec::Unbounded`] makes this identical to
    /// [`Simulator::with_channel`].
    ///
    /// # Panics
    ///
    /// Panics when either spec is invalid (see [`ChannelSpec::validate`]
    /// and [`QueueSpec::validate`]).
    pub fn with_queue(
        topo: Topology,
        cfg: SimConfig,
        spec: &ChannelSpec,
        queue: &QueueSpec,
        agent: A,
        seed: u64,
    ) -> Self {
        let mut sim = Simulator::with_channel(topo, cfg, spec, agent, seed);
        sim.install_queue(queue, seed);
        sim
    }

    fn install_queue(&mut self, spec: &QueueSpec, seed: u64) {
        if spec.is_unbounded() {
            return;
        }
        let nodes = (0..self.topo.n())
            .filter_map(|_| {
                spec.build_node().map(|disc| NodeQueue {
                    frames: VecDeque::new(),
                    disc,
                })
            })
            .collect();
        self.queues = Some(QueueLayer {
            nodes,
            rng: ChaCha8Rng::seed_from_u64(seed ^ QUEUE_STREAM),
            pacers: BTreeMap::new(),
            pacer_src: BTreeMap::new(),
            auto_pace: None,
        });
    }

    /// Opts flow `flow` (the protocol's flow id) into AIMD source
    /// pacing: dequeues of its frames at `src` are rate-limited, and
    /// queue losses of its frames anywhere multiplicatively decrease
    /// the rate (see [`crate::queue::AimdPacer`]).
    ///
    /// # Panics
    ///
    /// Panics when no bounded queue is configured (pacing gates the
    /// transmit queue, so it requires [`Simulator::with_queue`]) or
    /// when `cfg` is invalid.
    pub fn pace_flow(&mut self, flow: u32, src: NodeId, cfg: AimdConfig) {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid AimdConfig: {e}"));
        let Some(layer) = self.queues.as_mut() else {
            panic!("source pacing requires a bounded QueueSpec (use Simulator::with_queue)");
        };
        layer.pacers.insert(flow, AimdPacer::new(cfg));
        layer.pacer_src.insert(flow, src);
    }

    /// Like [`Simulator::pace_flow`], but also paces every flow the
    /// traffic layer starts mid-run (dynamic arrivals are assigned
    /// sequential flow ids, index + 1, matching the registry-built
    /// protocols).
    ///
    /// # Panics
    ///
    /// Same contract as [`Simulator::pace_flow`].
    pub fn pace_all_flows(&mut self, cfg: AimdConfig) {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid AimdConfig: {e}"));
        let Some(layer) = self.queues.as_mut() else {
            panic!("source pacing requires a bounded QueueSpec (use Simulator::with_queue)");
        };
        layer.auto_pace = Some(cfg);
    }

    /// Current transmit-queue depth at `node` (0 when unbounded).
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.queues
            .as_ref()
            .and_then(|l| l.nodes.get(node.0))
            .map_or(0, |q| q.frames.len())
    }

    /// Current AIMD pacing rate of `flow`, if it is paced.
    pub fn pacer_rate(&self, flow: u32) -> Option<f64> {
        self.queues
            .as_ref()
            .and_then(|l| l.pacers.get(&flow))
            .map(AimdPacer::rate_pps)
    }

    /// Builds a simulator over a caller-constructed channel model — the
    /// escape hatch for loss processes [`ChannelSpec`] cannot express.
    pub fn with_channel_model(
        topo: Topology,
        cfg: SimConfig,
        channel: Box<dyn ChannelModel>,
        agent: A,
        seed: u64,
    ) -> Self {
        let n = topo.n();
        let medium = Medium::new(&topo, &cfg, channel.as_ref());
        Simulator {
            topo,
            cfg,
            agent,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            medium,
            channel,
            states: (0..n).map(|_| MacState::Idle).collect(),
            current: (0..n).map(|_| None).collect(),
            ack_seq: vec![0; n],
            in_flight: std::collections::BTreeMap::new(),
            next_tx_id: 0,
            traffic: Vec::new(),
            traffic_seq: 0,
            pending_starts: 0,
            start_times_desc: Vec::new(),
            scratch_timers: Vec::new(),
            scratch_kicks: Vec::new(),
            scratch_receivers: Vec::new(),
            queues: None,
            stats: SimStats::new(n),
        }
    }

    /// Schedules a dynamic-workload action for simulated time `at`.
    /// Actions fire inside [`Simulator::run_with_traffic`], interleaved
    /// with the event queue; at equal timestamps traffic actions apply
    /// before engine events, and same-instant actions apply in the order
    /// they were scheduled.
    pub fn schedule_traffic(&mut self, at: Time, action: TrafficAction) {
        if matches!(action, TrafficAction::Start(_)) {
            self.pending_starts += 1;
        }
        self.traffic_seq += 1;
        self.traffic.push((at, self.traffic_seq, action));
        // Ordered once per run ([`Simulator::run_with_traffic`]), not per
        // insertion — schedules are built in bulk before the run starts.
    }

    /// The channel model driving this run's losses.
    pub fn channel(&self) -> &dyn ChannelModel {
        self.channel.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The MAC/PHY configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Kick a node's MAC from outside the event loop (e.g. flow start).
    pub fn kick(&mut self, node: NodeId) {
        self.kick_at(node, self.now);
    }

    /// Debug view of a node's MAC state name.
    pub fn mac_state_name(&self, node: NodeId) -> &'static str {
        match self.states[node.0] {
            MacState::Idle => "Idle",
            MacState::Waiting => "Waiting",
            MacState::Transmitting => "Transmitting",
            MacState::AwaitAck { .. } => "AwaitAck",
        }
    }

    /// Number of events waiting in the queue (debugging aid).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn kick_at(&mut self, node: NodeId, at: Time) {
        if matches!(self.states[node.0], MacState::Idle) {
            self.states[node.0] = MacState::Waiting;
            let delay = self.backoff_delay(self.cfg.cw_min);
            self.push(at + delay, EventKind::TryTx { node });
        }
    }

    /// Set a protocol timer from outside the event loop.
    pub fn set_timer(&mut self, node: NodeId, delay: Time, token: u64) {
        self.push(self.now + delay, EventKind::Timer { node, token });
    }

    fn push(&mut self, at: Time, ev: EventKind) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, ev)));
    }

    fn backoff_delay(&mut self, cw: u32) -> Time {
        let slots = self.rng.gen_range(0..=cw) as Time;
        self.cfg.difs_us + slots * self.cfg.slot_us
    }

    /// Runs until `deadline` or until `stop(&agent)` or event exhaustion.
    ///
    /// Returns the simulated time at exit.
    pub fn run_until(&mut self, deadline: Time, mut stop: impl FnMut(&A) -> bool) -> Time {
        while let Some(Reverse((at, _, ev))) = self.queue.pop() {
            if at > deadline {
                // Leave the event for a future run; time stops at deadline.
                self.push_back(at, ev);
                self.now = deadline;
                break;
            }
            self.now = at;
            self.stats.events += 1;
            self.dispatch(ev);
            if stop(&self.agent) {
                break;
            }
            if self.stats.events.is_multiple_of(4096) {
                self.medium.prune(self.now);
            }
        }
        self.now
    }

    fn push_back(&mut self, at: Time, ev: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, ev)));
    }

    fn dispatch(&mut self, ev: EventKind) {
        match ev {
            EventKind::TryTx { node } => self.on_try_tx(node),
            EventKind::TxEnd { id } => self.on_tx_end(id),
            EventKind::AckTimeout { node, seq } => self.on_ack_timeout(node, seq),
            EventKind::StartMacAck { node, data_id } => self.on_start_mac_ack(node, data_id),
            EventKind::Timer { node, token } => {
                let mut ctx = Ctx {
                    now: self.now,
                    rng: &mut self.rng,
                    timers: std::mem::take(&mut self.scratch_timers),
                    kicks: std::mem::take(&mut self.scratch_kicks),
                };
                self.agent.on_timer(node, token, &mut ctx);
                let Ctx { timers, kicks, .. } = ctx;
                self.apply_ctx(timers, kicks);
            }
        }
    }

    /// Applies queued callback mutations, then parks the (now empty)
    /// vectors back in the scratch slots for the next callback.
    fn apply_ctx(&mut self, mut timers: Vec<(NodeId, Time, u64)>, mut kicks: Vec<NodeId>) {
        for (node, delay, token) in timers.drain(..) {
            self.push(self.now + delay, EventKind::Timer { node, token });
        }
        for node in kicks.drain(..) {
            self.kick_at(node, self.now);
        }
        self.scratch_timers = timers;
        self.scratch_kicks = kicks;
    }

    fn on_try_tx(&mut self, node: NodeId) {
        if !matches!(self.states[node.0], MacState::Waiting) {
            return; // stale attempt (e.g. we got an ACK to answer meanwhile)
        }
        // Half-duplex: our own MAC ACK may still be on the air.
        let own_busy = self.medium.own_tx_until(node, self.now);
        // Defer while the medium is sensed busy (or our radio is occupied).
        let sensed_busy = self.medium.busy_until(node, self.now);
        if let Some(busy_end) = own_busy.into_iter().chain(sensed_busy).max() {
            let cw = self.current[node.0]
                .as_ref()
                .map(|c| c.cw)
                .unwrap_or(self.cfg.cw_min);
            let delay = self.backoff_delay(cw);
            self.push(busy_end + delay, EventKind::TryTx { node });
            return;
        }
        // Need a frame: a retained unicast retry, or ask the protocol —
        // directly (unbounded, the historical path) or through the
        // node's bounded transmit queue.
        if self.current[node.0].is_none() {
            let polled = if self.queues.is_some() {
                match self.pump_queue(node) {
                    Pumped::Frame(frame) => Some(frame),
                    Pumped::Empty => None,
                    Pumped::Deferred(at) => {
                        // Pacer gate closed: stay Waiting and retry when
                        // the flow's inter-packet gap elapses.
                        self.push(at, EventKind::TryTx { node });
                        return;
                    }
                }
            } else {
                let mut ctx = Ctx {
                    now: self.now,
                    rng: &mut self.rng,
                    timers: std::mem::take(&mut self.scratch_timers),
                    kicks: std::mem::take(&mut self.scratch_kicks),
                };
                let polled = self.agent.poll_tx(node, &mut ctx);
                let Ctx { timers, kicks, .. } = ctx;
                self.apply_ctx(timers, kicks);
                polled
            };
            match polled {
                Some(frame) => {
                    self.current[node.0] = Some(CurrentTx {
                        frame,
                        retries: 0,
                        cw: self.cfg.cw_min,
                    });
                }
                None => {
                    self.states[node.0] = MacState::Idle;
                    return;
                }
            }
        }
        let current = self.current[node.0].as_ref().expect("frame just ensured");
        let rate = current.frame.bitrate.unwrap_or(self.cfg.bitrate);
        let bytes = current.frame.bytes;
        let air = rate.airtime(bytes);
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let frame = Frame {
            from: node,
            dst: current.frame.dst,
            bytes,
            bitrate: rate,
            payload: current.frame.payload.clone(),
        };
        // Spatial-reuse accounting: overlap with other in-air data frames.
        self.account_concurrency(node, air);
        self.medium.begin(Transmission {
            id,
            tx: node,
            start: self.now,
            end: self.now + air,
        });
        self.in_flight.insert(id, InFlight::Data { frame });
        self.states[node.0] = MacState::Transmitting;
        self.stats.tx_frames[node.0] += 1;
        self.stats.airtime[node.0] += air;
        self.push(self.now + air, EventKind::TxEnd { id });
    }

    /// Runs one transmit opportunity at `node` through its bounded
    /// queue: pump the protocol's pending frames in, then serve the
    /// head-of-line frame (unless its flow's pacer gate is closed).
    ///
    /// The fill loop stops when the protocol has nothing to send *or*
    /// on the first verdict that discards the arriving frame. Stopping
    /// at a drop is what bounds the loop: a dropped arrival is the
    /// protocol's loss signal for this opportunity, and some sources
    /// (MORE's coder) can otherwise produce frames indefinitely.
    fn pump_queue(&mut self, node: NodeId) -> Pumped<A::Payload> {
        let Some(mut layer) = self.queues.take() else {
            return Pumped::Empty; // caller checked `queues.is_some()`
        };
        let QueueLayer {
            nodes,
            rng: qrng,
            pacers,
            pacer_src,
            ..
        } = &mut layer;
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            timers: std::mem::take(&mut self.scratch_timers),
            kicks: std::mem::take(&mut self.scratch_kicks),
        };
        let result = if let Some(q) = nodes.get_mut(node.0) {
            // Fill: move protocol frames into the queue until it has
            // nothing more or the discipline discards an arrival.
            while let Some(frame) = self.agent.poll_tx(node, &mut ctx) {
                let key = q.disc.classify(node, frame.flow);
                match q.disc.offer(key, self.now, qrng) {
                    QueueVerdict::Accept => {
                        q.frames.push_back(frame);
                        if let Some(hw) = self.stats.queue_depth_hw.get_mut(node.0) {
                            *hw = (*hw).max(q.frames.len());
                        }
                    }
                    QueueVerdict::DropIncoming(cause) => {
                        self.stats.count_queue_drop(node.0, frame.flow, cause);
                        if let Some(p) = frame.flow.and_then(|f| pacers.get_mut(&f)) {
                            p.on_loss(self.now);
                        }
                        self.agent
                            .on_queue_drop(node, frame.payload, cause, &mut ctx);
                        break;
                    }
                    QueueVerdict::DropMatched { index } => {
                        // CHOKe: the arrival and the matched queued frame
                        // both go. One congestion event for the pacer (the
                        // matched pair shares a flow key), two drop counts.
                        let cause = DropCause::FlowMatch;
                        self.stats.count_queue_drop(node.0, frame.flow, cause);
                        if let Some(p) = frame.flow.and_then(|f| pacers.get_mut(&f)) {
                            p.on_loss(self.now);
                        }
                        if let Some(victim) = q.frames.remove(index) {
                            self.stats.count_queue_drop(node.0, victim.flow, cause);
                            self.agent
                                .on_queue_drop(node, victim.payload, cause, &mut ctx);
                        }
                        self.agent
                            .on_queue_drop(node, frame.payload, cause, &mut ctx);
                        break;
                    }
                }
            }
            // Serve: head-of-line frame, gated by its flow's pacer when
            // this node is the paced source.
            match q.frames.front().map(|h| h.flow) {
                None => Pumped::Empty,
                Some(flow) => {
                    let mut deferred = None;
                    if let Some(f) = flow {
                        if pacer_src.get(&f) == Some(&node) {
                            if let Some(p) = pacers.get_mut(&f) {
                                match p.gate(self.now) {
                                    Some(release) => deferred = Some(release),
                                    None => p.on_send(self.now),
                                }
                            }
                        }
                    }
                    match deferred {
                        Some(at) => Pumped::Deferred(at),
                        None => {
                            q.disc.dequeue(self.now);
                            match q.frames.pop_front() {
                                Some(frame) => Pumped::Frame(frame),
                                None => Pumped::Empty, // unreachable: front() was Some
                            }
                        }
                    }
                }
            }
        } else {
            Pumped::Empty
        };
        let Ctx { timers, kicks, .. } = ctx;
        self.queues = Some(layer);
        self.apply_ctx(timers, kicks);
        result
    }

    fn account_concurrency(&mut self, node: NodeId, air: Time) {
        let overlap = self.medium.overlap_with(node, self.now, self.now + air);
        self.stats.concurrent_airtime += overlap;
    }

    fn on_tx_end(&mut self, id: u64) {
        let Some(in_flight) = self.in_flight.remove(&id) else {
            return;
        };
        // Let the channel evolve to the frame's end before judging it.
        self.channel.tick(self.now);
        let (mut collisions, mut captures) = (0, 0);
        let mut receivers = std::mem::take(&mut self.scratch_receivers);
        self.medium.evaluate_reception_into(
            id,
            self.channel.as_ref(),
            &self.cfg,
            &mut self.rng,
            &mut collisions,
            &mut captures,
            &mut receivers,
        );
        self.stats.collisions += collisions;
        self.stats.captures += captures;

        match in_flight {
            InFlight::Data { frame } => {
                let sender = frame.from;
                // Deliver to the protocol at each receiver. One Ctx per
                // receiver, applied in order: backoff RNG draws triggered
                // by a receiver's kicks must happen before the next
                // receiver's callback, exactly as they always have.
                for &r in &receivers {
                    self.stats.rx_frames[r.0] += 1;
                    let mut ctx = Ctx {
                        now: self.now,
                        rng: &mut self.rng,
                        timers: std::mem::take(&mut self.scratch_timers),
                        kicks: std::mem::take(&mut self.scratch_kicks),
                    };
                    self.agent.on_receive(r, &frame, &mut ctx);
                    let Ctx { timers, kicks, .. } = ctx;
                    self.apply_ctx(timers, kicks);
                }
                match frame.dst {
                    None => {
                        // Broadcast: done immediately. The frame now holds
                        // the last engine-side reference to the payload
                        // (the sender's retained copy was cleared above),
                        // so hand it back to the agent for buffer reuse.
                        self.current[sender.0] = None;
                        self.finish_tx(sender, TxOutcome::Broadcast);
                        self.agent.recycle(frame.payload);
                    }
                    Some(dst) => {
                        if receivers.contains(&dst) {
                            // Receiver answers with a MAC ACK after SIFS.
                            self.push(
                                self.now + self.cfg.sifs_us,
                                EventKind::StartMacAck {
                                    node: dst,
                                    data_id: id,
                                },
                            );
                        }
                        // Await the ACK either way; timeout covers loss.
                        self.ack_seq[sender.0] += 1;
                        let seq = self.ack_seq[sender.0];
                        self.states[sender.0] = MacState::AwaitAck { seq };
                        let wait = self.cfg.sifs_us
                            + self.cfg.ack_bitrate.airtime(self.cfg.mac_ack_bytes)
                            + 2 * self.cfg.slot_us;
                        self.push(self.now + wait, EventKind::AckTimeout { node: sender, seq });
                    }
                }
            }
            InFlight::MacAck { to } => {
                // Did the data sender hear the ACK? Accepting a "stale" ACK
                // for a retransmission of the same frame is semantically
                // correct — the receiver did get that frame's contents.
                if receivers.contains(&to) {
                    if let MacState::AwaitAck { .. } = self.states[to.0] {
                        let retries = self.current[to.0].as_ref().map(|c| c.retries).unwrap_or(0);
                        self.current[to.0] = None;
                        self.finish_tx(to, TxOutcome::Acked { retries });
                    }
                }
            }
        }
        self.scratch_receivers = receivers;
    }

    fn on_start_mac_ack(&mut self, node: NodeId, data_id: u64) {
        // Half-duplex: if this node started transmitting in the meantime,
        // the ACK is silently skipped (the sender will retry).
        if matches!(self.states[node.0], MacState::Transmitting) {
            return;
        }
        let Some(data) = self.medium.transmission(data_id) else {
            return;
        };
        let to = data.tx;
        let air = self.cfg.ack_bitrate.airtime(self.cfg.mac_ack_bytes);
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.medium.begin(Transmission {
            id,
            tx: node,
            start: self.now,
            end: self.now + air,
        });
        self.in_flight.insert(id, InFlight::MacAck { to });
        // The ACK briefly occupies this node's radio. If the node was
        // Waiting, its pending TryTx will see the medium busy (or its own
        // half-duplex conflict resolves against it) and re-defer naturally.
        self.stats.tx_mac_acks[node.0] += 1;
        self.stats.airtime[node.0] += air;
        self.push(self.now + air, EventKind::TxEnd { id });
    }

    fn on_ack_timeout(&mut self, node: NodeId, seq: u64) {
        let MacState::AwaitAck { seq: cur } = self.states[node.0] else {
            return;
        };
        if cur != seq {
            return; // stale
        }
        let Some(current) = self.current[node.0].as_mut() else {
            // ACK arrived and cleared the frame between events.
            self.states[node.0] = MacState::Waiting;
            let d = self.backoff_delay(self.cfg.cw_min);
            self.push(self.now + d, EventKind::TryTx { node });
            return;
        };
        current.retries += 1;
        self.stats.retries += 1;
        if current.retries > self.cfg.retry_limit {
            let retries = current.retries;
            self.current[node.0] = None;
            self.stats.unicast_failures += 1;
            self.finish_tx(node, TxOutcome::Failed { retries });
        } else {
            current.cw = (current.cw * 2 + 1).min(self.cfg.cw_max);
            let cw = current.cw;
            self.states[node.0] = MacState::Waiting;
            let d = self.backoff_delay(cw);
            self.push(self.now + d, EventKind::TryTx { node });
        }
    }

    /// Reports an outcome and re-arms the MAC for the next frame.
    fn finish_tx(&mut self, node: NodeId, outcome: TxOutcome) {
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            timers: std::mem::take(&mut self.scratch_timers),
            kicks: std::mem::take(&mut self.scratch_kicks),
        };
        self.agent.on_tx_done(node, outcome, &mut ctx);
        let Ctx { timers, kicks, .. } = ctx;
        self.apply_ctx(timers, kicks);
        self.states[node.0] = MacState::Waiting;
        let d = self.backoff_delay(self.cfg.cw_min);
        self.push(self.now + d, EventKind::TryTx { node });
    }
}

impl<A: FlowAgent> Simulator<A> {
    /// [`Simulator::run_until`] with the traffic queue interleaved: each
    /// action scheduled via [`Simulator::schedule_traffic`] fires at its
    /// timestamp, before engine events due at the same instant. `stop` is
    /// only honoured while no traffic action ≤ `deadline` is pending, so a
    /// run cannot end in the quiet gap before the next arrival.
    ///
    /// With an empty traffic queue this **is** `run_until` — same events,
    /// same RNG stream, same exit time — which is what keeps static
    /// workloads byte-identical to the pre-traffic-model engine.
    pub fn run_with_traffic(&mut self, deadline: Time, mut stop: impl FnMut(&A) -> bool) -> Time {
        if self.traffic.is_empty() {
            return self.run_until(deadline, stop);
        }
        // Descending (time, seq): the earliest action sits at the back.
        self.traffic.sort_by_key(|&(t, s, _)| Reverse((t, s)));
        // Starts are applied earliest-first, so their times form a stack.
        self.start_times_desc = self
            .traffic
            .iter()
            .filter(|(_, _, a)| matches!(a, TrafficAction::Start(_)))
            .map(|&(t, _, _)| t)
            .collect();
        loop {
            // Apply every traffic action due before the next engine event.
            let next_engine = self.queue.peek().map(|Reverse((t, _, _))| *t);
            let traffic_due = match (self.traffic.last(), next_engine) {
                (Some(&(t, _, _)), Some(e)) => t <= e && t <= deadline,
                (Some(&(t, _, _)), None) => t <= deadline,
                (None, _) => false,
            };
            if traffic_due {
                let (at, _, action) = self.traffic.pop().expect("traffic_due checked");
                self.now = at;
                self.apply_traffic(action);
                if self.traffic_drained(deadline) && stop(&self.agent) {
                    break;
                }
                continue;
            }
            let Some(Reverse((at, _, ev))) = self.queue.pop() else {
                // No engine events and no traffic due: time stops at the
                // deadline if anything remains scheduled beyond it.
                if !self.traffic.is_empty() {
                    self.now = deadline;
                }
                break;
            };
            if at > deadline {
                self.push_back(at, ev);
                self.now = deadline;
                break;
            }
            self.now = at;
            self.stats.events += 1;
            self.dispatch(ev);
            if self.traffic_drained(deadline) && stop(&self.agent) {
                break;
            }
            if self.stats.events.is_multiple_of(4096) {
                self.medium.prune(self.now);
            }
        }
        self.now
    }

    /// No flow *arrival* is still due before `deadline`. Pending `Stop`s
    /// do not gate the stop condition: a departure cannot un-resolve a
    /// flow, so waiting for one would only inflate the reported run time
    /// past the instant everything finished.
    fn traffic_drained(&self, deadline: Time) -> bool {
        self.pending_starts == 0 || self.start_times_desc.last().is_none_or(|&t| t > deadline)
    }

    fn apply_traffic(&mut self, action: TrafficAction) {
        match action {
            TrafficAction::Start(desc) => {
                self.pending_starts -= 1;
                self.start_times_desc.pop();
                let src = desc.src;
                let index = self.agent.add_flow(&desc);
                // Registry-built protocols assign flow id = index + 1,
                // so dynamic arrivals can be auto-paced by id.
                if let Some(cfg) = self.queues.as_ref().and_then(|l| l.auto_pace) {
                    self.pace_flow(index as u32 + 1, src, cfg);
                }
                self.kick_at(src, self.now);
            }
            TrafficAction::Stop(index) => self.agent.end_flow(index),
        }
    }
}
