//! Per-node transmit queues and active queue management (AQM).
//!
//! The paper evaluates MORE against real 802.11 interfaces, whose driver
//! queues drop packets under overload; the simulator's nodes historically
//! had no queue at all, so saturation outcomes were artifacts of
//! event-scheduling order rather than policy. This module is the fourth
//! trait-based extension surface (after `ChannelModel`, the traffic
//! models, and the protocol registry): a [`QueueDiscipline`] decides the
//! fate of every frame a protocol hands its MAC, behind a serializable
//! [`QueueSpec`] that names the classic disciplines —
//!
//! * [`QueueSpec::Unbounded`] — no queue (the pre-queue engine,
//!   byte-identical by construction: the engine skips this module
//!   entirely);
//! * [`QueueSpec::DropTail`] — a fixed-capacity FIFO that drops
//!   arrivals when full;
//! * [`QueueSpec::Red`] — Random Early Detection: an EWMA of the queue
//!   depth marks (drops) arrivals probabilistically between two
//!   thresholds, absorbing bursts while signalling persistent overload
//!   early;
//! * [`QueueSpec::Choke`] — CHOKe: RED plus a random peek — each
//!   arrival is compared against a randomly chosen queued frame, and a
//!   flow match drops *both*, penalizing unresponsive heavy flows
//!   without per-flow state.
//!
//! All AQM randomness (RED's marking draws, CHOKe's peek) runs on a
//! dedicated ChaCha8 stream derived as `seed ^` [`QUEUE_STREAM`], so
//! queue decisions never perturb the engine's main RNG stream.
//!
//! On top of the queue sits a minimal end-to-end congestion controller:
//! an [`AimdPacer`] per opted-in flow throttles the *source's* dequeue
//! rate with additive increase / multiplicative decrease keyed on queue
//! losses anywhere along the flow's path (an idealized, zero-delay loss
//! signal — the simulator's stand-in for a transport's feedback loop).

use crate::Time;
use mesh_topology::NodeId;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

pub use mesh_topology::streams::QUEUE_STREAM;

/// Why a frame was dropped at a transmit queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// The queue was at capacity when the frame arrived (tail drop).
    Overflow,
    /// RED/CHOKe marked the arrival early (EWMA depth past a threshold).
    Early,
    /// CHOKe matched the arrival against a random queued frame of the
    /// same flow and dropped both.
    FlowMatch,
}

impl DropCause {
    /// Stable lower-case name, used in logs and drop taxonomies.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Overflow => "overflow",
            DropCause::Early => "early",
            DropCause::FlowMatch => "flow_match",
        }
    }
}

/// What a discipline decided about an arriving frame.
///
/// The engine owns the actual frame storage (a FIFO per node); the
/// discipline keeps a parallel mirror of flow keys. The verdict tells
/// the engine how to keep the two in sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueVerdict {
    /// Append the arrival at the tail (the discipline has already
    /// recorded its key).
    Accept,
    /// Discard the arrival; the queue is unchanged.
    DropIncoming(DropCause),
    /// CHOKe: discard the arrival *and* the queued frame at `index`
    /// (the discipline has already removed its own mirror entry).
    DropMatched {
        /// Position of the matched victim in the node's FIFO.
        index: usize,
    },
}

/// A per-node transmit queue policy.
///
/// One instance manages one node's FIFO. The engine stores the frames;
/// the discipline sees only a *flow key* per frame (via
/// [`QueueDiscipline::classify`]) and mirrors the FIFO's keys
/// internally, so implementations stay payload-agnostic and object-safe.
///
/// Contract:
/// * [`QueueDiscipline::offer`] is called once per arriving frame; on
///   [`QueueVerdict::Accept`] the discipline must have appended the key
///   to its mirror, on [`QueueVerdict::DropMatched`] it must have
///   removed the victim's mirror entry.
/// * [`QueueDiscipline::dequeue`] is called when the engine serves the
///   head-of-line frame; the discipline pops its mirror's head.
/// * [`QueueDiscipline::depth`] returns the mirror length, which must
///   always equal the engine-side FIFO length.
/// * All randomness must come from the `rng` argument (the dedicated
///   [`QUEUE_STREAM`] ChaCha8 stream), never from ambient sources.
///
/// # Examples
///
/// A custom discipline that admits everything (an explicit unbounded
/// FIFO — useful as a probe that observes arrivals without policy):
///
/// ```
/// use mesh_sim::queue::{QueueDiscipline, QueueVerdict};
/// use mesh_sim::Time;
/// use rand_chacha::ChaCha8Rng;
///
/// #[derive(Default)]
/// struct Admit { keys: std::collections::VecDeque<u64> }
///
/// impl QueueDiscipline for Admit {
///     fn offer(&mut self, key: u64, _now: Time, _rng: &mut ChaCha8Rng) -> QueueVerdict {
///         self.keys.push_back(key);
///         QueueVerdict::Accept
///     }
///     fn dequeue(&mut self, _now: Time) { self.keys.pop_front(); }
///     fn depth(&self) -> usize { self.keys.len() }
/// }
///
/// let mut q = Admit::default();
/// let mut rng = <ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
/// assert_eq!(q.offer(7, 0, &mut rng), QueueVerdict::Accept);
/// assert_eq!(q.depth(), 1);
/// q.dequeue(0);
/// assert_eq!(q.depth(), 0);
/// ```
pub trait QueueDiscipline: Send {
    /// Maps a frame to the flow key the discipline reasons about.
    ///
    /// The default uses the protocol-declared flow id when present and
    /// otherwise buckets per sending node (control frames of one node
    /// share a key but never match a data flow).
    fn classify(&self, node: NodeId, flow: Option<u32>) -> u64 {
        match flow {
            Some(f) => f as u64,
            None => (1u64 << 32) | node.0 as u64,
        }
    }

    /// Decides the fate of a frame with flow key `key` arriving at time
    /// `now`.
    fn offer(&mut self, key: u64, now: Time, rng: &mut ChaCha8Rng) -> QueueVerdict;

    /// The engine served the head-of-line frame.
    fn dequeue(&mut self, now: Time);

    /// Frames currently queued (excluding the one in service at the MAC).
    fn depth(&self) -> usize;
}

/// Serializable description of a node's transmit queue policy.
///
/// The engine-facing mirror of [`crate::channel::ChannelSpec`]: a small
/// value type the scenario layer can store, sweep over, and label, with
/// [`QueueSpec::build_node`] producing the live discipline per node.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum QueueSpec {
    /// No transmit queue — the pre-queue engine, byte-for-byte. The MAC
    /// polls the protocol for exactly one frame per transmit
    /// opportunity and nothing is ever dropped before the air.
    #[default]
    Unbounded,
    /// Fixed-capacity FIFO; arrivals beyond `capacity` are tail-dropped.
    DropTail {
        /// Queue capacity in frames.
        capacity: usize,
    },
    /// Random Early Detection (EWMA average-depth marking).
    Red {
        /// Hard queue capacity in frames (overflow drops past it).
        capacity: usize,
        /// No early drops while the EWMA depth is below this.
        min_th: f64,
        /// All arrivals drop once the EWMA depth reaches this.
        max_th: f64,
        /// Early-drop probability as the EWMA depth reaches `max_th`.
        max_p: f64,
        /// EWMA weight per arrival (classic RED uses ~0.002).
        weight: f64,
    },
    /// CHOKe: RED plus random-peek flow matching — past `min_th`, each
    /// arrival is compared with one uniformly chosen queued frame and a
    /// flow match drops both, no per-flow state required.
    Choke {
        /// Hard queue capacity in frames.
        capacity: usize,
        /// No peek/early drops while the EWMA depth is below this.
        min_th: f64,
        /// All (unmatched) arrivals drop once the EWMA depth reaches this.
        max_th: f64,
        /// Early-drop probability as the EWMA depth reaches `max_th`.
        max_p: f64,
        /// EWMA weight per arrival.
        weight: f64,
    },
}

impl QueueSpec {
    /// A DropTail queue of `capacity` frames.
    #[must_use]
    pub fn drop_tail(capacity: usize) -> Self {
        QueueSpec::DropTail { capacity }
    }

    /// RED with the classic parameterization for a queue of `capacity`
    /// frames: thresholds at 25% / 75%, `max_p` 0.1, weight 0.002.
    #[must_use]
    pub fn red(capacity: usize) -> Self {
        QueueSpec::Red {
            capacity,
            min_th: capacity as f64 * 0.25,
            max_th: capacity as f64 * 0.75,
            max_p: 0.1,
            weight: 0.002,
        }
    }

    /// CHOKe with the same default parameterization as [`QueueSpec::red`].
    #[must_use]
    pub fn choke(capacity: usize) -> Self {
        QueueSpec::Choke {
            capacity,
            min_th: capacity as f64 * 0.25,
            max_th: capacity as f64 * 0.75,
            max_p: 0.1,
            weight: 0.002,
        }
    }

    /// No queue configured — the byte-compat default.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, QueueSpec::Unbounded)
    }

    /// Short comma-free label naming the policy and its parameters, used
    /// in run records and sweep axes.
    pub fn label(&self) -> String {
        match self {
            QueueSpec::Unbounded => "unbounded".to_string(),
            QueueSpec::DropTail { capacity } => format!("droptail(cap={capacity})"),
            QueueSpec::Red {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            } => format!("red(cap={capacity};min={min_th};max={max_th};p={max_p};w={weight})"),
            QueueSpec::Choke {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            } => format!("choke(cap={capacity};min={min_th};max={max_th};p={max_p};w={weight})"),
        }
    }

    /// Checks the parameters, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        let aqm = |capacity: usize, min_th: f64, max_th: f64, max_p: f64, weight: f64| {
            if capacity == 0 {
                return Err("queue capacity must be at least 1".to_string());
            }
            if !(min_th >= 0.0 && max_th > min_th && max_th <= capacity as f64) {
                return Err(format!(
                    "thresholds must satisfy 0 <= min_th < max_th <= capacity \
                     (got min_th={min_th} max_th={max_th} capacity={capacity})"
                ));
            }
            if !(max_p > 0.0 && max_p <= 1.0) {
                return Err(format!("max_p must be in (0, 1], got {max_p}"));
            }
            if !(weight > 0.0 && weight <= 1.0) {
                return Err(format!("EWMA weight must be in (0, 1], got {weight}"));
            }
            Ok(())
        };
        match *self {
            QueueSpec::Unbounded => Ok(()),
            QueueSpec::DropTail { capacity } => {
                if capacity == 0 {
                    Err("queue capacity must be at least 1".to_string())
                } else {
                    Ok(())
                }
            }
            QueueSpec::Red {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            }
            | QueueSpec::Choke {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            } => aqm(capacity, min_th, max_th, max_p, weight),
        }
    }

    /// Builds one node's live discipline, or `None` for
    /// [`QueueSpec::Unbounded`] (the engine then bypasses the queue
    /// layer entirely).
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid — call [`QueueSpec::validate`]
    /// first for an error value.
    pub fn build_node(&self) -> Option<Box<dyn QueueDiscipline>> {
        if let Err(e) = self.validate() {
            // xtask: allow(panic_path) -- documented "# Panics" contract, mirroring ChannelSpec::build: validate() is the error-value path
            panic!("invalid QueueSpec: {e}");
        }
        match *self {
            QueueSpec::Unbounded => None,
            QueueSpec::DropTail { capacity } => Some(Box::new(DropTail {
                capacity,
                keys: VecDeque::new(),
            })),
            QueueSpec::Red {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            } => Some(Box::new(RedQueue {
                core: AqmCore {
                    capacity,
                    min_th,
                    max_th,
                    max_p,
                    weight,
                    avg: 0.0,
                    keys: VecDeque::new(),
                },
            })),
            QueueSpec::Choke {
                capacity,
                min_th,
                max_th,
                max_p,
                weight,
            } => Some(Box::new(ChokeQueue {
                core: AqmCore {
                    capacity,
                    min_th,
                    max_th,
                    max_p,
                    weight,
                    avg: 0.0,
                    keys: VecDeque::new(),
                },
            })),
        }
    }
}

/// Fixed-capacity FIFO with tail drop.
struct DropTail {
    capacity: usize,
    keys: VecDeque<u64>,
}

impl QueueDiscipline for DropTail {
    fn offer(&mut self, key: u64, _now: Time, _rng: &mut ChaCha8Rng) -> QueueVerdict {
        if self.keys.len() >= self.capacity {
            return QueueVerdict::DropIncoming(DropCause::Overflow);
        }
        self.keys.push_back(key);
        QueueVerdict::Accept
    }

    fn dequeue(&mut self, _now: Time) {
        self.keys.pop_front();
    }

    fn depth(&self) -> usize {
        self.keys.len()
    }
}

/// Shared RED machinery: the key mirror plus the EWMA depth estimate.
struct AqmCore {
    capacity: usize,
    min_th: f64,
    max_th: f64,
    max_p: f64,
    weight: f64,
    avg: f64,
    keys: VecDeque<u64>,
}

impl AqmCore {
    /// Folds an arrival into the EWMA depth estimate. Called exactly
    /// once per `offer`, before any verdict is taken.
    fn arrive(&mut self) {
        self.avg = (1.0 - self.weight) * self.avg + self.weight * self.keys.len() as f64;
    }

    /// The RED verdict for an arrival (overflow / early-drop / admit)
    /// at the current EWMA, without touching the mirror.
    fn red_decision(&mut self, rng: &mut ChaCha8Rng) -> Option<DropCause> {
        if self.keys.len() >= self.capacity {
            return Some(DropCause::Overflow);
        }
        if self.avg >= self.max_th {
            return Some(DropCause::Early);
        }
        if self.avg >= self.min_th {
            let p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
            if rng.gen::<f64>() < p {
                return Some(DropCause::Early);
            }
        }
        None
    }
}

/// Random Early Detection.
struct RedQueue {
    core: AqmCore,
}

impl QueueDiscipline for RedQueue {
    fn offer(&mut self, key: u64, _now: Time, rng: &mut ChaCha8Rng) -> QueueVerdict {
        self.core.arrive();
        if let Some(cause) = self.core.red_decision(rng) {
            return QueueVerdict::DropIncoming(cause);
        }
        self.core.keys.push_back(key);
        QueueVerdict::Accept
    }

    fn dequeue(&mut self, _now: Time) {
        self.core.keys.pop_front();
    }

    fn depth(&self) -> usize {
        self.core.keys.len()
    }
}

/// CHOKe: RED plus the random-peek flow match.
struct ChokeQueue {
    core: AqmCore,
}

impl QueueDiscipline for ChokeQueue {
    fn offer(&mut self, key: u64, _now: Time, rng: &mut ChaCha8Rng) -> QueueVerdict {
        // The peek happens past min_th, *before* the RED coin flip — the
        // CHOKe paper's ordering. Draw order per arrival is fixed:
        // EWMA update, [peek], [marking draw].
        self.core.arrive();
        let len = self.core.keys.len();
        if len > 0 && self.core.avg >= self.core.min_th {
            let idx = rng.gen_range(0..len);
            if self.core.keys.get(idx).copied() == Some(key) {
                // Flow match: drop the queued victim and the arrival.
                self.core.keys.remove(idx);
                return QueueVerdict::DropMatched { index: idx };
            }
        }
        if let Some(cause) = self.core.red_decision(rng) {
            return QueueVerdict::DropIncoming(cause);
        }
        self.core.keys.push_back(key);
        QueueVerdict::Accept
    }

    fn dequeue(&mut self, _now: Time) {
        self.core.keys.pop_front();
    }

    fn depth(&self) -> usize {
        self.core.keys.len()
    }
}

/// Parameters of the AIMD source pacer (see [`AimdPacer`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AimdConfig {
    /// Pacing rate a flow starts at, packets per second.
    pub initial_pps: f64,
    /// Floor the rate never decreases below.
    pub min_pps: f64,
    /// Cap the rate never increases past.
    pub max_pps: f64,
    /// Additive increase: packets-per-second added per loss-free second.
    pub increase_pps_per_s: f64,
    /// Multiplicative decrease factor applied per loss signal.
    pub decrease: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial_pps: 20.0,
            min_pps: 1.0,
            max_pps: 2000.0,
            increase_pps_per_s: 10.0,
            decrease: 0.5,
        }
    }
}

impl AimdConfig {
    /// Checks the parameters, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.min_pps > 0.0 && self.min_pps <= self.initial_pps) {
            return Err(format!(
                "need 0 < min_pps <= initial_pps (got min={} initial={})",
                self.min_pps, self.initial_pps
            ));
        }
        if self.max_pps.is_nan() || self.initial_pps > self.max_pps {
            return Err(format!(
                "need initial_pps <= max_pps (got initial={} max={})",
                self.initial_pps, self.max_pps
            ));
        }
        if self.increase_pps_per_s.is_nan() || self.increase_pps_per_s < 0.0 {
            return Err(format!(
                "additive increase must be non-negative, got {}",
                self.increase_pps_per_s
            ));
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err(format!(
                "multiplicative decrease must be in (0, 1), got {}",
                self.decrease
            ));
        }
        Ok(())
    }

    /// Short comma-free label for fingerprints and logs.
    pub fn label(&self) -> String {
        format!(
            "aimd(i={};min={};max={};a={};b={})",
            self.initial_pps, self.min_pps, self.max_pps, self.increase_pps_per_s, self.decrease
        )
    }
}

/// The per-flow source pacer: a token-less AIMD rate controller.
///
/// The rate increases additively with loss-free simulated time (applied
/// lazily — no timer events, so pacing stays free when the flow is
/// idle) and halves (by [`AimdConfig::decrease`]) on every queue-loss
/// signal. The engine gates the *source node's* dequeue of the flow's
/// frames on [`AimdPacer::gate`] and reports sends/losses back; the
/// controller itself is pure arithmetic and fully deterministic.
#[derive(Clone, Debug)]
pub struct AimdPacer {
    cfg: AimdConfig,
    rate_pps: f64,
    next_release: Time,
    last_update: Time,
}

impl AimdPacer {
    /// A pacer starting at [`AimdConfig::initial_pps`], ready to send.
    #[must_use]
    pub fn new(cfg: AimdConfig) -> Self {
        AimdPacer {
            cfg,
            rate_pps: cfg.initial_pps,
            next_release: 0,
            last_update: 0,
        }
    }

    /// Lazily applies the additive increase accumulated since the last
    /// rate touch.
    fn refresh(&mut self, now: Time) {
        if now > self.last_update {
            let dt_s = (now - self.last_update) as f64 / crate::SEC as f64;
            self.rate_pps =
                (self.rate_pps + self.cfg.increase_pps_per_s * dt_s).min(self.cfg.max_pps);
            self.last_update = now;
        }
    }

    /// May the flow's next frame leave now? Returns `None` when clear to
    /// send, or `Some(release_time)` to try again at that instant.
    pub fn gate(&mut self, now: Time) -> Option<Time> {
        self.refresh(now);
        (now < self.next_release).then_some(self.next_release)
    }

    /// A frame of the flow left the source: arms the inter-packet gap.
    pub fn on_send(&mut self, now: Time) {
        self.refresh(now);
        let gap_us = (crate::SEC as f64 / self.rate_pps).ceil().max(1.0) as Time;
        self.next_release = now + gap_us;
    }

    /// A frame of the flow was lost at a queue: multiplicative decrease.
    pub fn on_loss(&mut self, now: Time) {
        self.refresh(now);
        self.rate_pps = (self.rate_pps * self.cfg.decrease).max(self.cfg.min_pps);
    }

    /// The current pacing rate, packets per second.
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed ^ QUEUE_STREAM)
    }

    #[test]
    fn droptail_admits_to_capacity_then_drops() {
        let spec = QueueSpec::drop_tail(3);
        let mut q = spec.build_node().expect("bounded");
        let mut r = rng(1);
        for _ in 0..3 {
            assert_eq!(q.offer(1, 0, &mut r), QueueVerdict::Accept);
        }
        assert_eq!(
            q.offer(1, 0, &mut r),
            QueueVerdict::DropIncoming(DropCause::Overflow)
        );
        assert_eq!(q.depth(), 3);
        q.dequeue(0);
        assert_eq!(q.offer(2, 0, &mut r), QueueVerdict::Accept);
    }

    #[test]
    fn red_drops_early_under_sustained_load() {
        // Weight 1.0 makes the EWMA track the instantaneous depth, so
        // the early-drop region is reached deterministically.
        let spec = QueueSpec::Red {
            capacity: 10,
            min_th: 2.0,
            max_th: 6.0,
            max_p: 1.0,
            weight: 1.0,
        };
        let mut q = spec.build_node().expect("bounded");
        let mut r = rng(2);
        let mut early = 0;
        for _ in 0..50 {
            match q.offer(1, 0, &mut r) {
                QueueVerdict::DropIncoming(DropCause::Early) => early += 1,
                QueueVerdict::DropIncoming(DropCause::Overflow) => {}
                QueueVerdict::Accept => {}
                v => panic!("unexpected verdict {v:?}"),
            }
        }
        assert!(early > 0, "RED never dropped early");
        assert!(
            q.depth() < 10,
            "RED should hold the queue short of capacity"
        );
    }

    #[test]
    fn choke_matches_the_dominant_flow() {
        let spec = QueueSpec::Choke {
            capacity: 20,
            min_th: 1.0,
            max_th: 20.0,
            max_p: 0.0001,
            weight: 1.0,
        };
        let mut q = spec.build_node().expect("bounded");
        let mut r = rng(3);
        let mut matched = 0;
        // One flow floods; CHOKe's random peek must eventually match it.
        for _ in 0..40 {
            match q.offer(7, 0, &mut r) {
                QueueVerdict::DropMatched { index } => {
                    matched += 1;
                    assert!(index <= q.depth(), "victim index out of range");
                }
                QueueVerdict::Accept | QueueVerdict::DropIncoming(_) => {}
            }
        }
        assert!(matched > 0, "CHOKe never matched the flooding flow");
    }

    #[test]
    fn choke_never_matches_across_flows() {
        let spec = QueueSpec::Choke {
            capacity: 8,
            min_th: 0.0,
            max_th: 8.0,
            max_p: 0.0001,
            weight: 1.0,
        };
        let mut q = spec.build_node().expect("bounded");
        let mut r = rng(4);
        // Alternating distinct flows: every queued key differs from the
        // arrival, so DropMatched must never fire.
        for i in 0..8u64 {
            if let QueueVerdict::DropMatched { .. } = q.offer(i, 0, &mut r) {
                panic!("matched across distinct flows");
            }
        }
    }

    #[test]
    fn disciplines_are_deterministic_per_seed() {
        // Aggressive marking parameters and interleaved dequeues keep the
        // average depth inside [min_th, max_th), where verdicts actually
        // consume random draws (a full queue tail-drops deterministically).
        for spec in [
            QueueSpec::Red {
                capacity: 16,
                min_th: 2.0,
                max_th: 15.0,
                max_p: 0.5,
                weight: 0.5,
            },
            QueueSpec::Choke {
                capacity: 16,
                min_th: 2.0,
                max_th: 15.0,
                max_p: 0.5,
                weight: 0.5,
            },
        ] {
            let run = |seed: u64| {
                let mut q = spec.build_node().expect("bounded");
                let mut r = rng(seed);
                (0..200u64)
                    .map(|i| {
                        let v = format!("{:?}", q.offer(i % 3, i, &mut r));
                        if q.depth() > 6 {
                            q.dequeue(i);
                        }
                        v
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(9), run(9), "same seed must replay ({spec:?})");
            assert_ne!(run(9), run(10), "seeds must decorrelate ({spec:?})");
        }
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        assert!(QueueSpec::drop_tail(0).validate().is_err());
        assert!(QueueSpec::Red {
            capacity: 10,
            min_th: 8.0,
            max_th: 4.0,
            max_p: 0.1,
            weight: 0.002,
        }
        .validate()
        .is_err());
        assert!(QueueSpec::Choke {
            capacity: 10,
            min_th: 1.0,
            max_th: 20.0,
            max_p: 0.1,
            weight: 0.002,
        }
        .validate()
        .is_err());
        assert!(QueueSpec::red(50).validate().is_ok());
        assert!(QueueSpec::Unbounded.validate().is_ok());
    }

    #[test]
    fn labels_are_distinct_and_comma_free() {
        let specs = [
            QueueSpec::Unbounded,
            QueueSpec::drop_tail(50),
            QueueSpec::red(50),
            QueueSpec::choke(50),
        ];
        for (i, a) in specs.iter().enumerate() {
            assert!(!a.label().contains(','), "comma in {}", a.label());
            for b in &specs[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn aimd_pacer_increases_and_halves() {
        let cfg = AimdConfig {
            initial_pps: 10.0,
            min_pps: 1.0,
            max_pps: 100.0,
            increase_pps_per_s: 10.0,
            decrease: 0.5,
        };
        let mut p = AimdPacer::new(cfg);
        assert!(p.gate(0).is_none(), "fresh pacer must be open");
        p.on_send(0);
        let release = p.gate(1).expect("gap after a send");
        assert!(release > 1, "release must be in the future");
        // One loss-free second: +10 pps.
        p.refresh(crate::SEC);
        assert!((p.rate_pps() - 20.0).abs() < 1e-9, "rate {}", p.rate_pps());
        p.on_loss(crate::SEC);
        assert!((p.rate_pps() - 10.0).abs() < 1e-9);
        // Losses never push below the floor.
        for _ in 0..20 {
            p.on_loss(crate::SEC);
        }
        assert!(p.rate_pps() >= 1.0);
    }

    #[test]
    fn aimd_config_validation() {
        assert!(AimdConfig::default().validate().is_ok());
        assert!(AimdConfig {
            decrease: 1.5,
            ..AimdConfig::default()
        }
        .validate()
        .is_err());
        assert!(AimdConfig {
            min_pps: 0.0,
            ..AimdConfig::default()
        }
        .validate()
        .is_err());
    }
}
