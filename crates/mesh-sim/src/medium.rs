//! The shared wireless medium: who senses whom, who interferes at whom,
//! and which receivers decode a finished transmission.
//!
//! Sensing and interference relations are precomputed from the topology
//! and the run's channel model: any directed link (`p > 0` in the matrix,
//! or reachable under the channel per [`ChannelModel::may_reach`], either
//! direction) is both sensable and interfering; when node positions are
//! known, the carrier-sense and interference *ranges* extend those
//! relations beyond decodable links (real radios defer to, and are jammed
//! by, signals too weak to decode).
//!
//! All three relations are held as **per-node sorted neighbor lists**
//! rather than `n × n` matrices, enumerated from the topology's link set,
//! the channel's [`ReachHint`], and a spatial index over node positions —
//! so a 10k-node city mesh costs O(nodes + pairs-in-range), not O(n²),
//! to build and to query. Reception evaluation walks the transmitter's
//! reachable-candidate list instead of every node; because candidates
//! are a superset of the channel's delivery support and skipped nodes
//! consumed no randomness, runs are byte-identical to the dense scan.
//!
//! Reception is evaluated when a transmission ends:
//!
//! 1. half-duplex — a node that transmitted during any part of the frame
//!    cannot receive it;
//! 2. collision — any other transmission overlapping the frame's airtime
//!    that interferes at the receiver destroys the frame, unless capture:
//!    the frame's delivery probability exceeds `capture_ratio ×` the
//!    strongest overlapping interferer's (a delivery-probability proxy for
//!    SINR);
//! 3. loss — surviving frames are delivered with the link's *instantaneous*
//!    probability as reported by the run's [`ChannelModel`], independently
//!    per receiver (the §5.3.1 model when the channel is static).

// xtask: allow(panic_path, file) -- transmission ids are issued by this module and resolved before eviction; per-node vectors are sized to the topology.

use crate::channel::{ChannelModel, ReachHint};
use crate::{SimConfig, Time};
use mesh_topology::spatial::CellGrid;
use mesh_topology::{NodeId, Topology};
use rand::Rng;

/// Vertical meters per floor in 3D range computations (matches
/// `channel`'s constant).
const FLOOR_HEIGHT_M: f64 = 10.0;

/// A transmission on the air (or recently finished).
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Engine-assigned transmission id.
    pub id: u64,
    /// The transmitting node.
    pub tx: NodeId,
    /// Airtime start, µs.
    pub start: Time,
    /// Airtime end, µs.
    pub end: Time,
}

/// Precomputed radio relations plus the set of in-flight transmissions.
#[derive(Clone, Debug)]
#[must_use]
pub struct Medium {
    n: usize,
    /// `sense[a]`: sorted ids whose MACs defer to a transmission by `a`.
    sense: Vec<Vec<u32>>,
    /// `interfere[a]`: sorted ids at which a transmission by `a` collides
    /// with arriving frames.
    interfere: Vec<Vec<u32>>,
    /// `reach[t]`: sorted reception candidates for transmitter `t` — a
    /// superset of every node the channel can deliver `t`'s frames to.
    /// `None` when the channel promises no structure
    /// ([`ReachHint::AllPairs`]): every node is then a candidate.
    reach: Option<Vec<Vec<u32>>>,
    /// All transmissions whose `end` is within the retention horizon.
    active: Vec<Transmission>,
    horizon: Time,
    /// Scratch: indices into `active` of the transmissions overlapping the
    /// frame being judged, computed once per [`Medium::evaluate_reception_into`]
    /// call instead of once per (receiver × transmission) pair.
    overlap_idx: Vec<usize>,
}

impl Medium {
    /// Builds the medium for `topo` under `cfg`, with `chan` supplying
    /// reachability beyond the static matrix (matrix-backed channels add
    /// nothing; shadowing extends the relations to every pair that could
    /// plausibly decode).
    pub fn new(topo: &Topology, cfg: &SimConfig, chan: &dyn ChannelModel) -> Self {
        let n = topo.n();
        // The symmetric "linked" relation: some direction of the pair
        // carries matrix delivery or channel reachability. Enumerated
        // from the topology's link set plus the channel's reach hint; the
        // historical O(n²) pair scan remains only for channels that
        // promise no structure.
        let hint = chan.reach_hint();
        let mut linked: Vec<Vec<u32>> = vec![Vec::new(); n];
        match hint {
            ReachHint::MatrixOnly | ReachHint::WithinDistance(_) => {
                for l in topo.links() {
                    linked[l.from.0].push(l.to.0 as u32);
                    linked[l.to.0].push(l.from.0 as u32);
                }
                if let ReachHint::WithinDistance(d) = hint {
                    let pos = topo
                        .positions()
                        .expect("WithinDistance reach hint requires node positions");
                    let grid = CellGrid::from_positions(pos, d);
                    for (a, row) in linked.iter_mut().enumerate() {
                        grid.for_each_candidate(pos[a].x, pos[a].y, d, |b| {
                            let (na, nb) = (NodeId(a), NodeId(b as usize));
                            if b as usize != a && (chan.may_reach(na, nb) || chan.may_reach(nb, na))
                            {
                                row.push(b);
                            }
                        });
                    }
                }
            }
            ReachHint::AllPairs => {
                for a in 0..n {
                    for b in (a + 1)..n {
                        let (na, nb) = (NodeId(a), NodeId(b));
                        if topo.delivery(na, nb) > 0.0
                            || topo.delivery(nb, na) > 0.0
                            || chan.may_reach(na, nb)
                            || chan.may_reach(nb, na)
                        {
                            linked[a].push(b as u32);
                            linked[b].push(a as u32);
                        }
                    }
                }
            }
        }
        for row in &mut linked {
            row.sort_unstable();
            row.dedup();
        }
        // Reception candidates per transmitter: the linked relation is a
        // superset of the channel's delivery support in either direction,
        // so it serves unchanged. With no hint the evaluator scans all
        // nodes, exactly as before.
        let reach = match hint {
            ReachHint::AllPairs => None,
            _ => Some(linked.clone()),
        };
        // Range-based extension from node positions: pairs within
        // carrier-sense range defer, pairs within interference range jam,
        // decodable or not.
        let mut sense = linked.clone();
        let mut interfere = linked;
        if let Some(pos) = topo.positions() {
            let r_max = cfg.carrier_sense_range.max(cfg.interference_range);
            if r_max > 0.0 {
                let grid = CellGrid::from_positions(pos, r_max);
                for a in 0..n {
                    grid.for_each_candidate(pos[a].x, pos[a].y, r_max, |b| {
                        let b = b as usize;
                        if b == a {
                            return;
                        }
                        let d = pos[a].distance(&pos[b], FLOOR_HEIGHT_M);
                        if d <= cfg.carrier_sense_range {
                            sense[a].push(b as u32);
                        }
                        if d <= cfg.interference_range {
                            interfere[a].push(b as u32);
                        }
                    });
                }
            }
        }
        for row in sense.iter_mut().chain(interfere.iter_mut()) {
            row.sort_unstable();
            row.dedup();
        }
        Medium {
            n,
            sense,
            interfere,
            reach,
            active: Vec::new(),
            horizon: 100 * crate::MS,
            overlap_idx: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Does a transmission by `a` keep `b` deferring?
    #[inline]
    pub fn senses(&self, a: NodeId, b: NodeId) -> bool {
        self.sense[a.0].binary_search(&(b.0 as u32)).is_ok()
    }

    /// Does a transmission by `a` interfere at receiver `r`?
    #[inline]
    pub fn interferes(&self, a: NodeId, r: NodeId) -> bool {
        self.interfere[a.0].binary_search(&(r.0 as u32)).is_ok()
    }

    /// Registers a transmission starting now.
    pub fn begin(&mut self, t: Transmission) {
        debug_assert!(t.start <= t.end);
        self.active.push(t);
    }

    /// Drops records older than the retention horizon.
    pub fn prune(&mut self, now: Time) {
        let horizon = self.horizon;
        self.active.retain(|t| t.end + horizon >= now);
    }

    /// Latest end time among transmissions currently on the air that
    /// `node` senses; `None` if the medium is idle at `node`.
    pub fn busy_until(&self, node: NodeId, now: Time) -> Option<Time> {
        self.active
            .iter()
            .filter(|t| t.start <= now && now < t.end && t.tx != node)
            .filter(|t| self.senses(t.tx, node))
            .map(|t| t.end)
            .max()
    }

    /// True when `node` senses an ongoing transmission.
    pub fn is_busy(&self, node: NodeId, now: Time) -> bool {
        self.busy_until(node, now).is_some()
    }

    /// Evaluates which nodes decode transmission `id` (call at its end).
    ///
    /// Delivery probabilities — the frame's own and each interferer's in
    /// the capture rule — are the channel model's instantaneous values at
    /// the frame's end time. Returns the receiver set; draws per-receiver
    /// Bernoulli losses from `rng`. `collisions`/`captures` counters are
    /// incremented for the stats module.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_reception(
        &mut self,
        id: u64,
        chan: &dyn ChannelModel,
        cfg: &SimConfig,
        rng: &mut impl Rng,
        collisions: &mut u64,
        captures: &mut u64,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.evaluate_reception_into(id, chan, cfg, rng, collisions, captures, &mut out);
        out
    }

    /// [`Medium::evaluate_reception`] writing the receiver set into a
    /// caller-supplied vector (cleared first), so the engine's hot path
    /// reuses one allocation per run instead of one per transmission. The
    /// transmissions overlapping the frame are gathered once into a
    /// persistent scratch and shared by the half-duplex and interferer
    /// checks of every receiver. Same receivers, same counter increments,
    /// and — critically — the same RNG draws in the same order as the
    /// per-receiver scan it replaces.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_reception_into(
        &mut self,
        id: u64,
        chan: &dyn ChannelModel,
        cfg: &SimConfig,
        rng: &mut impl Rng,
        collisions: &mut u64,
        captures: &mut u64,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let f = self
            .active
            .iter()
            .find(|t| t.id == id)
            .expect("evaluating unknown transmission")
            .clone();
        let now = f.end;
        // One pass over the air instead of two per receiver.
        let mut overlap_idx = std::mem::take(&mut self.overlap_idx);
        overlap_idx.clear();
        overlap_idx.extend(
            self.active
                .iter()
                .enumerate()
                .filter(|(_, t)| t.id != f.id && overlaps(t, &f))
                .map(|(i, _)| i),
        );
        // Walk the transmitter's reception-candidate list (sorted, so the
        // same ascending order as the historical 0..n scan). Nodes not on
        // the list have `p = 0` at every instant — the dense scan skipped
        // them before touching the RNG, so the draw sequence is
        // byte-identical.
        let mut sparse_iter;
        let mut dense_iter;
        let candidates: &mut dyn Iterator<Item = usize> = match self.reach.as_ref() {
            Some(rows) => {
                sparse_iter = rows[f.tx.0].iter().map(|&r| r as usize);
                &mut sparse_iter
            }
            None => {
                dense_iter = 0..self.n;
                &mut dense_iter
            }
        };
        for r in candidates {
            let r = NodeId(r);
            if r == f.tx {
                continue;
            }
            let p = chan.delivery(f.tx, r, now);
            if p <= 0.0 {
                continue;
            }
            // Half-duplex: r transmitting during any part of f's airtime.
            let r_was_transmitting = overlap_idx.iter().any(|&i| self.active[i].tx == r);
            if r_was_transmitting {
                continue;
            }
            // Strongest overlapping interferer at r.
            let strongest: f64 = overlap_idx
                .iter()
                .map(|&i| &self.active[i])
                .filter(|t| t.tx != r && self.interferes(t.tx, r))
                .map(|t| chan.delivery(t.tx, r, now).max(0.05))
                .fold(0.0, f64::max);
            if strongest > 0.0 {
                *collisions += 1;
                if p < cfg.capture_ratio * strongest {
                    continue; // destroyed
                }
                *captures += 1;
            }
            if rng.gen::<f64>() < p {
                out.push(r);
            }
        }
        self.overlap_idx = overlap_idx;
    }

    /// The record for a transmission id, if still retained.
    pub fn transmission(&self, id: u64) -> Option<&Transmission> {
        self.active.iter().find(|t| t.id == id)
    }

    /// Total µs of overlap between `[start, end)` and other nodes'
    /// transmissions currently on the air — the spatial-reuse indicator.
    pub fn overlap_with(&self, node: NodeId, start: Time, end: Time) -> Time {
        self.active
            .iter()
            .filter(|t| t.tx != node && t.start < end && start < t.end)
            .map(|t| t.end.min(end) - t.start.max(start))
            .sum()
    }

    /// End time of `node`'s own in-air transmission, if any (half-duplex
    /// guard for the MAC).
    pub fn own_tx_until(&self, node: NodeId, now: Time) -> Option<Time> {
        self.active
            .iter()
            .filter(|t| t.tx == node && t.start <= now && now < t.end)
            .map(|t| t.end)
            .max()
    }
}

#[inline]
fn overlaps(a: &Transmission, b: &Transmission) -> bool {
    a.start < b.end && b.start < a.end
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::channel::ChannelSpec;
    use mesh_topology::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    /// The static channel over `t`, as the engine would build it.
    fn chan(t: &Topology) -> Box<dyn ChannelModel> {
        ChannelSpec::Static.build(t, 0)
    }

    fn line5() -> Topology {
        // 30 m spacing: adjacent nodes linked, carrier sense 42 m reaches
        // one hop but not two.
        generate::line(4, 0.9, 0.0, 30.0)
    }

    #[test]
    fn sense_relations_follow_links_and_range() {
        let t = line5();
        let ch = chan(&t);
        let m = Medium::new(&t, &cfg(), ch.as_ref());
        assert!(m.senses(NodeId(0), NodeId(1))); // linked
        assert!(!m.senses(NodeId(0), NodeId(2))); // 60 m: no link, out of CS range
        assert!(!m.senses(NodeId(0), NodeId(4))); // 120 m
        assert!(m.interferes(NodeId(1), NodeId(0)));
    }

    #[test]
    fn busy_only_within_sense_range() {
        let t = line5();
        let ch = chan(&t);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 1000,
        });
        assert!(m.is_busy(NodeId(1), 500));
        assert!(!m.is_busy(NodeId(2), 500), "spatial reuse: node 2 clear");
        assert!(!m.is_busy(NodeId(3), 500));
        assert!(!m.is_busy(NodeId(1), 1000), "ends at end time");
        // The transmitter itself is not 'busy' from sensing its own frame.
        assert!(!m.is_busy(NodeId(0), 500));
    }

    #[test]
    fn reception_is_bernoulli_at_link_probability() {
        let t = generate::line(1, 0.7, 0.0, 20.0);
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut got = 0;
        let trials = 4000;
        let (mut col, mut cap) = (0, 0);
        for i in 0..trials {
            let mut m = Medium::new(&t, &cfg(), ch.as_ref());
            m.begin(Transmission {
                id: i,
                tx: NodeId(0),
                start: 0,
                end: 100,
            });
            let rx = m.evaluate_reception(i, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
            got += rx.len();
        }
        let rate = got as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.03, "empirical delivery {rate}");
        assert_eq!(col, 0);
    }

    #[test]
    fn overlapping_equal_strength_frames_collide() {
        // Nodes 0 and 2 both linked to 1 with equal probability: no capture.
        let t = mesh_topology::Topology::from_matrix(
            "y",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.9],
                vec![0.0, 0.9, 0.0],
            ],
        );
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(2),
            start: 50,
            end: 150,
        });
        let (mut col, mut cap) = (0, 0);
        let rx1 = m.evaluate_reception(1, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        let rx2 = m.evaluate_reception(2, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        assert!(rx1.is_empty(), "frame 1 should be destroyed at node 1");
        assert!(rx2.is_empty(), "frame 2 should be destroyed at node 1");
        assert_eq!(col, 2);
        assert_eq!(cap, 0);
    }

    #[test]
    fn capture_lets_much_stronger_frame_survive() {
        // Node 1 hears node 0 at 0.95 and node 2 at 0.2: 0.95 > 1.8 × 0.2,
        // so node 0's frame captures.
        let t = mesh_topology::Topology::from_matrix(
            "cap",
            vec![
                vec![0.0, 0.95, 0.0],
                vec![0.95, 0.0, 0.2],
                vec![0.0, 0.2, 0.0],
            ],
        );
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut wins = 0;
        let trials = 2000;
        for i in 0..trials {
            let mut m = Medium::new(&t, &cfg(), ch.as_ref());
            m.begin(Transmission {
                id: 2 * i,
                tx: NodeId(0),
                start: 0,
                end: 100,
            });
            m.begin(Transmission {
                id: 2 * i + 1,
                tx: NodeId(2),
                start: 10,
                end: 110,
            });
            let (mut col, mut cap) = (0, 0);
            let rx = m.evaluate_reception(2 * i, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
            if !rx.is_empty() {
                wins += 1;
                assert_eq!(cap, 1);
            }
        }
        let rate = wins as f64 / trials as f64;
        assert!((rate - 0.95).abs() < 0.03, "capture rate {rate}");
    }

    #[test]
    fn half_duplex_blocks_reception() {
        let t = generate::line(1, 1.0, 0.0, 20.0);
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        // Node 1 transmits while node 0's frame is on the air.
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(1),
            start: 20,
            end: 120,
        });
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(1, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        assert!(rx.is_empty(), "half-duplex node 1 must not receive");
    }

    #[test]
    fn non_overlapping_frames_do_not_collide() {
        let t = generate::line(1, 1.0, 0.0, 20.0);
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(0),
            start: 100,
            end: 200,
        });
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(1, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        assert_eq!(rx, vec![NodeId(1)]);
        assert_eq!(col, 0);
    }

    #[test]
    fn shadowing_channel_extends_sense_and_interference() {
        // Nodes 0 and 2 sit 60 m apart: no matrix link, outside the fixed
        // carrier-sense (42 m) and interference (38 m) ranges. A shadowing
        // channel can still deliver at that distance (+3σ shadow), so the
        // pair must sense and interfere — otherwise a link carrying real
        // frames could never collide or defer.
        let t = line5();
        let static_ch = chan(&t);
        let m = Medium::new(&t, &cfg(), static_ch.as_ref());
        assert!(!m.senses(NodeId(0), NodeId(2)), "static: out of range");

        let shadow = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 8.0,
            midpoint_m: 40.0,
            epoch_ms: 100,
        }
        .build(&t, 0);
        assert!(shadow.may_reach(NodeId(0), NodeId(2)));
        let m = Medium::new(&t, &cfg(), shadow.as_ref());
        assert!(m.senses(NodeId(0), NodeId(2)));
        assert!(m.interferes(NodeId(0), NodeId(2)));
    }

    #[test]
    fn sparse_relations_match_dense_scan() {
        // The neighbor-list relations must equal the historical O(n²)
        // formula for every pair, for matrix-backed and geometry-driven
        // channels alike.
        let t = generate::testbed(1);
        let shadow = ChannelSpec::Shadowing {
            path_loss_exp: 3.0,
            sigma_db: 8.0,
            midpoint_m: 40.0,
            epoch_ms: 100,
        }
        .build(&t, 0);
        let cfg = cfg();
        for ch in [chan(&t), shadow] {
            let m = Medium::new(&t, &cfg, ch.as_ref());
            let pos = t.positions().expect("testbed has positions");
            for a in t.nodes() {
                assert!(!m.senses(a, a));
                assert!(!m.interferes(a, a));
                for b in t.nodes() {
                    if a == b {
                        continue;
                    }
                    let linked = t.delivery(a, b) > 0.0
                        || t.delivery(b, a) > 0.0
                        || ch.may_reach(a, b)
                        || ch.may_reach(b, a);
                    let d = pos[a.0].distance(&pos[b.0], 10.0);
                    assert_eq!(
                        m.senses(a, b),
                        linked || d <= cfg.carrier_sense_range,
                        "sense {a} -> {b}"
                    );
                    assert_eq!(
                        m.interferes(a, b),
                        linked || d <= cfg.interference_range,
                        "interfere {a} -> {b}"
                    );
                }
            }
        }
    }

    /// A channel with no structural promise: every distinct pair reaches.
    struct Omni;
    impl ChannelModel for Omni {
        fn delivery(&self, tx: NodeId, rx: NodeId, _now: Time) -> f64 {
            if tx == rx {
                0.0
            } else {
                0.3
            }
        }
        fn may_reach(&self, tx: NodeId, rx: NodeId) -> bool {
            tx != rx
        }
        // reach_hint deliberately left at the AllPairs default.
    }

    #[test]
    fn unhinted_channel_falls_back_to_all_pairs() {
        let t = line5();
        let mut m = Medium::new(&t, &cfg(), &Omni);
        // may_reach links even the 120 m pair the matrix lacks.
        assert!(m.senses(NodeId(0), NodeId(4)));
        assert!(m.interferes(NodeId(4), NodeId(0)));
        // Reception still considers every node: over enough trials the
        // far end of the line must decode something.
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let (mut col, mut cap) = (0, 0);
        let mut far_heard = false;
        for _ in 0..100 {
            let rx = m.evaluate_reception(1, &Omni, &cfg(), &mut rng, &mut col, &mut cap);
            far_heard |= rx.contains(&NodeId(4));
        }
        assert!(far_heard, "all-pairs fallback must reach node 4");
    }

    #[test]
    fn capture_ratio_boundary_is_inclusive() {
        // Destruction requires p < ratio × strongest, so a frame sitting
        // exactly on the boundary survives (and counts as a capture).
        let t = mesh_topology::Topology::from_matrix(
            "edge",
            vec![
                vec![0.0, 1.0, 0.0],
                vec![1.0, 0.0, 0.5],
                vec![0.0, 0.5, 0.0],
            ],
        );
        let ch = chan(&t);
        let mut cfg = cfg();
        cfg.capture_ratio = 2.0; // threshold = 2.0 × 0.5 = 1.0 == p
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut m = Medium::new(&t, &cfg, ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(2),
            start: 10,
            end: 110,
        });
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(1, ch.as_ref(), &cfg, &mut rng, &mut col, &mut cap);
        assert_eq!(rx, vec![NodeId(1)], "p == ratio × strongest survives");
        assert_eq!((col, cap), (1, 1));

        // One hair past the boundary destroys the frame.
        cfg.capture_ratio = 2.0 + 1e-9;
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(1, ch.as_ref(), &cfg, &mut rng, &mut col, &mut cap);
        assert!(rx.is_empty(), "p < ratio × strongest is destroyed");
        assert_eq!((col, cap), (1, 0));
    }

    #[test]
    fn one_microsecond_of_overlap_collides() {
        // Intervals are half-open: [0, 100) and [99, 199) share 1 µs.
        let t = mesh_topology::Topology::from_matrix(
            "y",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.9],
                vec![0.0, 0.9, 0.0],
            ],
        );
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(2),
            start: 99,
            end: 199,
        });
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(1, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        assert!(rx.is_empty(), "equal-strength 1 µs overlap destroys both");
        assert_eq!(col, 1);
    }

    #[test]
    fn half_duplex_clears_when_own_tx_only_touches_the_frame_edge() {
        // Node 1's own transmission ends exactly when node 0's frame
        // starts: half-open intervals do not overlap, so node 1 receives.
        let t = generate::line(1, 1.0, 0.0, 20.0);
        let ch = chan(&t);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(1),
            start: 0,
            end: 100,
        });
        m.begin(Transmission {
            id: 2,
            tx: NodeId(0),
            start: 100,
            end: 200,
        });
        let (mut col, mut cap) = (0, 0);
        let rx = m.evaluate_reception(2, ch.as_ref(), &cfg(), &mut rng, &mut col, &mut cap);
        assert_eq!(rx, vec![NodeId(1)]);
        assert_eq!(col, 0);
    }

    #[test]
    fn prune_retains_recent() {
        let t = generate::line(1, 1.0, 0.0, 20.0);
        let ch = chan(&t);
        let mut m = Medium::new(&t, &cfg(), ch.as_ref());
        m.begin(Transmission {
            id: 1,
            tx: NodeId(0),
            start: 0,
            end: 100,
        });
        m.prune(50 * crate::MS);
        assert!(m.transmission(1).is_some());
        m.prune(200 * crate::MS);
        assert!(m.transmission(1).is_none());
    }
}
