//! End-to-end tests of the simulator engine with minimal protocol agents.

use mesh_sim::{Ctx, Frame, NodeAgent, OutFrame, SimConfig, Simulator, TxOutcome, SEC};
use mesh_topology::{generate, NodeId};

/// Broadcasts `remaining` frames from node 0 and counts receptions
/// anywhere.
struct Broadcaster {
    remaining: u32,
    received: Vec<u32>,
}

impl NodeAgent for Broadcaster {
    type Payload = u32;

    fn on_receive(&mut self, node: NodeId, _f: &Frame<u32>, _ctx: &mut Ctx<'_>) {
        self.received[node.0] += 1;
    }

    fn on_tx_done(&mut self, _node: NodeId, outcome: TxOutcome, _ctx: &mut Ctx<'_>) {
        assert_eq!(outcome, TxOutcome::Broadcast);
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<u32>> {
        if node != NodeId(0) || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(OutFrame {
            dst: None,
            bytes: 1500,
            bitrate: None,
            flow: None,
            payload: self.remaining,
        })
    }
}

#[test]
fn broadcast_delivery_tracks_link_probability() {
    let topo = generate::line(1, 0.7, 0.0, 20.0);
    let agent = Broadcaster {
        remaining: 2000,
        received: vec![0; 2],
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 42);
    sim.kick(NodeId(0));
    // Run to the deadline regardless of progress (never stop early).
    sim.run_until(120 * SEC, |_: &Broadcaster| false);
    assert_eq!(sim.stats.tx_frames[0], 2000, "all frames sent");
    let rate = sim.agent.received[1] as f64 / 2000.0;
    assert!((rate - 0.7).abs() < 0.04, "delivery rate {rate}");
    assert_eq!(sim.stats.unicast_failures, 0);
}

#[test]
fn broadcasts_are_paced_by_airtime_and_backoff() {
    // 1500 B at 5.5 Mb/s ≈ 2374 µs airtime + DIFS + mean backoff
    // (31/2 × 20 µs = 310); ~2.7 ms/frame → ~370 frames/s.
    let topo = generate::line(1, 1.0, 0.0, 20.0);
    let agent = Broadcaster {
        remaining: u32::MAX,
        received: vec![0; 2],
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 7);
    sim.kick(NodeId(0));
    sim.run_until(SEC, |_| false);
    let sent = sim.stats.tx_frames[0];
    assert!(
        (330..=400).contains(&sent),
        "one saturated sender sent {sent} frames/s"
    );
}

/// Sends `remaining` unicast packets from node 0 to node 1, counting MAC
/// outcomes.
struct Unicaster {
    remaining: u32,
    acked: u32,
    failed: u32,
    delivered: u32,
}

impl NodeAgent for Unicaster {
    type Payload = ();

    fn on_receive(&mut self, node: NodeId, f: &Frame<()>, _ctx: &mut Ctx<'_>) {
        if f.dst == Some(node) {
            self.delivered += 1;
        }
    }

    fn on_tx_done(&mut self, _node: NodeId, outcome: TxOutcome, _ctx: &mut Ctx<'_>) {
        match outcome {
            TxOutcome::Acked { .. } => self.acked += 1,
            TxOutcome::Failed { .. } => self.failed += 1,
            TxOutcome::Broadcast => panic!("no broadcasts here"),
        }
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<()>> {
        if node != NodeId(0) || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(OutFrame {
            dst: Some(NodeId(1)),
            bytes: 1500,
            bitrate: None,
            flow: None,
            payload: (),
        })
    }
}

#[test]
fn unicast_retransmission_masks_loss() {
    // 60% link: raw loss is high but 7 retries push delivery near 1.
    let topo = generate::line(1, 0.6, 0.0, 20.0);
    let agent = Unicaster {
        remaining: 500,
        acked: 0,
        failed: 0,
        delivered: 0,
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 3);
    sim.kick(NodeId(0));
    sim.run_until(300 * SEC, |a| a.acked + a.failed == 500);
    let a = &sim.agent;
    assert_eq!(a.acked + a.failed, 500, "every send resolved");
    // An attempt succeeds when data AND MAC-ACK both get through:
    // 0.6 × 0.6 = 0.36; P(all 8 attempts fail) = 0.64⁸ ≈ 2.8%.
    assert!(
        (460..=500).contains(&a.acked),
        "acked {} of 500 — expected ≈ 486",
        a.acked
    );
    assert!(sim.stats.retries > 200, "retries {}", sim.stats.retries);
    // Deliveries can exceed acks (data got through but the ACK was lost,
    // so the sender retried an already-delivered frame).
    assert!(a.delivered >= a.acked);
}

#[test]
fn unicast_on_dead_link_fails_cleanly() {
    let topo = mesh_topology::Topology::from_matrix("dead", vec![vec![0.0, 0.02], vec![0.02, 0.0]]);
    let agent = Unicaster {
        remaining: 20,
        acked: 0,
        failed: 0,
        delivered: 0,
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 5);
    sim.kick(NodeId(0));
    sim.run_until(600 * SEC, |a| a.acked + a.failed == 20);
    assert!(
        sim.agent.failed > 10,
        "a 2% link should exhaust retries most of the time (failed {})",
        sim.agent.failed
    );
    assert_eq!(sim.stats.unicast_failures, sim.agent.failed as u64);
}

/// Two independent saturated broadcasters, used for spatial-reuse checks.
struct TwoSenders {
    senders: [NodeId; 2],
}

impl NodeAgent for TwoSenders {
    type Payload = ();

    fn on_receive(&mut self, _n: NodeId, _f: &Frame<()>, _c: &mut Ctx<'_>) {}
    fn on_tx_done(&mut self, _n: NodeId, _o: TxOutcome, _c: &mut Ctx<'_>) {}

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<()>> {
        if self.senders.contains(&node) {
            Some(OutFrame {
                dst: None,
                bytes: 1500,
                bitrate: None,
                flow: None,
                payload: (),
            })
        } else {
            None
        }
    }
}

#[test]
fn distant_nodes_transmit_concurrently_neighbors_do_not() {
    // 5-node line, 30 m spacing, carrier sense 42 m: nodes 0 and 4 are
    // 120 m apart — spatial reuse; nodes 0 and 1 sense each other.
    let topo = generate::line(4, 0.9, 0.0, 30.0);

    let far = TwoSenders {
        senders: [NodeId(0), NodeId(4)],
    };
    let mut sim_far = Simulator::new(topo.clone(), SimConfig::default(), far, 11);
    sim_far.kick(NodeId(0));
    sim_far.kick(NodeId(4));
    sim_far.run_until(2 * SEC, |_| false);
    let far_overlap = sim_far.stats.concurrent_airtime;

    let near = TwoSenders {
        senders: [NodeId(0), NodeId(1)],
    };
    let mut sim_near = Simulator::new(topo, SimConfig::default(), near, 11);
    sim_near.kick(NodeId(0));
    sim_near.kick(NodeId(1));
    sim_near.run_until(2 * SEC, |_| false);
    let near_overlap = sim_near.stats.concurrent_airtime;

    assert!(
        far_overlap > 20 * far_overlap.min(near_overlap).max(1) / 20 && far_overlap > 500_000,
        "far senders should overlap heavily: {far_overlap} µs over 2 s"
    );
    assert!(
        near_overlap < far_overlap / 5,
        "neighbors should rarely overlap: near {near_overlap} vs far {far_overlap}"
    );
    // And the far pair pushes roughly twice the frames of a lone sender.
    let total_far = sim_far.stats.tx_frames[0] + sim_far.stats.tx_frames[4];
    let total_near = sim_near.stats.tx_frames[0] + sim_near.stats.tx_frames[1];
    assert!(
        total_far as f64 > 1.5 * total_near as f64,
        "spatial reuse should raise aggregate throughput: {total_far} vs {total_near}"
    );
}

/// Timer echo agent.
struct TimerAgent {
    fired: Vec<(NodeId, u64, u64)>,
}

impl NodeAgent for TimerAgent {
    type Payload = ();
    fn on_receive(&mut self, _n: NodeId, _f: &Frame<()>, _c: &mut Ctx<'_>) {}
    fn on_tx_done(&mut self, _n: NodeId, _o: TxOutcome, _c: &mut Ctx<'_>) {}
    fn poll_tx(&mut self, _n: NodeId, _c: &mut Ctx<'_>) -> Option<OutFrame<()>> {
        None
    }
    fn on_timer(&mut self, node: NodeId, token: u64, ctx: &mut Ctx<'_>) {
        self.fired.push((node, token, ctx.now()));
        if token < 3 {
            ctx.set_timer(node, 100, token + 1);
        }
    }
}

#[test]
fn timers_chain() {
    let topo = generate::line(1, 1.0, 0.0, 20.0);
    let agent = TimerAgent { fired: Vec::new() };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 1);
    sim.set_timer(NodeId(1), 50, 1);
    sim.run_until(SEC, |_| false);
    assert_eq!(
        sim.agent.fired,
        vec![(NodeId(1), 1, 50), (NodeId(1), 2, 150), (NodeId(1), 3, 250)]
    );
}

#[test]
fn runs_are_deterministic_in_seed() {
    let run = |seed: u64| {
        let topo = generate::testbed(1);
        let agent = Broadcaster {
            remaining: 300,
            received: vec![0; 20],
        };
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
        sim.kick(NodeId(0));
        sim.run_until(30 * SEC, |_| false);
        (sim.agent.received.clone(), sim.stats.total_rx())
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn deadline_stops_the_clock() {
    let topo = generate::line(1, 1.0, 0.0, 20.0);
    let agent = Broadcaster {
        remaining: u32::MAX,
        received: vec![0; 2],
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 2);
    sim.kick(NodeId(0));
    let end = sim.run_until(SEC / 2, |_| false);
    assert_eq!(end, SEC / 2);
    // Continuing resumes where we stopped.
    let end2 = sim.run_until(SEC, |_| false);
    assert_eq!(end2, SEC);
    assert!(sim.stats.tx_frames[0] > 300);
}

#[test]
fn stop_predicate_halts_early() {
    let topo = generate::line(1, 1.0, 0.0, 20.0);
    let agent = Broadcaster {
        remaining: u32::MAX,
        received: vec![0; 2],
    };
    let mut sim = Simulator::new(topo, SimConfig::default(), agent, 2);
    sim.kick(NodeId(0));
    sim.run_until(10 * SEC, |a| a.received[1] >= 10);
    assert!(sim.agent.received[1] >= 10);
    assert!(sim.agent.received[1] < 20, "should stop promptly");
    assert!(sim.now() < 10 * SEC);
}
