//! Property tests for the simulator's conservation laws and failure
//! behaviour: whatever the topology, seed, and traffic shape, the medium
//! never invents receptions, time never runs backwards, and the MAC
//! resolves every unicast exactly once.

use mesh_sim::{Ctx, Frame, NodeAgent, OutFrame, SimConfig, Simulator, TxOutcome, SEC};
use mesh_topology::{generate, NodeId};
use proptest::prelude::*;

/// An agent where a configurable set of saturated broadcasters and one
/// unicaster exercise the MAC, recording invariants as it goes.
struct Mixed {
    broadcasters: Vec<NodeId>,
    unicaster: Option<(NodeId, NodeId, u32)>,
    resolved: u32,
    receive_times: Vec<u64>,
    last_now: u64,
}

impl NodeAgent for Mixed {
    type Payload = u32;

    fn on_receive(&mut self, _node: NodeId, _f: &Frame<u32>, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        assert!(now >= self.last_now, "time ran backwards");
        self.last_now = now;
        self.receive_times.push(now);
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, _ctx: &mut Ctx<'_>) {
        match outcome {
            TxOutcome::Broadcast => {
                assert!(
                    self.broadcasters.contains(&node),
                    "broadcast outcome at a non-broadcaster"
                );
            }
            TxOutcome::Acked { .. } | TxOutcome::Failed { .. } => {
                assert_eq!(
                    Some(node),
                    self.unicaster.map(|(s, _, _)| s),
                    "unicast outcome at the wrong node"
                );
                self.resolved += 1;
            }
        }
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<u32>> {
        if let Some((s, d, ref mut left)) = self.unicaster {
            if node == s && *left > 0 {
                *left -= 1;
                return Some(OutFrame {
                    dst: Some(d),
                    bytes: 400,
                    bitrate: None,
                    flow: None,
                    payload: 0,
                });
            }
        }
        if self.broadcasters.contains(&node) {
            return Some(OutFrame {
                dst: None,
                bytes: 800,
                bitrate: None,
                flow: None,
                payload: 1,
            });
        }
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Conservation: every reception corresponds to a transmission; total
    /// receptions ≤ transmissions × (n − 1); unicasts resolve exactly once
    /// each; airtime is consistent with the clock.
    #[test]
    fn conservation_laws(
        topo_seed in 0u64..100,
        sim_seed in 0u64..1000,
        n_broadcasters in 0usize..3,
        unicasts in 0u32..40,
    ) {
        let topo = generate::random_mesh(8, 60.0, 40.0, topo_seed);
        let n = topo.n();
        let broadcasters: Vec<NodeId> = (0..n_broadcasters).map(NodeId).collect();
        let unicaster = if unicasts > 0 {
            Some((NodeId(n - 1), NodeId(n - 2), unicasts))
        } else {
            None
        };
        let agent = Mixed {
            broadcasters: broadcasters.clone(),
            unicaster,
            resolved: 0,
            receive_times: Vec::new(),
            last_now: 0,
        };
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, sim_seed);
        for &b in &broadcasters {
            sim.kick(b);
        }
        if unicaster.is_some() {
            sim.kick(NodeId(n - 1));
        }
        let end = sim.run_until(3 * SEC, |_| false);
        prop_assert!(end <= 3 * SEC);

        let tx = sim.stats.total_tx();
        let rx = sim.stats.total_rx();
        prop_assert!(rx <= tx * (n as u64 - 1), "rx {rx} > tx {tx} × (n−1)");
        if unicasts > 0 {
            // Every injected unicast resolves exactly once (acked or
            // failed) — none lost, none double-reported. (Some may still
            // be in flight at the deadline.)
            prop_assert!(sim.agent.resolved <= unicasts);
            // Run to quiescence: everything resolves.
            sim.run_until(end + 30 * SEC, |a: &Mixed| a.resolved == unicasts);
            prop_assert_eq!(sim.agent.resolved, unicasts, "unicasts unresolved");
        }
        // Airtime a single radio used cannot exceed the elapsed clock.
        for node_air in &sim.stats.airtime {
            prop_assert!(*node_air <= sim.now() + 20_000);
        }
    }

    /// Determinism as a property: any (topology, traffic, seed) triple
    /// replays identically.
    #[test]
    fn replay_identical(topo_seed in 0u64..50, sim_seed in 0u64..1000) {
        let run = || {
            let topo = generate::random_mesh(6, 50.0, 40.0, topo_seed);
            let agent = Mixed {
                broadcasters: vec![NodeId(0)],
                unicaster: Some((NodeId(1), NodeId(2), 5)),
                resolved: 0,
                receive_times: Vec::new(),
                last_now: 0,
            };
            let mut sim = Simulator::new(topo, SimConfig::default(), agent, sim_seed);
            sim.kick(NodeId(0));
            sim.kick(NodeId(1));
            sim.run_until(SEC, |_| false);
            (sim.stats.total_tx(), sim.stats.total_rx(), sim.agent.receive_times.clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// Disconnected nodes never receive anything.
    #[test]
    fn no_reception_without_links(sim_seed in 0u64..500) {
        // Two islands: 0-1 linked, 2 isolated.
        let topo = mesh_topology::Topology::from_matrix(
            "islands",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.0],
                vec![0.0, 0.0, 0.0],
            ],
        );
        let agent = Mixed {
            broadcasters: vec![NodeId(0)],
            unicaster: None,
            resolved: 0,
            receive_times: Vec::new(),
            last_now: 0,
        };
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, sim_seed);
        sim.kick(NodeId(0));
        sim.run_until(SEC, |_| false);
        prop_assert_eq!(sim.stats.rx_frames[2], 0, "isolated node received");
        prop_assert!(sim.stats.rx_frames[1] > 0, "linked node received nothing");
    }
}
