//! Experiment harness shared by every figure binary.
//!
//! One [`run_flows`] call = one testbed run of the paper: a topology, a
//! protocol, one or more `src → dst` transfers, a deadline, a seed. The
//! helpers here keep every figure binary to "pick pairs, sweep parameter,
//! print the paper's series".
//!
//! Throughput is packets/second over the transfer, the unit of Figs
//! 4-2…4-7. Deadline-limited runs report what was delivered by the
//! deadline (challenged Srcr pairs — the dead spots — would otherwise run
//! forever).

pub mod common;
pub mod stats;

use baselines::{ExorAgent, ExorConfig, SrcrAgent, SrcrConfig};
use mesh_sim::{Bitrate, SimConfig, Simulator, Time, SEC};
use mesh_topology::{NodeId, Topology};
use more_core::{MoreAgent, MoreConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which protocol a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    More,
    Exor,
    Srcr,
    /// Srcr with Onoe autorate (Fig 4-6).
    SrcrAutorate,
}

impl Protocol {
    pub const ALL3: [Protocol; 3] = [Protocol::Srcr, Protocol::Exor, Protocol::More];

    pub fn name(self) -> &'static str {
        match self {
            Protocol::More => "MORE",
            Protocol::Exor => "ExOR",
            Protocol::Srcr => "Srcr",
            Protocol::SrcrAutorate => "Srcr-autorate",
        }
    }
}

/// Shared experiment parameters (§4.1.2 defaults).
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Packets per transfer (the paper sends a 5 MB file ≈ 3500 packets;
    /// experiments default to 12 batches ≈ 384 so sweeps stay tractable —
    /// see DESIGN.md substitutions).
    pub packets: usize,
    /// Batch size K for MORE and ExOR.
    pub k: usize,
    /// Fixed data bit-rate.
    pub bitrate: Bitrate,
    /// Simulated-time budget per run.
    pub deadline_s: u64,
    /// RNG seed (medium + protocol randomness).
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            packets: 384,
            k: 32,
            bitrate: Bitrate::B5_5,
            deadline_s: 240,
            seed: 1,
        }
    }
}

/// One flow's outcome.
#[derive(Clone, Copy, Debug)]
pub struct FlowResult {
    pub src: NodeId,
    pub dst: NodeId,
    /// Delivered packets / elapsed seconds.
    pub throughput_pps: f64,
    pub delivered: usize,
    pub completed: bool,
    /// Fraction of airtime with ≥2 concurrent transmissions (spatial
    /// reuse indicator, whole-run).
    pub concurrency: f64,
    /// Total data-frame transmissions in the run (whole-run, shared by
    /// all flows of the run).
    pub total_tx: u64,
}

fn throughput(delivered: usize, completed_at: Option<Time>, deadline: Time) -> (f64, bool) {
    match completed_at {
        Some(t) if t > 0 => (delivered as f64 / (t as f64 / SEC as f64), true),
        _ => (delivered as f64 / (deadline as f64 / SEC as f64), false),
    }
}

/// Runs `flows` concurrently under `proto` and returns per-flow results.
pub fn run_flows(
    proto: Protocol,
    topo: &Topology,
    flows: &[(NodeId, NodeId)],
    cfg: &ExpConfig,
    sim_cfg: &SimConfig,
) -> Vec<FlowResult> {
    let deadline = cfg.deadline_s * SEC;
    let mut sim_cfg = *sim_cfg;
    sim_cfg.bitrate = cfg.bitrate;
    match proto {
        Protocol::More => {
            let mcfg = MoreConfig {
                k: cfg.k,
                ..MoreConfig::default()
            };
            let mut agent = MoreAgent::new(topo.clone(), mcfg);
            for (i, &(s, d)) in flows.iter().enumerate() {
                agent.add_flow(i as u32 + 1, s, d, cfg.packets);
            }
            let mut sim = Simulator::new(topo.clone(), sim_cfg, agent, cfg.seed);
            for &(s, _) in flows {
                sim.kick(s);
            }
            sim.run_until(deadline, |a: &MoreAgent| a.all_done());
            let conc = concurrency(&sim.stats);
            flows
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| {
                    let p = sim.agent.progress(i);
                    let (tput, completed) =
                        throughput(p.delivered_packets, p.completed_at, deadline);
                    FlowResult {
                        src: s,
                        dst: d,
                        throughput_pps: tput,
                        delivered: p.delivered_packets,
                        completed,
                        concurrency: conc,
                        total_tx: sim.stats.total_tx(),
                    }
                })
                .collect()
        }
        Protocol::Exor => {
            let ecfg = ExorConfig {
                k: cfg.k,
                ..ExorConfig::default()
            };
            let mut agent = ExorAgent::new(topo.clone(), ecfg);
            for (i, &(s, d)) in flows.iter().enumerate() {
                let fi = agent.add_flow(i as u32 + 1, s, d, cfg.packets);
                agent.start(fi);
            }
            let mut sim = Simulator::new(topo.clone(), sim_cfg, agent, cfg.seed);
            for &(s, _) in flows {
                sim.kick(s);
            }
            sim.run_until(deadline, |a: &ExorAgent| a.all_done());
            let conc = concurrency(&sim.stats);
            flows
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| {
                    let p = sim.agent.progress(i);
                    let (tput, completed) = throughput(p.delivered, p.completed_at, deadline);
                    FlowResult {
                        src: s,
                        dst: d,
                        throughput_pps: tput,
                        delivered: p.delivered,
                        completed,
                        concurrency: conc,
                        total_tx: sim.stats.total_tx(),
                    }
                })
                .collect()
        }
        Protocol::Srcr | Protocol::SrcrAutorate => {
            let scfg = SrcrConfig {
                autorate: proto == Protocol::SrcrAutorate,
                ..SrcrConfig::default()
            };
            let mut agent = SrcrAgent::new(topo.clone(), scfg, cfg.bitrate);
            for (i, &(s, d)) in flows.iter().enumerate() {
                agent.add_flow(i as u32 + 1, s, d, cfg.packets);
            }
            let mut sim = Simulator::new(topo.clone(), sim_cfg, agent, cfg.seed);
            for &(s, _) in flows {
                sim.kick(s);
            }
            sim.run_until(deadline, |a: &SrcrAgent| a.all_done());
            let conc = concurrency(&sim.stats);
            flows
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| {
                    let p = sim.agent.progress(i);
                    let (tput, completed) = throughput(p.delivered, p.completed_at, deadline);
                    FlowResult {
                        src: s,
                        dst: d,
                        throughput_pps: tput,
                        delivered: p.delivered,
                        completed,
                        concurrency: conc,
                        total_tx: sim.stats.total_tx(),
                    }
                })
                .collect()
        }
    }
}

fn concurrency(stats: &mesh_sim::SimStats) -> f64 {
    let total = stats.total_airtime();
    if total == 0 {
        0.0
    } else {
        stats.concurrent_airtime as f64 / total as f64
    }
}

/// Runs one `src → dst` transfer.
pub fn run_single(
    proto: Protocol,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &ExpConfig,
) -> FlowResult {
    run_flows(proto, topo, &[(src, dst)], cfg, &SimConfig::default())[0]
}

/// Deterministically samples `count` distinct reachable ordered pairs.
pub fn random_pairs(topo: &Topology, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut all: Vec<(NodeId, NodeId)> = Vec::new();
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s != d && topo.hop_count(s, d).is_some() {
                all.push((s, d));
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(count);
    all
}

/// Maps `f` over `items` on `threads` worker threads, preserving order.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    let results_mutex = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f_ref(&items_ref[i]);
                results_mutex.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");
    drop(results_mutex);
    results.into_iter().map(|r| r.expect("all filled")).collect()
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    #[test]
    fn all_three_protocols_complete_a_small_transfer() {
        let topo = generate::testbed(1);
        let cfg = ExpConfig {
            packets: 32,
            deadline_s: 240,
            ..ExpConfig::default()
        };
        for proto in Protocol::ALL3 {
            let r = run_single(proto, &topo, NodeId(0), NodeId(19), &cfg);
            assert!(r.completed, "{} did not complete", proto.name());
            assert_eq!(r.delivered, 32, "{}", proto.name());
            assert!(r.throughput_pps > 1.0, "{}", proto.name());
        }
    }

    #[test]
    fn random_pairs_are_deterministic_and_reachable() {
        let topo = generate::testbed(2);
        let a = random_pairs(&topo, 30, 7);
        let b = random_pairs(&topo, 30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for (s, d) in a {
            assert_ne!(s, d);
            assert!(topo.hop_count(s, d).is_some());
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), 8, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
