//! Experiment harness shared by every figure binary.
//!
//! The heavy lifting lives in [`more_scenario`]: declare a scenario
//! (topology, traffic, protocols, sweeps, seeds) with
//! [`more_scenario::Scenario`], run it, and read structured
//! [`more_scenario::RunRecord`]s. Every figure binary follows that
//! pattern — "declare scenario, print series".
//!
//! This crate keeps:
//!
//! * [`common`] — tiny CLI parsing and banners for the binaries;
//! * [`stats`] — quantiles/CDF helpers for printing the paper's series;
//! * thin compatibility wrappers ([`run_single`], [`run_flows`]) over the
//!   protocol registry for callers that want one run, not a grid. The
//!   old closed `Protocol` enum is gone: protocols are registry names
//!   ("MORE", "ExOR", "Srcr", "Srcr-autorate", or anything registered
//!   by the caller).
//!
//! Throughput is packets/second over the transfer, the unit of Figs
//! 4-2…4-7. Deadline-limited runs report what was delivered by the
//! deadline (challenged Srcr pairs — the dead spots — would otherwise run
//! forever).

#![forbid(unsafe_code)]

pub mod common;
pub mod stats;

use mesh_sim::SimConfig;
use mesh_topology::{NodeId, Topology};
use more_scenario::{Scenario, TopologySpec, TrafficSpec};
use std::sync::Arc;

pub use more_scenario::{
    random_pairs, sink, ChannelSpec, ExpConfig, ProtocolFactory, ProtocolRegistry, RunRecord,
    RunSummary, Sweep,
};

/// The paper's three-way comparison, in plotting order.
pub const ALL3: [&str; 3] = ["Srcr", "ExOR", "MORE"];

/// One flow's outcome (compatibility shape; scenario code reads
/// [`more_scenario::FlowRecord`] instead).
#[derive(Clone, Copy, Debug)]
pub struct FlowResult {
    pub src: NodeId,
    pub dst: NodeId,
    /// Delivered packets / elapsed seconds.
    pub throughput_pps: f64,
    pub delivered: usize,
    pub completed: bool,
    /// Fraction of airtime with ≥2 concurrent transmissions (spatial
    /// reuse indicator, whole-run).
    pub concurrency: f64,
    /// Total data-frame transmissions in the run (whole-run, shared by
    /// all flows of the run).
    pub total_tx: u64,
}

/// Runs `flows` concurrently under the named protocol and returns
/// per-flow results. Thin wrapper over the scenario engine with the
/// default registry.
pub fn run_flows(
    proto: &str,
    topo: &Topology,
    flows: &[(NodeId, NodeId)],
    cfg: &ExpConfig,
    sim_cfg: &SimConfig,
) -> Vec<FlowResult> {
    let records = Scenario::named("run_flows")
        .topology(TopologySpec::Fixed(Arc::new(topo.clone())))
        .traffic(TrafficSpec::Concurrent(flows.to_vec()))
        .protocol(proto)
        .exp_config(*cfg)
        .sim_config(*sim_cfg)
        .seeds([cfg.seed])
        .threads(1)
        .run();
    let r = &records[0];
    r.flows
        .iter()
        .map(|f| FlowResult {
            src: f.src,
            dst: f.dsts[0],
            throughput_pps: f.throughput_pps,
            delivered: f.delivered,
            completed: f.completed,
            concurrency: r.concurrency,
            total_tx: r.total_tx,
        })
        .collect()
}

/// Runs one `src → dst` transfer.
pub fn run_single(
    proto: &str,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &ExpConfig,
) -> FlowResult {
    run_flows(proto, topo, &[(src, dst)], cfg, &SimConfig::default())[0]
}

/// Maps `f` over `items` on `threads` worker threads, preserving order.
///
/// Thin wrapper over [`more_scenario::exec::par_map`], kept for source
/// compatibility with pre-scenario harness code.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    more_scenario::exec::par_map(items, threads, f)
}

/// Splits records into `(protocol, per-traffic-index throughputs)` in
/// first-appearance protocol order — the shape every CDF figure prints.
pub fn throughputs_by_protocol(records: &[RunRecord]) -> Vec<(String, Vec<f64>)> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for r in records {
        let entry = match out.iter_mut().find(|(p, _)| *p == r.protocol) {
            Some(e) => e,
            None => {
                out.push((r.protocol.clone(), Vec::new()));
                out.last_mut().expect("just pushed")
            }
        };
        entry.1.extend(r.throughputs());
    }
    out
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    #[test]
    fn all_three_protocols_complete_a_small_transfer() {
        let topo = generate::testbed(1);
        let cfg = ExpConfig {
            packets: 32,
            deadline_s: 240,
            ..ExpConfig::default()
        };
        for proto in ALL3 {
            let r = run_single(proto, &topo, NodeId(0), NodeId(19), &cfg);
            assert!(r.completed, "{proto} did not complete");
            assert_eq!(r.delivered, 32, "{proto}");
            assert!(r.throughput_pps > 1.0, "{proto}");
        }
    }

    #[test]
    fn random_pairs_are_deterministic_and_reachable() {
        let topo = generate::testbed(2);
        let a = random_pairs(&topo, 30, 7);
        let b = random_pairs(&topo, 30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for (s, d) in a {
            assert_ne!(s, d);
            assert!(topo.hop_count(s, d).is_some());
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), 8, |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn throughputs_group_in_protocol_order() {
        let topo = generate::line(2, 0.9, 0.3, 25.0);
        let records = Scenario::named("t")
            .topology(TopologySpec::Fixed(Arc::new(topo)))
            .traffic(TrafficSpec::EachPair(vec![
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0)),
            ]))
            .protocols(["Srcr", "MORE"])
            .packets(8)
            .deadline(60)
            .run();
        let groups = throughputs_by_protocol(&records);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "Srcr");
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, "MORE");
    }
}
