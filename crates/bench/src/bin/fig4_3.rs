//! Figure 4-3: scatter of per-pair throughput, opportunistic routing vs
//! Srcr. Points above the 45° line gain from opportunism; the paper's
//! finding is that *challenged* flows (low Srcr throughput) gain most
//! while already-good flows stay on the diagonal.
//!
//! `cargo run --release -p more-bench --bin fig4_3 -- --pairs 60`

use mesh_topology::generate;
use more_bench::common::{banner, threads, Args};
use more_bench::{random_pairs, run_single, ExpConfig, Protocol};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 60);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo = generate::testbed(args.get("topo-seed", 1));
    let pairs = random_pairs(&topo, n_pairs, seed);
    let cfg = ExpConfig {
        packets,
        seed,
        ..ExpConfig::default()
    };

    banner("Figure 4-3", "per-pair scatter: MORE vs Srcr and ExOR vs Srcr");
    let runs: Vec<(f64, f64, f64)> = more_bench::par_map(pairs.clone(), threads(), |&(s, d)| {
        let srcr = run_single(Protocol::Srcr, &topo, s, d, &cfg).throughput_pps;
        let more = run_single(Protocol::More, &topo, s, d, &cfg).throughput_pps;
        let exor = run_single(Protocol::Exor, &topo, s, d, &cfg).throughput_pps;
        (srcr, more, exor)
    });

    println!("{:>10} {:>10} {:>10} {:>12}", "Srcr", "MORE", "ExOR", "pair");
    for ((srcr, more, exor), (s, d)) in runs.iter().zip(&pairs) {
        println!("{srcr:10.1} {more:10.1} {exor:10.1}   {s}->{d}");
    }

    // The paper's qualitative claim: gains concentrate on challenged flows.
    let med_srcr = more_bench::stats::median(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
    let gain = |f: &dyn Fn(&(f64, f64, f64)) -> f64, challenged: bool| {
        let sel: Vec<f64> = runs
            .iter()
            .filter(|r| (r.0 < med_srcr) == challenged)
            .map(|r| f(r) / r.0.max(0.1))
            .collect();
        more_bench::stats::median(&sel)
    };
    println!(
        "\nmedian MORE/Srcr gain: challenged flows {:.2}x, good flows {:.2}x (paper: gains concentrate on challenged flows)",
        gain(&|r| r.1, true),
        gain(&|r| r.1, false)
    );
    println!(
        "median ExOR/Srcr gain: challenged flows {:.2}x, good flows {:.2}x",
        gain(&|r| r.2, true),
        gain(&|r| r.2, false)
    );
}
