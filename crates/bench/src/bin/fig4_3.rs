//! Figure 4-3: scatter of per-pair throughput, opportunistic routing vs
//! Srcr. Points above the 45° line gain from opportunism; the paper's
//! finding is that *challenged* flows (low Srcr throughput) gain most
//! while already-good flows stay on the diagonal.
//!
//! `cargo run --release -p more-bench --bin fig4_3 -- --pairs 60`

use more_bench::common::{banner, threads, Args};
use more_bench::{stats, RunRecord, ALL3};
use more_scenario::{Scenario, TrafficSpec};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 60);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo_seed: u64 = args.get("topo-seed", 1);

    banner(
        "Figure 4-3",
        "per-pair scatter: MORE vs Srcr and ExOR vs Srcr",
    );
    let records = Scenario::named("fig4_3")
        .testbed(topo_seed)
        .traffic(TrafficSpec::RandomPairs {
            count: n_pairs,
            seed,
        })
        .protocols(ALL3)
        .packets(packets)
        .seeds([seed])
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    // Every protocol ran the same ordered pair list; join on traffic_index.
    let by_proto = |proto: &str| -> Vec<&RunRecord> {
        let mut rs: Vec<&RunRecord> = records.iter().filter(|r| r.protocol == proto).collect();
        rs.sort_by_key(|r| r.traffic_index);
        rs
    };
    let (srcr, more, exor) = (by_proto("Srcr"), by_proto("MORE"), by_proto("ExOR"));

    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "Srcr", "MORE", "ExOR", "pair"
    );
    let mut runs: Vec<(f64, f64, f64)> = Vec::new();
    for ((s, m), e) in srcr.iter().zip(&more).zip(&exor) {
        let flow = &s.flows[0];
        let row = (
            s.mean_throughput(),
            m.mean_throughput(),
            e.mean_throughput(),
        );
        println!(
            "{:10.1} {:10.1} {:10.1}   {}->{}",
            row.0, row.1, row.2, flow.src, flow.dsts[0]
        );
        runs.push(row);
    }

    // The paper's qualitative claim: gains concentrate on challenged flows.
    let med_srcr = stats::median(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
    let gain = |f: &dyn Fn(&(f64, f64, f64)) -> f64, challenged: bool| {
        let sel: Vec<f64> = runs
            .iter()
            .filter(|r| (r.0 < med_srcr) == challenged)
            .map(|r| f(r) / r.0.max(0.1))
            .collect();
        stats::median(&sel)
    };
    println!(
        "\nmedian MORE/Srcr gain: challenged flows {:.2}x, good flows {:.2}x (paper: gains concentrate on challenged flows)",
        gain(&|r| r.1, true),
        gain(&|r| r.1, false)
    );
    println!(
        "median ExOR/Srcr gain: challenged flows {:.2}x, good flows {:.2}x",
        gain(&|r| r.2, true),
        gain(&|r| r.2, false)
    );
}
