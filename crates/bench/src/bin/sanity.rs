//! Quick cross-protocol sanity comparison (not a paper figure): runs the
//! three protocols over a handful of pairs and prints medians, streaming
//! the raw records to JSONL/CSV under results/ as the grid runs. Use
//! before the full figure sweeps.

use more_bench::common::threads;
use more_bench::{stats, throughputs_by_protocol, ALL3};
use more_scenario::sink::{Collect, CsvAppend, JsonLines, Tee};
use more_scenario::{Scenario, TrafficSpec};

const JSONL_PATH: &str = "results/sanity.jsonl";
const CSV_PATH: &str = "results/sanity.csv";

fn main() {
    // Stream records to disk as the grid runs (Collect keeps a copy for
    // the medians below) instead of collecting and writing at the end.
    let mut collect = Collect::new();
    {
        let jsonl =
            JsonLines::create(JSONL_PATH).unwrap_or_else(|e| panic!("open {JSONL_PATH}: {e}"));
        let csv = CsvAppend::create(CSV_PATH).unwrap_or_else(|e| panic!("open {CSV_PATH}: {e}"));
        let mut sink = Tee::new().with(&mut collect).with(jsonl).with(csv);
        Scenario::named("sanity")
            .testbed(1)
            .traffic(TrafficSpec::RandomPairs {
                count: 12,
                seed: 42,
            })
            .protocols(ALL3)
            .packets(128)
            .deadline(180)
            .threads(threads())
            .run_with_sink(&mut sink);
    }
    let records = collect.into_records();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    for (proto, tputs) in throughputs_by_protocol(&records) {
        let of_proto: Vec<_> = records.iter().filter(|r| r.protocol == proto).collect();
        let completed = of_proto.iter().filter(|r| r.all_completed()).count();
        let conc: Vec<f64> = of_proto.iter().map(|r| r.concurrency).collect();
        println!(
            "{:>5}: median {:7.1} pkt/s  mean {:7.1}  completed {}/{}  concurrency {:.3}",
            proto,
            stats::median(&tputs),
            stats::mean(&tputs),
            completed,
            of_proto.len(),
            stats::mean(&conc),
        );
    }

    println!("\nraw records (streamed): {JSONL_PATH}, {CSV_PATH}");
}
