//! Quick cross-protocol sanity comparison (not a paper figure): runs the
//! three protocols over a handful of pairs and prints medians, then
//! writes the raw records as JSON/CSV under results/. Use before the
//! full figure sweeps.

use more_bench::common::threads;
use more_bench::{stats, throughputs_by_protocol, ALL3};
use more_scenario::{record, Scenario, TrafficSpec};

fn main() {
    let records = Scenario::named("sanity")
        .testbed(1)
        .traffic(TrafficSpec::RandomPairs {
            count: 12,
            seed: 42,
        })
        .protocols(ALL3)
        .packets(128)
        .deadline(180)
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    for (proto, tputs) in throughputs_by_protocol(&records) {
        let of_proto: Vec<_> = records.iter().filter(|r| r.protocol == proto).collect();
        let completed = of_proto.iter().filter(|r| r.all_completed()).count();
        let conc: Vec<f64> = of_proto.iter().map(|r| r.concurrency).collect();
        println!(
            "{:>5}: median {:7.1} pkt/s  mean {:7.1}  completed {}/{}  concurrency {:.3}",
            proto,
            stats::median(&tputs),
            stats::mean(&tputs),
            completed,
            of_proto.len(),
            stats::mean(&conc),
        );
    }

    record::write_json("results/sanity.json", &records).expect("write results/sanity.json");
    record::write_csv("results/sanity.csv", &records).expect("write results/sanity.csv");
    println!("\nraw records: results/sanity.json, results/sanity.csv");
}
