//! Quick cross-protocol sanity comparison (not a paper figure): runs the
//! three protocols over a handful of pairs and prints medians. Use before
//! the full figure sweeps.

use mesh_topology::generate;
use more_bench::{random_pairs, run_single, ExpConfig, Protocol};

fn main() {
    let topo = generate::testbed(1);
    let pairs = random_pairs(&topo, 12, 42);
    let cfg = ExpConfig {
        packets: 128,
        deadline_s: 180,
        ..ExpConfig::default()
    };
    for proto in Protocol::ALL3 {
        let results: Vec<_> = pairs
            .iter()
            .map(|&(s, d)| run_single(proto, &topo, s, d, &cfg))
            .collect();
        let tputs: Vec<f64> = results.iter().map(|r| r.throughput_pps).collect();
        let completed = results.iter().filter(|r| r.completed).count();
        let conc: Vec<f64> = results.iter().map(|r| r.concurrency).collect();
        println!(
            "{:>5}: median {:7.1} pkt/s  mean {:7.1}  completed {}/{}  concurrency {:.3}",
            proto.name(),
            more_bench::stats::median(&tputs),
            more_bench::stats::mean(&tputs),
            completed,
            pairs.len(),
            more_bench::stats::mean(&conc),
        );
    }
}
