//! Figure 5-1: the unbounded ETX-vs-EOTX cost gap on the diamond
//! topology. The gap G(p, k) = cost(ETX order)/cost(EOTX order) tends to
//! k as p → 0 (Proposition 6).
//!
//! `cargo run --release -p more-bench --bin fig5_1 -- --k 8`

use mesh_metrics::gap::pair_gap;
use mesh_topology::generate;
use more_bench::common::{banner, Args};

fn main() {
    let args = Args::parse();
    let k: usize = args.get("k", 8);
    banner(
        "Figure 5-1",
        "unbounded ETX-order vs EOTX-order cost gap on the diamond",
    );
    println!("diamond with k = {k} middle forwarders\n");
    println!("{:>8} | {:>10} | {:>10}", "p", "gap", "limit k");
    let (src, _a, _b, _cs, dst) = generate::diamond_roles(k);
    for &p in &[0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005] {
        let topo = generate::diamond(k, p);
        let g = pair_gap(&topo, src, dst);
        println!("{p:>8} | {g:>10.3} | {k:>10}");
    }
    println!(
        "\npaper: lim p->0 gap = k (the ETX order discards B; EOTX exploits the k forwarders)"
    );

    // And the k-sweep at fixed small p.
    println!("\ngap vs k at p = 0.01:");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let (src, _a, _b, _cs, dst) = generate::diamond_roles(k);
        let topo = generate::diamond(k, 0.01);
        println!("  k = {k:>3}: gap = {:.2}", pair_gap(&topo, src, dst));
    }
}
