//! Figure 4-6: opportunistic routing against Srcr with autorate.
//!
//! The paper compares MORE and ExOR at a fixed 11 Mb/s against Srcr with
//! MadWifi's Onoe autorate, finding that autorate does not close the gap —
//! autorate parks challenged links at low bit-rates, whose long airtimes
//! hog the medium (§4.4). We print the same four CDFs.
//!
//! `cargo run --release -p more-bench --bin fig4_6 -- --pairs 40`

use mesh_sim::Bitrate;
use mesh_topology::generate;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::{median, quantile};
use more_bench::{random_pairs, run_single, ExpConfig, Protocol};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 40);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo = generate::testbed(args.get("topo-seed", 1));
    let pairs = random_pairs(&topo, n_pairs, seed);

    banner(
        "Figure 4-6",
        "MORE/ExOR at fixed 11 Mb/s vs Srcr fixed and Srcr autorate",
    );
    let protos = [
        Protocol::Srcr,
        Protocol::SrcrAutorate,
        Protocol::Exor,
        Protocol::More,
    ];
    let mut medians = Vec::new();
    for proto in protos {
        let cfg = ExpConfig {
            packets,
            seed,
            bitrate: Bitrate::B11,
            ..ExpConfig::default()
        };
        let results = more_bench::par_map(pairs.clone(), threads(), |&(s, d)| {
            run_single(proto, &topo, s, d, &cfg)
        });
        let tputs: Vec<f64> = results.iter().map(|r| r.throughput_pps).collect();
        println!(
            "{:>14}: p10 {:7.1}  median {:7.1}  p90 {:7.1} pkt/s",
            proto.name(),
            quantile(&tputs, 0.1),
            median(&tputs),
            quantile(&tputs, 0.9)
        );
        medians.push((proto, median(&tputs)));
    }
    let m = |p: Protocol| medians.iter().find(|(q, _)| *q == p).expect("ran").1;
    println!(
        "\npaper: MORE and ExOR preserve their gains over Srcr even with autorate"
    );
    println!(
        "here : MORE/Srcr-autorate = {:.2}x, ExOR/Srcr-autorate = {:.2}x, autorate/fixed Srcr = {:.2}x",
        m(Protocol::More) / m(Protocol::SrcrAutorate),
        m(Protocol::Exor) / m(Protocol::SrcrAutorate),
        m(Protocol::SrcrAutorate) / m(Protocol::Srcr),
    );
}
