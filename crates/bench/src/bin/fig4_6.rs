//! Figure 4-6: opportunistic routing against Srcr with autorate.
//!
//! The paper compares MORE and ExOR at a fixed 11 Mb/s against Srcr with
//! MadWifi's Onoe autorate, finding that autorate does not close the gap —
//! autorate parks challenged links at low bit-rates, whose long airtimes
//! hog the medium (§4.4). We print the same four series.
//!
//! `cargo run --release -p more-bench --bin fig4_6 -- --pairs 40`

use mesh_sim::Bitrate;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::{median, quantile};
use more_bench::throughputs_by_protocol;
use more_scenario::{Scenario, TrafficSpec};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 40);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo_seed: u64 = args.get("topo-seed", 1);

    banner(
        "Figure 4-6",
        "MORE/ExOR at fixed 11 Mb/s vs Srcr fixed and Srcr autorate",
    );
    let records = Scenario::named("fig4_6")
        .testbed(topo_seed)
        .traffic(TrafficSpec::RandomPairs {
            count: n_pairs,
            seed,
        })
        .protocols(["Srcr", "Srcr-autorate", "ExOR", "MORE"])
        .bitrate(Bitrate::B11)
        .packets(packets)
        .seeds([seed])
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    let mut medians = Vec::new();
    for (proto, tputs) in throughputs_by_protocol(&records) {
        println!(
            "{:>14}: p10 {:7.1}  median {:7.1}  p90 {:7.1} pkt/s",
            proto,
            quantile(&tputs, 0.1),
            median(&tputs),
            quantile(&tputs, 0.9)
        );
        medians.push((proto, median(&tputs)));
    }
    let m = |p: &str| medians.iter().find(|(q, _)| q == p).expect("ran").1;
    println!("\npaper: MORE and ExOR preserve their gains over Srcr even with autorate");
    println!(
        "here : MORE/Srcr-autorate = {:.2}x, ExOR/Srcr-autorate = {:.2}x, autorate/fixed Srcr = {:.2}x",
        m("MORE") / m("Srcr-autorate"),
        m("ExOR") / m("Srcr-autorate"),
        m("Srcr-autorate") / m("Srcr"),
    );
}
