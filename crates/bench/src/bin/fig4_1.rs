//! Figure 4-1: the testbed map. Emits the generated 20-node, 3-floor
//! topology as an ASCII floor plan plus its §4.1 statistics, and writes
//! the full topology JSON next to it.
//!
//! `cargo run --release -p more-bench --bin fig4_1 -- --topo-seed 1`

use mesh_metrics::etx::LinkCost;
use mesh_metrics::EtxTable;
use mesh_topology::generate;
use more_bench::common::{banner, Args};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("topo-seed", 1);
    banner("Figure 4-1", "testbed node map and link statistics");
    let topo = generate::testbed(seed);
    print!("{}", topo.ascii_map(56, 14));

    let losses: Vec<f64> = topo.links().map(|l| 1.0 - l.delivery).collect();
    let lo = losses.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = losses.iter().cloned().fold(0.0, f64::max);
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    let max_hops = topo
        .nodes()
        .flat_map(|a| topo.nodes().map(move |b| (a, b)))
        .filter(|(a, b)| a != b)
        .filter_map(|(a, b)| topo.hop_count(a, b))
        .max()
        .unwrap();
    // The paper's 0-60%/27% statistic is over links on *best paths*; ETX
    // avoids the worst links, so the on-path average sits well below the
    // all-links average.
    let mut path_losses = Vec::new();
    for d in topo.nodes() {
        let etx = EtxTable::compute(&topo, d, LinkCost::Forward);
        for s in topo.nodes() {
            if s == d {
                continue;
            }
            if let Some(path) = etx.path_from(s) {
                for w in path.windows(2) {
                    path_losses.push(1.0 - topo.delivery(w[0], w[1]));
                }
            }
        }
    }
    let p_lo = path_losses.iter().cloned().fold(f64::INFINITY, f64::min);
    let p_hi = path_losses.iter().cloned().fold(0.0, f64::max);
    let p_mean = path_losses.iter().sum::<f64>() / path_losses.len() as f64;
    println!(
        "\nnodes: {}   directed links: {}",
        topo.n(),
        topo.links().count()
    );
    println!("all links  loss: min {lo:.2}  mean {mean:.2}  max {hi:.2}");
    println!("best-path  loss: min {p_lo:.2}  mean {p_mean:.2}  max {p_hi:.2}   (paper: 0-60 %, avg 27 %)");
    println!("paths: 1–{max_hops} hops (paper: 1–5)");

    let path = "results/fig4_1_testbed.json";
    std::fs::create_dir_all("results").ok();
    std::fs::write(path, topo.to_json()).expect("write topology JSON");
    println!("full topology written to {path}");
}
