//! Coding-throughput benchmark: the first measured point on the perf
//! trajectory (ROADMAP "as fast as the hardware allows").
//!
//! Measures the RLNC hot path with both kernel families — the scalar
//! byte-at-a-time 64 KiB table walk and the wide nibble split-table
//! kernels (AVX2/SSSE3/SWAR) — and writes the numbers to
//! `BENCH_coding.json` so later PRs have a trajectory to beat:
//!
//! * **encode** — source-side `Σ cᵢ·pᵢ` via the batched
//!   `slice_ops::axpy_many` pass, reported in MB/s of payload coded;
//! * **decode** — destination-side incremental Gaussian elimination,
//!   reported in µs per received packet.
//!
//! ```sh
//! cargo run --release -p more-bench --bin bench_coding          # full run
//! cargo run --release -p more-bench --bin bench_coding -- --ms 50
//! cargo run --release -p more-bench --bin bench_coding -- --out /tmp/b.json
//! ```

use gf256::slice_ops::{set_kernel, Kernel};
use more_bench::common::{banner, Args};
use more_core::batch_natives;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlnc::{Decoder, SourceEncoder};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// (K, payload bytes) grid; (32, 1500) is the paper's Table 4.1 point and
/// the acceptance point for the ≥2× encode target.
const ENCODE_GRID: [(usize, usize); 6] = [
    (8, 256),
    (8, 1500),
    (32, 256),
    (32, 1500),
    (128, 1500),
    (32, 8192),
];

const DECODE_GRID: [(usize, usize); 2] = [(32, 1500), (128, 1500)];

/// Runs `routine` repeatedly for at least `budget`, returning mean seconds
/// per call.
fn time_per_call<O>(budget: Duration, mut routine: impl FnMut() -> O) -> f64 {
    // Warm up: tables, caches, branch predictors, SIMD detection.
    for _ in 0..3 {
        black_box(routine());
    }
    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        for _ in 0..8 {
            black_box(routine());
        }
        iters += 8;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return elapsed.as_secs_f64() / iters as f64;
        }
    }
}

/// Encode throughput in MB/s of payload produced (1 MB = 1e6 bytes).
fn encode_mbps(k: usize, payload: usize, kernel: Kernel, budget: Duration) -> f64 {
    set_kernel(kernel);
    let enc = SourceEncoder::new(batch_natives(1, 0, k, payload)).expect("valid batch");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let per_call = time_per_call(budget, || enc.encode(&mut rng));
    set_kernel(Kernel::Auto);
    payload as f64 / per_call / 1e6
}

/// Decode cost in µs per received packet (full-batch decode / K).
fn decode_us_per_packet(k: usize, payload: usize, kernel: Kernel, budget: Duration) -> f64 {
    set_kernel(kernel);
    let enc = SourceEncoder::new(batch_natives(1, 0, k, payload)).expect("valid batch");
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    // Enough random packets that K of them are innovative w.h.p.
    let packets: Vec<_> = (0..2 * k).map(|_| enc.encode(&mut rng)).collect();
    let per_call = time_per_call(budget, || {
        let mut dec = Decoder::new(k, payload);
        for p in &packets {
            if dec.is_complete() {
                break;
            }
            dec.receive(p);
        }
        assert!(dec.is_complete(), "not enough packets to decode");
        dec.rank()
    });
    set_kernel(Kernel::Auto);
    per_call / k as f64 * 1e6
}

fn main() {
    let args = Args::parse();
    let budget = Duration::from_millis(args.get("ms", 200u64));
    let out = args.get("out", "BENCH_coding.json".to_string());
    let backend = gf256::wide::backend();

    banner(
        "bench_coding",
        &format!("GF(256) coding kernels, scalar vs wide ({backend})"),
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"coding\",");
    let _ = writeln!(json, "  \"wide_backend\": \"{backend}\",");
    let _ = writeln!(json, "  \"units\": {{ \"encode\": \"MB/s of coded payload\", \"decode\": \"us per received packet\" }},");

    println!("\nencode (MB/s of coded payload):");
    println!(
        "{:>5} {:>9} | {:>10} {:>10} {:>8}",
        "K", "payload", "scalar", "wide", "speedup"
    );
    let mut acceptance = 0.0f64;
    let _ = writeln!(json, "  \"encode\": [");
    for (i, &(k, payload)) in ENCODE_GRID.iter().enumerate() {
        let scalar = encode_mbps(k, payload, Kernel::Scalar, budget);
        let wide = encode_mbps(k, payload, Kernel::Wide, budget);
        let speedup = wide / scalar;
        if (k, payload) == (32, 1500) {
            acceptance = speedup;
        }
        println!("{k:>5} {payload:>9} | {scalar:>10.1} {wide:>10.1} {speedup:>7.2}x");
        let comma = if i + 1 == ENCODE_GRID.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"k\": {k}, \"payload_bytes\": {payload}, \"scalar_mbps\": {scalar:.1}, \"wide_mbps\": {wide:.1}, \"speedup\": {speedup:.2} }}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");

    println!("\ndecode (µs per received packet):");
    println!(
        "{:>5} {:>9} | {:>10} {:>10} {:>8}",
        "K", "payload", "scalar", "wide", "speedup"
    );
    let _ = writeln!(json, "  \"decode\": [");
    for (i, &(k, payload)) in DECODE_GRID.iter().enumerate() {
        let scalar = decode_us_per_packet(k, payload, Kernel::Scalar, budget);
        let wide = decode_us_per_packet(k, payload, Kernel::Wide, budget);
        let speedup = scalar / wide;
        println!("{k:>5} {payload:>9} | {scalar:>10.2} {wide:>10.2} {speedup:>7.2}x");
        let comma = if i + 1 == DECODE_GRID.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"k\": {k}, \"payload_bytes\": {payload}, \"scalar_us_per_packet\": {scalar:.2}, \"wide_us_per_packet\": {wide:.2}, \"speedup\": {speedup:.2} }}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{ \"point\": \"encode K=32 payload=1500\", \"speedup\": {acceptance:.2}, \"target\": 2.0 }}"
    );
    json.push_str("}\n");

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nencode speedup at the acceptance point (K=32, 1500 B): {acceptance:.2}x");
    println!("results written to {out}");
}
