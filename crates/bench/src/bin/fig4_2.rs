//! Figure 4-2: CDF of unicast throughput for MORE, ExOR, and Srcr over
//! random source–destination pairs on the testbed.
//!
//! Paper's findings to reproduce in shape: MORE's median ≈ +22 % over
//! ExOR and ≈ +95 % over Srcr; challenged pairs gain up to 10–12×; the
//! 10th percentiles (dead spots) order MORE > ExOR ≫ Srcr.
//!
//! `cargo run --release -p more-bench --bin fig4_2 -- --pairs 200 --packets 384`

use mesh_topology::generate;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::{cdf, median, quantile};
use more_bench::{random_pairs, run_single, ExpConfig, Protocol};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 60);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo_seed: u64 = args.get("topo-seed", 1);

    banner(
        "Figure 4-2",
        "CDF of unicast throughput (MORE vs ExOR vs Srcr)",
    );
    let topo = generate::testbed(topo_seed);
    let pairs = random_pairs(&topo, n_pairs, seed);
    println!(
        "testbed seed {topo_seed}, {} pairs, {} packets/transfer, K=32, 5.5 Mb/s\n",
        pairs.len(),
        packets
    );

    let mut medians = Vec::new();
    let mut results_by_proto = Vec::new();
    for proto in Protocol::ALL3 {
        let cfg = ExpConfig {
            packets,
            seed,
            ..ExpConfig::default()
        };
        let results = more_bench::par_map(pairs.clone(), threads(), |&(s, d)| {
            run_single(proto, &topo, s, d, &cfg)
        });
        let tputs: Vec<f64> = results.iter().map(|r| r.throughput_pps).collect();
        println!("--- {} CDF (throughput pkt/s, cumulative fraction) ---", proto.name());
        for (x, f) in cdf(&tputs).iter().step_by((tputs.len() / 12).max(1)) {
            println!("  {x:8.1}  {f:.3}");
        }
        println!(
            "  p10 {:7.1}   median {:7.1}   p90 {:7.1}   completed {}/{}\n",
            quantile(&tputs, 0.1),
            median(&tputs),
            quantile(&tputs, 0.9),
            results.iter().filter(|r| r.completed).count(),
            results.len()
        );
        medians.push((proto, median(&tputs), quantile(&tputs, 0.1)));
        results_by_proto.push((proto, results));
    }

    // Headline ratios, paper style.
    let get = |p: Protocol| medians.iter().find(|(q, _, _)| *q == p).expect("ran");
    let (_, m_more, p10_more) = get(Protocol::More);
    let (_, m_exor, p10_exor) = get(Protocol::Exor);
    let (_, m_srcr, p10_srcr) = get(Protocol::Srcr);
    println!("paper: MORE/ExOR median ≈ 1.22, MORE/Srcr median ≈ 1.95");
    println!(
        "here : MORE/ExOR median = {:.2}, MORE/Srcr median = {:.2}",
        m_more / m_exor,
        m_more / m_srcr
    );
    // Max per-pair gain over Srcr (the 10-12x tail claim).
    let srcr_res = &results_by_proto
        .iter()
        .find(|(p, _)| *p == Protocol::Srcr)
        .expect("ran")
        .1;
    let more_res = &results_by_proto
        .iter()
        .find(|(p, _)| *p == Protocol::More)
        .expect("ran")
        .1;
    let max_gain = more_res
        .iter()
        .zip(srcr_res.iter())
        .map(|(m, s)| m.throughput_pps / s.throughput_pps.max(0.1))
        .fold(0.0f64, f64::max);
    println!("paper: max per-pair MORE/Srcr gain 10-12x;  here: {max_gain:.1}x");
    println!(
        "paper: 10th pct MORE > 50 pkt/s, Srcr ≈ 10 pkt/s;  here: MORE {p10_more:.0}, ExOR {p10_exor:.0}, Srcr {p10_srcr:.0}"
    );
}
