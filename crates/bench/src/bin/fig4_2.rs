//! Figure 4-2: CDF of unicast throughput for MORE, ExOR, and Srcr over
//! random source–destination pairs on the testbed.
//!
//! Paper's findings to reproduce in shape: MORE's median ≈ +22 % over
//! ExOR and ≈ +95 % over Srcr; challenged pairs gain up to 10–12×; the
//! 10th percentiles (dead spots) order MORE > ExOR ≫ Srcr.
//!
//! `cargo run --release -p more-bench --bin fig4_2 -- --pairs 200 --packets 384`

use more_bench::common::{banner, threads, Args};
use more_bench::stats::{median, print_cdf, quantile};
use more_bench::{throughputs_by_protocol, RunRecord, ALL3};
use more_scenario::{Scenario, TrafficSpec};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 60);
    let packets: usize = args.get("packets", 192);
    let seed: u64 = args.get("seed", 1);
    let topo_seed: u64 = args.get("topo-seed", 1);

    banner(
        "Figure 4-2",
        "CDF of unicast throughput (MORE vs ExOR vs Srcr)",
    );
    println!(
        "testbed seed {topo_seed}, {n_pairs} pairs, {packets} packets/transfer, K=32, 5.5 Mb/s\n"
    );

    let records = Scenario::named("fig4_2")
        .testbed(topo_seed)
        .traffic(TrafficSpec::RandomPairs {
            count: n_pairs,
            seed,
        })
        .protocols(ALL3)
        .packets(packets)
        .seeds([seed])
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    let mut medians = Vec::new();
    for (proto, tputs) in throughputs_by_protocol(&records) {
        println!("--- {proto} CDF (throughput pkt/s, cumulative fraction) ---");
        print_cdf(&tputs, 12);
        let completed = records
            .iter()
            .filter(|r| r.protocol == proto && r.all_completed())
            .count();
        println!(
            "  p10 {:7.1}   median {:7.1}   p90 {:7.1}   completed {}/{}\n",
            quantile(&tputs, 0.1),
            median(&tputs),
            quantile(&tputs, 0.9),
            completed,
            tputs.len()
        );
        medians.push((proto, median(&tputs), quantile(&tputs, 0.1)));
    }

    // Headline ratios, paper style.
    let get = |p: &str| {
        medians
            .iter()
            .find(|(q, _, _)| q == p)
            .unwrap_or_else(|| panic!("{p} ran"))
    };
    let (_, m_more, p10_more) = get("MORE");
    let (_, m_exor, p10_exor) = get("ExOR");
    let (_, m_srcr, p10_srcr) = get("Srcr");
    println!("paper: MORE/ExOR median ≈ 1.22, MORE/Srcr median ≈ 1.95");
    println!(
        "here : MORE/ExOR median = {:.2}, MORE/Srcr median = {:.2}",
        m_more / m_exor,
        m_more / m_srcr
    );
    // Max per-pair gain over Srcr (the 10-12x tail claim); pairs align by
    // traffic_index because every protocol saw the same pair list.
    let per_pair = |proto: &str| -> Vec<&RunRecord> {
        let mut rs: Vec<&RunRecord> = records.iter().filter(|r| r.protocol == proto).collect();
        rs.sort_by_key(|r| r.traffic_index);
        rs
    };
    let max_gain = per_pair("MORE")
        .iter()
        .zip(per_pair("Srcr").iter())
        .map(|(m, s)| m.mean_throughput() / s.mean_throughput().max(0.1))
        .fold(0.0f64, f64::max);
    println!("paper: max per-pair MORE/Srcr gain 10-12x;  here: {max_gain:.1}x");
    println!(
        "paper: 10th pct MORE > 50 pkt/s, Srcr ≈ 10 pkt/s;  here: MORE {p10_more:.0}, ExOR {p10_exor:.0}, Srcr {p10_srcr:.0}"
    );
}
