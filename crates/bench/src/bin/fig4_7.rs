//! Figure 4-7: impact of batch size. CDFs of throughput for
//! K ∈ {8, 16, 32, 64, 128} for MORE and for ExOR over random pairs.
//!
//! Paper's shape: ExOR degrades markedly at K=8 (per-batch control
//! traffic amortizes over fewer packets) while MORE is nearly insensitive
//! (its only small-batch cost is a few spurious transmissions around the
//! batch ACK).
//!
//! `cargo run --release -p more-bench --bin fig4_7 -- --pairs 40`

use mesh_topology::generate;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::median;
use more_bench::{random_pairs, run_single, ExpConfig, Protocol};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 40);
    let seed: u64 = args.get("seed", 1);
    let topo = generate::testbed(args.get("topo-seed", 1));
    let pairs = random_pairs(&topo, n_pairs, seed);
    let ks = [8usize, 16, 32, 64, 128];

    banner("Figure 4-7", "throughput vs batch size K (MORE and ExOR)");
    println!("{} pairs, transfer = 256 packets\n", pairs.len());
    println!("{:>6} | {:>12} {:>12}", "K", "MORE med", "ExOR med");

    let mut more_meds = Vec::new();
    let mut exor_meds = Vec::new();
    for &k in &ks {
        let cfg = ExpConfig {
            packets: 256,
            k,
            seed,
            ..ExpConfig::default()
        };
        let med = |proto: Protocol| {
            let res = more_bench::par_map(pairs.clone(), threads(), |&(s, d)| {
                run_single(proto, &topo, s, d, &cfg)
            });
            median(&res.iter().map(|r| r.throughput_pps).collect::<Vec<_>>())
        };
        let m = med(Protocol::More);
        let e = med(Protocol::Exor);
        println!("{k:>6} | {m:12.1} {e:12.1}");
        more_meds.push(m);
        exor_meds.push(e);
    }

    let more_spread = more_meds.iter().cloned().fold(f64::INFINITY, f64::min)
        / more_meds.iter().cloned().fold(0.0, f64::max);
    let exor_k8_penalty = exor_meds[0] / exor_meds[2];
    println!(
        "\npaper: MORE insensitive to K; ExOR significantly worse at K=8"
    );
    println!(
        "here : MORE min/max median ratio {more_spread:.2} (1.0 = flat); ExOR K=8 vs K=32 ratio {exor_k8_penalty:.2}"
    );
}
