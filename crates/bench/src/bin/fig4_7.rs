//! Figure 4-7: impact of batch size. Median throughput for
//! K ∈ {8, 16, 32, 64, 128} for MORE and for ExOR over random pairs.
//!
//! Paper's shape: ExOR degrades markedly at K=8 (per-batch control
//! traffic amortizes over fewer packets) while MORE is nearly insensitive
//! (its only small-batch cost is a few spurious transmissions around the
//! batch ACK).
//!
//! `cargo run --release -p more-bench --bin fig4_7 -- --pairs 40`

use more_bench::common::{banner, threads, Args};
use more_bench::stats::median;
use more_scenario::{Scenario, Sweep, TrafficSpec};

fn main() {
    let args = Args::parse();
    let n_pairs: usize = args.get("pairs", 40);
    let seed: u64 = args.get("seed", 1);
    let topo_seed: u64 = args.get("topo-seed", 1);
    let ks = [8usize, 16, 32, 64, 128];

    banner("Figure 4-7", "throughput vs batch size K (MORE and ExOR)");
    println!("{n_pairs} pairs, transfer = 256 packets\n");
    println!("{:>6} | {:>12} {:>12}", "K", "MORE med", "ExOR med");

    let records = Scenario::named("fig4_7")
        .testbed(topo_seed)
        .traffic(TrafficSpec::RandomPairs {
            count: n_pairs,
            seed,
        })
        .protocols(["MORE", "ExOR"])
        .sweep(Sweep::K(ks.to_vec()))
        .packets(256)
        .seeds([seed])
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    let med_at = |proto: &str, k: usize| {
        let tputs: Vec<f64> = records
            .iter()
            .filter(|r| r.protocol == proto && r.value == Some(k as f64))
            .map(|r| r.mean_throughput())
            .collect();
        median(&tputs)
    };

    let mut more_meds = Vec::new();
    let mut exor_meds = Vec::new();
    for &k in &ks {
        let m = med_at("MORE", k);
        let e = med_at("ExOR", k);
        println!("{k:>6} | {m:12.1} {e:12.1}");
        more_meds.push(m);
        exor_meds.push(e);
    }

    let more_spread = more_meds.iter().cloned().fold(f64::INFINITY, f64::min)
        / more_meds.iter().cloned().fold(0.0, f64::max);
    let exor_k8_penalty = exor_meds[0] / exor_meds[2];
    println!("\npaper: MORE insensitive to K; ExOR significantly worse at K=8");
    println!(
        "here : MORE min/max median ratio {more_spread:.2} (1.0 = flat); ExOR K=8 vs K=32 ratio {exor_k8_penalty:.2}"
    );
}
