//! §5.7: the practical ETX-vs-EOTX gap on the testbed topology.
//!
//! The paper computes Algorithm 1's total cost under both orderings for
//! every source–destination pair of the real testbed and finds: more than
//! 40 % of flows completely unaffected, and a median gap among affected
//! flows of ≈ 0.2 %.
//!
//! `cargo run --release -p more-bench --bin sec5_7`

use mesh_metrics::gap::testbed_gap_stats;
use mesh_topology::generate;
use more_bench::common::{banner, Args};

fn main() {
    let args = Args::parse();
    banner(
        "§5.7",
        "ETX-order vs EOTX-order gap across all testbed pairs",
    );
    for seed in 0..args.get("topos", 4u64) {
        let topo = generate::testbed(seed);
        let stats = testbed_gap_stats(&topo, 1e-9);
        println!(
            "testbed seed {seed}: {} pairs | unaffected {:5.1}% | median affected gap {:6.3}% | max gap {:.3}",
            stats.pairs,
            100.0 * stats.unaffected_fraction,
            100.0 * stats.median_affected_excess,
            stats.max_gap
        );
    }
    println!("\npaper: >40% of flows unaffected; median gap among affected 0.2%");
}
