//! Ablation: MORE with ETX-ordered vs EOTX-ordered forwarders (§5.7's
//! "future incarnations of both protocols should use the theoretically
//! exact EOTX").
//!
//! Measures end-to-end transmissions per delivered packet — the quantity
//! the metric actually optimizes — on both the testbed (where §5.7
//! predicts a negligible difference) and the Fig 5-1 diamond (where the
//! ETX order is arbitrarily bad).
//!
//! `cargo run --release -p more-bench --bin ablation_eotx`

use mesh_sim::{SimConfig, Simulator, SEC};
use mesh_topology::{generate, NodeId, Topology};
use more_bench::common::banner;
use more_core::{ForwarderMetric, MoreAgent, MoreConfig};

fn cost_per_packet(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    metric: ForwarderMetric,
    seed: u64,
) -> Option<f64> {
    let cfg = MoreConfig {
        metric,
        ..MoreConfig::default()
    };
    let mut agent = MoreAgent::new(topo.clone(), cfg);
    let fi = agent.add_flow(1, src, dst, 96);
    let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, seed);
    sim.kick(src);
    sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
    let p = sim.agent.progress(fi);
    if !p.done {
        return None;
    }
    Some(sim.stats.total_tx() as f64 / p.delivered_packets as f64)
}

fn main() {
    banner(
        "Ablation",
        "MORE forwarder ordering: ETX (shipped) vs EOTX (optimal)",
    );

    println!("testbed pairs (transmissions per delivered packet):");
    let topo = generate::testbed(1);
    let pairs = more_bench::random_pairs(&topo, 10, 3);
    let mut etx_total = 0.0;
    let mut eotx_total = 0.0;
    for &(s, d) in &pairs {
        let e = cost_per_packet(&topo, s, d, ForwarderMetric::Etx, 1);
        let o = cost_per_packet(&topo, s, d, ForwarderMetric::Eotx, 1);
        if let (Some(e), Some(o)) = (e, o) {
            println!("  {s}->{d}: ETX {e:.2}  EOTX {o:.2}  ratio {:.3}", e / o);
            etx_total += e;
            eotx_total += o;
        }
    }
    println!(
        "  mean ratio ETX/EOTX: {:.3}  (§5.7: the orders barely differ on real meshes)\n",
        etx_total / eotx_total
    );

    println!("Fig 5-1 diamond, k=8 (where ETX ordering discards the good forwarder B):");
    for &p in &[0.3, 0.15, 0.08] {
        let k = 8;
        let topo = generate::diamond_symmetricized(k, p);
        let (src, _a, _b, _cs, dst) = generate::diamond_roles(k);
        let e = cost_per_packet(&topo, src, dst, ForwarderMetric::Etx, 2);
        let o = cost_per_packet(&topo, src, dst, ForwarderMetric::Eotx, 2);
        match (e, o) {
            (Some(e), Some(o)) => println!(
                "  p={p:<5} ETX {e:6.2}  EOTX {o:6.2}  tx/packet ratio {:.2}",
                e / o
            ),
            _ => println!("  p={p:<5} (run incomplete within deadline)"),
        }
    }
    println!(
"\nanalytic gap (Prop 6) grows toward k as p -> 0; the measured ratio
trails it because the LP ignores MAC contention — with 8 extra active
forwarders the EOTX order pays real airtime for its theoretical savings,
and only wins once links get lossy enough (p <= 0.15 here)."
    );
}
