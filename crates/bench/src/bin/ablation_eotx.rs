//! Ablation: MORE with ETX-ordered vs EOTX-ordered forwarders (§5.7's
//! "future incarnations of both protocols should use the theoretically
//! exact EOTX").
//!
//! Exercises the open registry: the two orderings are *registered as two
//! protocols* ("MORE-etx", "MORE-eotx") and compared by the ordinary
//! scenario machinery — no harness internals involved. Measures
//! end-to-end transmissions per delivered packet — the quantity the
//! metric actually optimizes — on both the testbed (where §5.7 predicts
//! a negligible difference) and the Fig 5-1 diamond (where the ETX order
//! is arbitrarily bad).
//!
//! `cargo run --release -p more-bench --bin ablation_eotx`

use mesh_topology::generate;
use more_bench::common::{banner, threads};
use more_bench::{random_pairs, RunRecord};
use more_core::{ForwarderMetric, MoreConfig};
use more_scenario::{MoreFactory, ProtocolRegistry, Scenario, TopologySpec, TrafficSpec};
use std::sync::Arc;

/// Transmissions per delivered packet, `None` when the run missed the
/// deadline.
fn cost(r: &RunRecord) -> Option<f64> {
    let delivered: usize = r.flows.iter().map(|f| f.delivered).sum();
    (r.all_completed() && delivered > 0).then(|| r.total_tx as f64 / delivered as f64)
}

/// A registry holding the two MORE orderings.
fn orderings() -> ProtocolRegistry {
    let mut reg = ProtocolRegistry::new();
    reg.register(MoreFactory::named(
        "MORE-etx",
        MoreConfig {
            metric: ForwarderMetric::Etx,
            ..MoreConfig::default()
        },
    ));
    reg.register(MoreFactory::named(
        "MORE-eotx",
        MoreConfig {
            metric: ForwarderMetric::Eotx,
            ..MoreConfig::default()
        },
    ));
    reg
}

fn main() {
    banner(
        "Ablation",
        "MORE forwarder ordering: ETX (shipped) vs EOTX (optimal)",
    );

    println!("testbed pairs (transmissions per delivered packet):");
    let topo = generate::testbed(1);
    let pairs = random_pairs(&topo, 10, 3);
    let records = Scenario::named("ablation_eotx")
        .testbed(1)
        .traffic(TrafficSpec::EachPair(pairs.clone()))
        .registry(orderings())
        .packets(96)
        .deadline(600)
        .threads(threads())
        .run();
    let by = |proto: &str| -> Vec<&RunRecord> {
        let mut rs: Vec<&RunRecord> = records.iter().filter(|r| r.protocol == proto).collect();
        rs.sort_by_key(|r| r.traffic_index);
        rs
    };
    let mut etx_total = 0.0;
    let mut eotx_total = 0.0;
    for (e_rec, o_rec) in by("MORE-etx").iter().zip(by("MORE-eotx").iter()) {
        if let (Some(e), Some(o)) = (cost(e_rec), cost(o_rec)) {
            let f = &e_rec.flows[0];
            println!(
                "  {}->{}: ETX {e:.2}  EOTX {o:.2}  ratio {:.3}",
                f.src,
                f.dsts[0],
                e / o
            );
            etx_total += e;
            eotx_total += o;
        }
    }
    println!(
        "  mean ratio ETX/EOTX: {:.3}  (§5.7: the orders barely differ on real meshes)\n",
        etx_total / eotx_total
    );

    println!("Fig 5-1 diamond, k=8 (where ETX ordering discards the good forwarder B):");
    let k = 8;
    let (src, _a, _b, _cs, dst) = generate::diamond_roles(k);
    for &p in &[0.3, 0.15, 0.08] {
        let diamond = generate::diamond_symmetricized(k, p);
        let recs = Scenario::named("ablation_eotx_diamond")
            .topology(TopologySpec::Fixed(Arc::new(diamond)))
            .pair(src, dst)
            .registry(orderings())
            .packets(96)
            .deadline(600)
            .seeds([2])
            .threads(threads())
            .run();
        let find = |proto: &str| recs.iter().find(|r| r.protocol == proto).expect("ran");
        match (cost(find("MORE-etx")), cost(find("MORE-eotx"))) {
            (Some(e), Some(o)) => println!(
                "  p={p:<5} ETX {e:6.2}  EOTX {o:6.2}  tx/packet ratio {:.2}",
                e / o
            ),
            _ => println!("  p={p:<5} (run incomplete within deadline)"),
        }
    }
    println!(
        "\nanalytic gap (Prop 6) grows toward k as p -> 0; the measured ratio
trails it because the LP ignores MAC contention — with 8 extra active
forwarders the EOTX order pays real airtime for its theoretical savings,
and only wins once links get lossy enough (p <= 0.15 here)."
    );
}
