//! Figure 4-4: spatial reuse. Flows whose best path is 4 hops, where the
//! last hop can transmit concurrently with the first. The paper finds
//! MORE's median ≈ 50 % above ExOR here — the headline MAC-independence
//! payoff — because ExOR's scheduler serializes the whole path.
//!
//! We sweep seeds over a 4-hop line topology (30 m spacing puts hops 1
//! and 4 outside each other's carrier-sense range) and report quantiles
//! per protocol plus the measured airtime-overlap fractions.
//!
//! `cargo run --release -p more-bench --bin fig4_4 -- --runs 20`

use mesh_topology::NodeId;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::{median, quantile};
use more_bench::ALL3;
use more_scenario::{Scenario, TopologySpec};

fn main() {
    let args = Args::parse();
    let runs: u64 = args.get("runs", 20);
    let packets: usize = args.get("packets", 192);
    let p_adj: f64 = args.get("p", 0.85);

    banner(
        "Figure 4-4",
        "4-hop flows with spatial reuse (hop 1 ∥ hop 4)",
    );
    println!("{runs} runs over a 4-hop line, adjacent delivery {p_adj}, skip links decay 0.12\n");

    let records = Scenario::named("fig4_4")
        .topology(TopologySpec::Line {
            hops: 4,
            p_adj,
            skip_decay: 0.12,
            spacing: 30.0,
        })
        .pair(NodeId(0), NodeId(4))
        .protocols(ALL3)
        .packets(packets)
        .seeds(1..=runs)
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    let mut table = Vec::new();
    for proto in ALL3 {
        let of_proto: Vec<_> = records.iter().filter(|r| r.protocol == proto).collect();
        let tputs: Vec<f64> = of_proto.iter().map(|r| r.mean_throughput()).collect();
        let concs: Vec<f64> = of_proto.iter().map(|r| r.concurrency).collect();
        println!(
            "{:>5}: p10 {:6.1}  median {:6.1}  p90 {:6.1} pkt/s   airtime overlap {:5.1}%",
            proto,
            quantile(&tputs, 0.1),
            median(&tputs),
            quantile(&tputs, 0.9),
            100.0 * median(&concs),
        );
        table.push((proto, median(&tputs)));
    }
    let m = |p: &str| table.iter().find(|(q, _)| *q == p).expect("ran").1;
    println!(
        "\npaper: MORE ≈ 1.50x ExOR on these flows;  here: {:.2}x (MORE/Srcr {:.2}x)",
        m("MORE") / m("ExOR"),
        m("MORE") / m("Srcr")
    );
}
